"""Design-space exploration: cost vs performance for a PFM deployment.

Sweeps the astar custom predictor across bandwidth (clkC_wW) and scope
(index_queue entries), then pairs each design point's speedup with its
estimated FPGA cost and the core+RF energy — the trade-off a deployment
engineer would study before shipping a configuration bitstream.

Run:  python examples/design_space_exploration.py
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.pfm.component import RFTimings
from repro.power.core_energy import CoreEnergyModel
from repro.power.fpga import FPGAModel
from repro.workloads.astar import build_astar_workload


def main() -> None:
    window = 25_000
    baseline = simulate(
        build_astar_workload(), SimConfig(max_instructions=window)
    )
    energy_model = CoreEnergyModel()
    fpga_model = FPGAModel()
    baseline_energy = energy_model.energy(baseline).total_nj

    print(f"{'design point':<24} {'speedup':>8} {'LUTs':>7} "
          f"{'RF MHz':>7} {'energy':>7}")
    for width in (1, 2, 4):
        for scope in (4, 8, 16):
            pfm = PFMParams(
                clk_ratio=4,
                width=width,
                delay=4,
                component_overrides={"index_queue_entries": scope},
            )
            stats = simulate(
                build_astar_workload(),
                SimConfig(max_instructions=window, pfm=pfm),
            )
            workload = build_astar_workload()
            component = workload.bitstream.component_factory(
                RFTimings(4, width, 4),
                workload.memory,
                {**workload.bitstream.metadata, "index_queue_entries": scope},
            )
            estimate = fpga_model.estimate("astar", component.structure())
            energy = energy_model.energy(
                stats,
                rf_dynamic_w=estimate.dyn_logic_mw / 1000.0,
                rf_static_w=estimate.static_mw / 1000.0,
            )
            label = f"w{width}, {scope}-entry scope"
            print(
                f"{label:<24} {100 * stats.speedup_over(baseline):>+7.0f}%"
                f" {estimate.lut:>7} {estimate.freq_mhz:>7}"
                f" {energy.total_nj / baseline_energy:>7.2f}"
            )
    print("\n(energy is core+RF normalized to the baseline core = 1.0)")


if __name__ == "__main__":
    main()
