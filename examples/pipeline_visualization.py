"""Visualize how PFM reshapes the pipeline.

Uses the tracing core (a stage-only :mod:`repro.telemetry` capture) to
render classic pipeline timelines for astar's hard branches, baseline vs
PFM.  In the baseline you can see the long refill gaps after each
mispredicted waymap/maparp branch; with the custom predictor those gaps
disappear (and the occasional IntQ-F wait shows up as a late F).

Run:  python examples/pipeline_visualization.py [--window N]
"""

import argparse

from repro.core import PFMParams, SimConfig
from repro.core.pipeview import render_timeline, trace_pipeline
from repro.workloads.astar import build_astar_workload


def show(label: str, pfm: PFMParams | None, window: int) -> None:
    core = trace_pipeline(
        build_astar_workload(grid_width=128, grid_height=128),
        SimConfig(max_instructions=window, pfm=pfm),
        max_records=window,
    )
    # Pick a window deep in the run (predictor warmed / component synced).
    print(f"--- {label} (IPC {core.stats.ipc:.2f}, "
          f"MPKI {core.stats.mpki:.1f}) ---")
    print(render_timeline(core.records, start_seq=window * 2 // 3, count=24))
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--window", type=int, default=6000,
        help="dynamic instructions per run (default 6000)",
    )
    args = parser.parse_args()
    show("baseline core", None, args.window)
    show(
        "core + custom astar predictor (clk4_w4)",
        PFMParams(delay=0),
        args.window,
    )


if __name__ == "__main__":
    main()
