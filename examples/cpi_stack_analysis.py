"""CPI stacks: where the cycles go, before and after PFM.

Counterfactual cycle accounting over astar and bfs (the technique behind
the paper's Figure 12 motivation bars).  astar's stack is branch-
dominated; bfs's is memory-dominated with a large *negative* overlap —
synergy: fixing both bottlenecks recovers far more than the sum of fixing
each (the paper's 11% + 152% vs 426% observation).  The PFM column shows
which slices each custom component removes.

Run:  python examples/cpi_stack_analysis.py [--window N]
"""

import argparse

from repro.core import PFMParams
from repro.core.analysis import compare_stacks, cpi_stack
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--window", type=int, default=15_000,
        help="dynamic instructions per counterfactual run (default 15000)",
    )
    window = parser.parse_args().window

    print("================ astar ================")
    base = cpi_stack(build_astar_workload, window=window)
    print(base.render("baseline"))
    print()
    treated = cpi_stack(
        build_astar_workload, window=window, pfm=PFMParams(delay=0)
    )
    print(treated.render("with custom branch predictor"))
    print()
    print(compare_stacks(base, treated))

    graph = road_graph(side=96)

    def bfs():
        return build_bfs_workload(graph=graph)

    print("\n================ bfs ==================")
    base = cpi_stack(bfs, window=window)
    print(base.render("baseline"))
    print("\n(negative overlap = synergy between the two bottlenecks)")
    treated = cpi_stack(bfs, window=window, pfm=PFMParams(delay=0))
    print()
    print(compare_stacks(base, treated))


if __name__ == "__main__":
    main()
