"""Custom prefetching with adaptive distance: the libquantum use-case.

Demonstrates Section 4.3: a tiny FSM in the fabric snoops the delinquent
load's base address and the loop's iteration count from the retire
stream, then streams exact prefetch OPs through the Load Agent ahead of
the core, with the sampling-based feedback mechanism adjusting the
prefetch distance.

Also shows the C/W-insensitivity the paper reports: prefetch-only
use-cases never stall the core waiting for RF packets.

Run:  python examples/custom_prefetcher_libquantum.py
"""

from repro.core import PFMParams, SimConfig, SuperscalarCore
from repro.workloads.libquantum import build_libquantum_workload


def run(pfm: PFMParams | None, window: int = 30_000):
    core = SuperscalarCore(
        build_libquantum_workload(), SimConfig(max_instructions=window, pfm=pfm)
    )
    stats = core.run()
    return core, stats


def main() -> None:
    _, baseline = run(None)
    print(f"baseline: IPC {baseline.ipc:.3f}, "
          f"DRAM accesses {baseline.memory_levels['L3']['misses']}")

    print("\nconfig        speedup   prefetches   settled distance")
    for clk, width in [(1, 1), (4, 1), (4, 4), (8, 1)]:
        pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
        core, stats = run(pfm)
        component = core.fabric.component
        print(f"clk{clk}_w{width:<6} {100 * stats.speedup_over(baseline):+7.0f}%"
              f"   {stats.agent_prefetches:>8}   {component.controller.distance:>8}")

    print("\nThe adaptive controller measures retired delinquent-load")
    print("instances per epoch (a proxy for IPC) and sets the prefetch")
    print("distance to cover the memory latency at the observed rate.")


if __name__ == "__main__":
    main()
