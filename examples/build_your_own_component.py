"""Build your own custom microarchitecture component.

The PFM paradigm (Section 7) anticipates that new application-specific
components will be written against the Agent interface.  This example
builds a *minimal* custom branch predictor from scratch for a synthetic
pointer-chasing kernel whose branch tests a loaded flag — exactly the
hard pattern (load-dependent branch) PFM targets — and wires it up via a
configuration bitstream.

The component:
  * snoops the array base from the retire stream (Retire Agent / RST),
  * issues run-ahead loads through the Load Agent (IntQ-IS / ObsQ-EX),
  * streams predictions to the Fetch Agent (IntQ-F) for the flag branch.

Run:  python examples/build_your_own_component.py
"""

import random

from repro.core import PFMParams, SimConfig, simulate
from repro.isa.builder import ProgramBuilder
from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket
from repro.pfm.snoop import Bitstream, FSTEntry, RSTEntry, SnoopKind
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage


# ---------------------------------------------------------------------- #
# 1. The workload: walk an array of random flags; branch on each flag.
# ---------------------------------------------------------------------- #

def build_flag_walk_workload(n: int = 20_000, seed: int = 5,
                             component_factory=None) -> Workload:
    memory = MemoryImage()
    rng = random.Random(seed)
    flags_base = memory.store_array("flags", [rng.randint(0, 1) for _ in range(n)])

    b = ProgramBuilder()
    b.li("s0", 0, comment="snoop:roi_begin")
    b.li("s1", flags_base, comment="snoop:flags_base")
    b.li("s2", n)
    b.li("s3", 0, comment="accumulator")
    b.li("s10", 0, comment="i")
    b.label("loop")
    b.bge("s10", "s2", "done")
    b.slli("t1", "s10", 3)
    b.add("t1", "t1", "s1")
    b.ld("t2", base="t1", offset=0, comment="flag load")
    b.beq("t2", "zero", "skip", comment="fst:flag")
    b.addi("s3", "s3", 1)
    b.label("skip")
    b.addi("s10", "s10", 1, comment="snoop:iter")
    b.j("loop")
    b.label("done")
    b.halt()
    program = b.build()

    rst_entries = [
        RSTEntry(program.pcs_with_comment("snoop:roi_begin")[0],
                 SnoopKind.ROI_BEGIN, "roi"),
        RSTEntry(program.pcs_with_comment("snoop:flags_base")[0],
                 SnoopKind.DEST_VALUE, "flags_base"),
        RSTEntry(program.pcs_with_comment("snoop:iter")[0],
                 SnoopKind.DEST_VALUE, "iter", droppable=True),
    ]
    fst_entries = [FSTEntry(program.pcs_with_comment("fst:flag")[0], "flag")]
    bitstream = Bitstream(
        name="flag-walk-predictor",
        rst_entries=rst_entries,
        fst_entries=fst_entries,
        component_factory=component_factory or FlagWalkPredictor,
        metadata={"scope": 64},
    )
    return Workload("flag-walk", program, memory, bitstream=bitstream)


# ---------------------------------------------------------------------- #
# 2. The component: a one-engine run-ahead predictor.
# ---------------------------------------------------------------------- #

class FlagWalkPredictor(CustomComponent):
    """Loads flags[i] ahead of the core and predicts the flag branch.

    The branch is `beq flag, zero` — taken when the flag is 0.
    """

    name = "flag-walk-predictor"

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.scope = int(self.metadata.get("scope", 16))
        self.base = None
        self.enabled = False
        self.head = 0     # oldest un-retired iteration
        self.tail = 0     # next iteration to load
        self.emitted = 0  # next iteration to predict
        self.values: dict[int, float] = {}

    def step(self, io: RFIo) -> None:
        # Observe.
        while True:
            packet = io.pop_obs()
            if packet is None:
                break
            if not isinstance(packet, ObsPacket):
                continue
            if packet.kind is SnoopKind.ROI_BEGIN:
                self.enabled = True
            elif packet.tag == "flags_base":
                self.base = int(packet.value)
            elif packet.tag == "iter":
                self.head = max(self.head, int(packet.value))
        while True:
            ret = io.pop_return()
            if ret is None:
                break
            self.values[ret.ident] = ret.value
        if not self.enabled or self.base is None:
            return
        # Run ahead: load the next flags within the speculative scope.
        while self.tail - self.head < self.scope:
            if not io.push_load(self.tail, self.base + self.tail * 8):
                break
            self.tail += 1
        # Predict in order: taken when flag == 0.
        while self.emitted in self.values:
            if not io.push_pred(self.values[self.emitted] == 0, tag="flag"):
                break
            del self.values[self.emitted]
            self.emitted += 1

    def is_idle(self) -> bool:
        if not self.enabled or self.base is None:
            return True
        if self.tail - self.head < self.scope:
            return False
        return self.emitted not in self.values


# ---------------------------------------------------------------------- #
# 3. Compare: TAGE-SC-L cannot learn random flags; the component can.
# ---------------------------------------------------------------------- #

def main() -> None:
    window = 25_000
    baseline = simulate(build_flag_walk_workload(),
                        SimConfig(max_instructions=window))
    custom = simulate(
        build_flag_walk_workload(),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )
    print(f"baseline:  IPC {baseline.ipc:.3f}  MPKI {baseline.mpki:.1f}")
    print(f"custom:    IPC {custom.ipc:.3f}  MPKI {custom.mpki:.1f}")
    print(f"speedup:   {100 * custom.speedup_over(baseline):+.0f}%")


if __name__ == "__main__":
    main()
