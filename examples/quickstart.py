"""Quickstart: simulate a workload on the baseline core, then with PFM.

Demonstrates the core public API: build a workload, configure the core
(Table 1 defaults), attach a PFM custom component via its configuration
bitstream, and compare runs.

Run:  python examples/quickstart.py
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.workloads.astar import build_astar_workload


def main() -> None:
    window = 30_000

    # 1. Baseline: the plain superscalar core (64KB-class TAGE-SC-L,
    #    three-level cache hierarchy with next-line + VLDP prefetchers).
    baseline = simulate(
        build_astar_workload(), SimConfig(max_instructions=window)
    )
    print("--- baseline core ---")
    print(baseline.summary())

    # 2. PFM: couple the reconfigurable fabric and program the custom
    #    astar branch predictor (clk4_w4, delay4, queue32, portLS1 — the
    #    paper's summary configuration).
    pfm = PFMParams(clk_ratio=4, width=4, delay=4, queue_size=32, port="LS1")
    custom = simulate(
        build_astar_workload(),
        SimConfig(max_instructions=window, pfm=pfm),
    )
    print("\n--- core + custom astar branch predictor ---")
    print(custom.summary())

    speedup = 100 * custom.speedup_over(baseline)
    print(f"\nIPC improvement: {speedup:+.0f}%  "
          f"(MPKI {baseline.mpki:.1f} -> {custom.mpki:.1f})")


if __name__ == "__main__":
    main()
