"""Generating a custom component from a declarative template (Section 7).

The paper's future-work section notes that the astar and bfs designs
follow a similar strategy, and "if this could be templated, it suggests a
path toward automation".  This example instantiates the worklist-sweep
template with astar's declarative spec — worklist source, the eight
neighbour expressions, the two guarded table checks, store inference —
and shows the generated component matching the hand-written design.

Run:  python examples/templated_component_generation.py
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.pfm.components.template import (
    astar_template_spec,
    make_astar_template_factory,
)
from repro.workloads.astar import build_astar_workload


def main() -> None:
    window = 20_000
    spec = astar_template_spec()
    print("declarative spec for astar:")
    print(f"  worklist base tag : {spec.worklist_base_tag}")
    print(f"  head counter tag  : {spec.head_counter_tag}")
    print(f"  snooped scalars   : {spec.scalar_tags} + {spec.roi_value_name}")
    print(f"  derived indices   : {spec.fanout} per worklist item")
    print(f"  guarded checks    : "
          f"{' -> '.join(c.name for c in spec.checks)}")
    print(f"  store inference   : {spec.infer_stores}")
    print()

    baseline = simulate(
        build_astar_workload(), SimConfig(max_instructions=window)
    )
    hand = simulate(
        build_astar_workload(),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )
    generated = simulate(
        build_astar_workload(component_factory=make_astar_template_factory()),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )

    print(f"{'design':<22} {'speedup':>9} {'MPKI':>7}")
    print(f"{'baseline core':<22} {'—':>9} {baseline.mpki:>7.1f}")
    for label, stats in (("hand-written", hand), ("template-generated", generated)):
        print(f"{label:<22} {100 * stats.speedup_over(baseline):>+8.0f}%"
              f" {stats.mpki:>7.1f}")
    print("\nThe generated component reproduces the hand-written design —")
    print("the paper's 'path toward automation' made concrete.")


if __name__ == "__main__":
    main()
