"""Accelerating graph search: bfs with the T0-T3 custom component.

Shows the paper's central bfs point (Section 4.2): cache misses and
branch mispredictions must be attacked *simultaneously* — perfect branch
prediction alone buys little, perfect cache alone buys a fraction of what
both together achieve, and the custom component (which combines accurate
run-ahead prediction with prefetching from its own loads) lands between.

Also demonstrates swapping input graphs (the road-network-like lattice vs
a heavy-tailed power-law graph) under the same component.

Run:  python examples/graph_bfs_acceleration.py
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import powerlaw_graph, road_graph


def evaluate(graph, graph_name: str, window: int = 30_000) -> None:
    def run(**kwargs):
        workload = build_bfs_workload(graph=graph, graph_name=graph_name)
        return simulate(workload, SimConfig(max_instructions=window, **kwargs))

    baseline = run()
    rows = [
        ("perfect branch prediction", run(perfect_branch_prediction=True)),
        ("perfect data cache", run(perfect_dcache=True)),
        ("both perfect", run(perfect_branch_prediction=True, perfect_dcache=True)),
        ("custom component (clk4_w4)", run(pfm=PFMParams(delay=0))),
    ]
    print(f"--- bfs on {graph_name} "
          f"({graph.num_nodes} nodes, {graph.num_edges} edges) ---")
    print(f"baseline IPC {baseline.ipc:.3f}, MPKI {baseline.mpki:.1f}")
    for label, stats in rows:
        print(f"  {label:<28} {100 * stats.speedup_over(baseline):+7.0f}%"
              f"   (MPKI {stats.mpki:.1f})")
    print()


def main() -> None:
    evaluate(road_graph(side=160), "roads")
    evaluate(powerlaw_graph(num_nodes=8000), "youtube")


if __name__ == "__main__":
    main()
