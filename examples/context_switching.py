"""Context isolation: deprogramming the fabric on a context switch.

Section 2.4: one context's custom component must not observe another
context in the core — enforced by removing the component from RF and the
Agents when its context is swapped out, and re-synthesizing it from the
configuration bitstream when the context returns.

This example simulates an astar time slice, "swaps the context out"
(deprogram), shows that the fabric is inert, then swaps it back in
(reprogram) and shows the component rebuilding from scratch: the ROI must
be re-entered, tables/queues start cold, and performance ramps again.

Run:  python examples/context_switching.py
"""

from repro.core import PFMParams, SimConfig, SuperscalarCore
from repro.workloads.astar import build_astar_workload


def main() -> None:
    window = 12_000
    core = SuperscalarCore(
        build_astar_workload(),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )
    stats = core.run()
    fabric = core.fabric
    print("--- time slice 1 (component programmed) ---")
    print(f"IPC {stats.ipc:.3f}, MPKI {stats.mpki:.1f}, "
          f"predictions supplied {stats.pfm_predicted_branches}")

    print("\n--- context switch out: deprogram the fabric ---")
    fabric.deprogram(now=10**7)
    print(f"fabric enabled: {fabric.enabled}")
    print(f"queues flushed: ObsQ-R={fabric.obs_q.occupancy}, "
          f"IntQ-IS={fabric.intq_is.occupancy}, "
          f"IntQ-F pending={fabric.fetch_agent.pending_count()}")
    print("the swapped-in context now runs with a plain core —")
    print("nothing of this context's behaviour is observable from RF")

    print("\n--- context switch back in: reprogram from the bitstream ---")
    old = id(fabric.component)
    fabric.reprogram(now=2 * 10**7)
    print(f"fabric enabled: {fabric.enabled}")
    print(f"fresh component instance: {id(fabric.component) != old}")
    print(f"ROI re-entry required: roi_active={fabric.roi_active}")
    print("\n(a fresh run of the same workload re-trains from zero:)")

    core2 = SuperscalarCore(
        build_astar_workload(),
        SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
    )
    stats2 = core2.run()
    print(f"time slice 2: IPC {stats2.ipc:.3f}, MPKI {stats2.mpki:.1f}")


if __name__ == "__main__":
    main()
