"""Content-addressed result store for sweep points.

Every sweep point is a deterministic function of its full
configuration, so its :class:`~repro.core.SimStats` can be published
under a content digest and served to any later run — same process,
next invocation, or a different host entirely.  The store is the layer
every distributed sweep sits on:

* **Keying** — entries are addressed by a sha256 digest over the
  complete point spec *plus* the workload's ``trace_key`` (the content
  hash of the compiled instruction stream).  Editing a workload builder
  changes the trace_key and silently invalidates every dependent entry;
  the execution backend is *excluded* because results are byte-identical
  across backends by construction (``tests/test_backend_equivalence.py``).
* **Atomicity** — entries are written to a unique temp file and
  ``os.replace``d into place, so concurrent writers (threads, worker
  processes, or two daemons sharing a directory) always leave a whole
  entry behind: last writer wins, readers never see a torn file.
* **Validation** — every read checks the envelope version, the embedded
  key, and the stats schema; anything torn, corrupted, or written by an
  older store version reads as a miss (counted in ``recoveries``) and
  gets recomputed rather than trusted.
* **Union** — :meth:`ResultStore.merge_from` copies validated entries
  between stores, so N hosts each running a shard produce stores that
  merge into one result set byte-identical to a single-host run.

Layout: ``<directory>/<key[:2]>/<key>.json`` — two-level fanout keeps
directory listings sane at million-entry scale.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.core import SimStats
from repro.workloads.tracecache import canonical_bytes

#: Bumped whenever the entry envelope or SimStats serialization changes
#: incompatibly; old entries then read as misses, never as wrong data.
STORE_VERSION = 1

#: Subdirectory of a cache dir (``.repro-cache/``) holding the store.
DEFAULT_STORE_SUBDIR = "store"


def store_dir(cache_dir: str | os.PathLike) -> Path:
    """Conventional store location under a sweep cache directory."""
    return Path(cache_dir) / DEFAULT_STORE_SUBDIR


# --------------------------------------------------------------------- #
# workload content keys
# --------------------------------------------------------------------- #

_TRACE_KEY_MEMO: dict[tuple[str, str], str | None] = {}


def trace_key_for(workload: str, overrides: dict) -> str | None:
    """Content key of the built workload's instruction stream.

    Builds the workload through the registry (annotating it with its
    trace cache key) and memoizes per process — store-key computation
    must not pay a workload build per lookup on the warm path.  Returns
    ``None`` when the workload cannot be built or carries no key; the
    store key then degrades to config-only addressing.
    """
    try:
        digest = hashlib.sha256(canonical_bytes(overrides)).hexdigest()
        memo_key = (workload, digest)
    except Exception:
        memo_key = None
    if memo_key is not None and memo_key in _TRACE_KEY_MEMO:
        return _TRACE_KEY_MEMO[memo_key]
    from repro.registry import build_workload

    try:
        built = build_workload(workload, **overrides)
        key = getattr(built, "trace_key", None)
    except Exception:
        key = None
    if memo_key is not None:
        _TRACE_KEY_MEMO[memo_key] = key
    return key


def reset_trace_key_memo() -> None:
    """Drop the per-process trace-key memo (tests and benchmarks)."""
    _TRACE_KEY_MEMO.clear()


# --------------------------------------------------------------------- #
# sharding
# --------------------------------------------------------------------- #


def parse_shard(text: str) -> tuple[int, int]:
    """Parse ``"i/n"`` into ``(index, count)`` with ``1 <= i <= n``."""
    index_text, sep, count_text = str(text).partition("/")
    try:
        if not sep:
            raise ValueError(text)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"shard spec {text!r} is not of the form I/N (e.g. 2/4)"
        ) from None
    if count < 1 or not 1 <= index <= count:
        raise ValueError(
            f"shard index must satisfy 1 <= {index} <= {count}"
        )
    return index, count


def shard_of(key: str, count: int) -> int:
    """Deterministic 1-based shard assignment for a sweep-point key.

    Hash-based, so the assignment depends only on the key — never on
    enumeration order, host, or process — and every point lands in
    exactly one shard.
    """
    return int(hashlib.sha256(key.encode()).hexdigest(), 16) % count + 1


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #


class ResultStore:
    """Content-addressed ``{digest: SimStats}`` map on disk.

    Reads are validated (version/key/schema) and memoized in-process;
    writes are atomic.  All methods tolerate a read-only or missing
    directory — the store then behaves as always-miss.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self._memo: dict[str, SimStats] = {}
        self.counters: dict[str, int] = {
            "hits": 0,
            "memo_hits": 0,
            "misses": 0,
            "publishes": 0,
            "recoveries": 0,
        }

    def path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    # -- encoding ------------------------------------------------------ #

    @staticmethod
    def encode(key: str, stats: SimStats, meta: dict | None = None) -> bytes:
        """Deterministic entry bytes: identical stats -> identical bytes.

        ``sort_keys`` json over plain dicts means two hosts that computed
        the same point independently publish byte-identical entries —
        which is what lets :meth:`merge_from` treat byte-equality as
        result-equality.
        """
        payload = {
            "version": STORE_VERSION,
            "key": key,
            "meta": dict(meta or {}),
            "stats": dataclasses.asdict(stats),
        }
        return (json.dumps(payload, sort_keys=True) + "\n").encode()

    @staticmethod
    def decode(raw: bytes, key: str) -> SimStats | None:
        """Validate entry bytes; ``None`` on any defect (never raises)."""
        try:
            payload = json.loads(raw)
        except (json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("version") != STORE_VERSION:
            return None
        if payload.get("key") != key:
            return None  # entry copied/renamed to the wrong address
        stats_payload = payload.get("stats")
        if not isinstance(stats_payload, dict):
            return None
        try:
            return SimStats(**stats_payload)
        except TypeError:
            return None  # stats schema drifted; recompute instead

    # -- read / write -------------------------------------------------- #

    def get(self, key: str) -> SimStats | None:
        stats = self._memo.get(key)
        if stats is not None:
            self.counters["memo_hits"] += 1
            return stats
        try:
            raw = self.path_for(key).read_bytes()
        except OSError:
            self.counters["misses"] += 1
            return None
        stats = self.decode(raw, key)
        if stats is None:
            self.counters["recoveries"] += 1
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        self._memo[key] = stats
        return stats

    def put(self, key: str, stats: SimStats,
            meta: dict | None = None) -> None:
        self._memo[key] = stats
        self._write_raw(self.path_for(key), self.encode(key, stats, meta))
        self.counters["publishes"] += 1

    @staticmethod
    def _write_raw(path: Path, raw: bytes) -> None:
        """Atomic publish; a failed write degrades to memory-only."""
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem[:8], suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(raw)
                os.replace(tmp_name, path)
            except BaseException:
                os.unlink(tmp_name)
                raise
        except OSError:
            pass

    def __contains__(self, key: str) -> bool:
        return key in self._memo or self.path_for(key).exists()

    # -- introspection ------------------------------------------------- #

    def files(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("??/*.json"))

    def __len__(self) -> int:
        return len(self.files())

    def size_bytes(self) -> int:
        total = 0
        for path in self.files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def reset_memo(self) -> None:
        """Drop the in-process memo (fresh-process simulation in tests)."""
        self._memo.clear()

    def clear(self) -> tuple[int, int]:
        """Delete every entry; returns ``(files_removed, bytes_freed)``."""
        removed = freed = 0
        for path in self.files():
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
        self._memo.clear()
        return removed, freed

    # -- union --------------------------------------------------------- #

    def merge_from(self, source: ResultStore | str | os.PathLike
                   ) -> dict[str, int]:
        """Union *source*'s entries into this store.

        Entries are validated before copying (a corrupt shard file never
        propagates) and copied as raw bytes, preserving byte-identity.
        On a key collision: identical bytes count as ``identical``;
        differing bytes keep ours and count as ``conflicts`` — with
        deterministic simulation a conflict means one side is stale or
        damaged, and first-wins keeps merges order-insensitive once a
        value has landed.
        """
        if not isinstance(source, ResultStore):
            source = ResultStore(source)
        summary = {"added": 0, "identical": 0, "conflicts": 0, "invalid": 0}
        for path in source.files():
            key = path.stem
            try:
                raw = path.read_bytes()
            except OSError:
                summary["invalid"] += 1
                continue
            if self.decode(raw, key) is None:
                summary["invalid"] += 1
                continue
            dest = self.path_for(key)
            try:
                existing = dest.read_bytes()
            except OSError:
                existing = None
            if existing is not None:
                summary["identical" if existing == raw else "conflicts"] += 1
                continue
            self._write_raw(dest, raw)
            summary["added"] += 1
        return summary
