"""Content-addressed result store: the sharing layer for sweeps.

``ResultStore`` persists every completed sweep point under a digest of
its full configuration (workload content included, backend excluded),
so repeated points — across runs, processes, daemons, or hosts — are
cache hits instead of simulations.  ``shard_of``/``parse_shard`` give N
independent invocations a deterministic partition of a sweep grid, and
``ResultStore.merge_from`` unions their stores back into one result set
byte-identical to a single-host run.  See EXPERIMENTS.md "Distributed
sweeps".
"""

from repro.store.gc import collect, gc_cache, parse_size
from repro.store.resultstore import (
    DEFAULT_STORE_SUBDIR,
    STORE_VERSION,
    ResultStore,
    parse_shard,
    reset_trace_key_memo,
    shard_of,
    store_dir,
    trace_key_for,
)

__all__ = [
    "DEFAULT_STORE_SUBDIR",
    "STORE_VERSION",
    "ResultStore",
    "collect",
    "gc_cache",
    "parse_shard",
    "parse_size",
    "reset_trace_key_memo",
    "shard_of",
    "store_dir",
    "trace_key_for",
]
