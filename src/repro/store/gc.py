"""LRU-by-mtime eviction across the on-disk cache sections.

``.repro-cache/`` accumulates three kinds of content-addressed files —
compiled traces, legacy baseline entries, and result-store entries —
and at fleet scale the store grows without bound.  ``cache gc
--max-bytes SIZE`` walks all three sections, sorts by mtime (every
cache read touches its file via :func:`os.utime`-free reads, so mtime
is write-recency: least-recently *published* goes first), and deletes
oldest-first until the total fits the budget.

Eviction is always safe: every evicted file is a pure cache entry that
the next run recomputes and republishes.
"""

from __future__ import annotations

import os
from pathlib import Path

#: ``(section name, glob pattern relative to the cache dir)`` — the
#: evictable sections.  Checkpoints and the service job journal are
#: deliberately absent: those are state, not cache.
SECTIONS: tuple[tuple[str, str], ...] = (
    ("traces", "traces/*.trace.pkl"),
    ("baselines", "baselines/*.json"),
    ("store", "store/??/*.json"),
)

_SUFFIXES = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_size(text: str) -> int:
    """``"512"`` bytes, ``"64K"``, ``"200M"``, ``"1G"`` -> byte count."""
    cleaned = str(text).strip().lower()
    factor = 1
    if cleaned and cleaned[-1] in _SUFFIXES:
        factor = _SUFFIXES[cleaned[-1]]
        cleaned = cleaned[:-1]
    try:
        value = int(cleaned)
    except ValueError:
        raise ValueError(
            f"size {text!r} is not an integer with optional K/M/G suffix"
        ) from None
    if value < 0:
        raise ValueError("size must be >= 0")
    return value * factor


def collect(cache_dir: str | os.PathLike) -> list[tuple[Path, int, float, str]]:
    """Every evictable file as ``(path, size, mtime, section)``."""
    base = Path(cache_dir)
    entries: list[tuple[Path, int, float, str]] = []
    for section, pattern in SECTIONS:
        for path in base.glob(pattern):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently deleted
            entries.append((path, stat.st_size, stat.st_mtime, section))
    return entries


def gc_cache(cache_dir: str | os.PathLike, max_bytes: int) -> dict:
    """Evict LRU files until the evictable sections fit *max_bytes*.

    Returns a summary::

        {"sections": {name: {"files": n, "bytes": b,
                             "evicted_files": n, "evicted_bytes": b}},
         "total_bytes": ..., "evicted_bytes": ..., "kept_bytes": ...}
    """
    entries = collect(cache_dir)
    sections: dict[str, dict[str, int]] = {
        name: {"files": 0, "bytes": 0, "evicted_files": 0, "evicted_bytes": 0}
        for name, _ in SECTIONS
    }
    total = 0
    for _, size, _, section in entries:
        sections[section]["files"] += 1
        sections[section]["bytes"] += size
        total += size

    # Oldest mtime first; path as tiebreaker keeps eviction deterministic
    # when a whole batch shares one timestamp.
    entries.sort(key=lambda entry: (entry[2], str(entry[0])))
    evicted = 0
    excess = total - max_bytes
    for path, size, _, section in entries:
        if excess <= 0:
            break
        try:
            path.unlink()
        except OSError:
            continue  # already gone or unwritable: skip, keep going
        sections[section]["evicted_files"] += 1
        sections[section]["evicted_bytes"] += size
        evicted += size
        excess -= size
    return {
        "sections": sections,
        "total_bytes": total,
        "evicted_bytes": evicted,
        "kept_bytes": total - evicted,
    }
