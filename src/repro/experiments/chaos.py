"""Chaos-recovery campaign: every fault plan x {no-recovery, recovery}.

The ``faults`` campaign (PR 2) proves the watchdog *detects* — every
fault plan degrades gracefully to the core's own predictor.  This
campaign proves the reconfiguration controller *recovers*: each built-in
plan runs twice, once with today's detect-and-amputate watchdog alone and
once with a :class:`~repro.core.watchdog.RecoveryPolicy` armed, so the
fabric quiesces, drains, and hot-reloads the bitstream instead of dying.
A third kind of point — one *scheduled* same-bitstream swap mid-run on a
fault-free fabric — pins the architectural-invisibility claim: the
swapped run must be ``arch_digest``-identical to the clean run, not just
to the plain baseline.

Reported per faulted point: IPC retained vs the clean watchdog-enabled
run (the recovery rows should sit strictly above their no-recovery
twins for liveness faults), mean cycles-to-recovery
(``reconfig_cycles / reconfigs``), and the fabric's final state.  The
equivalence oracle runs on every point — recovery must never buy IPC
with architectural state.  ``--json`` output is deterministic and
byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

import dataclasses

from repro.core.params import PFMParams
from repro.core.watchdog import RecoveryPolicy
from repro.experiments.faults import OracleViolation, campaign_watchdog
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
    stats_to_dict,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW
from repro.faults import BUILTIN_PLANS, check_equivalence

#: astar is the campaign workload: it exercises the full recovery
#: surface — FST overrides (breaker trips), the squash protocol (lost
#: squash-done reloads), per-call snoop re-arming after a swap, and the
#: injected-load path.  Pure-prefetch workloads never consult IntQ-F, so
#: the liveness triggers have nothing to save there.
CHAOS_WORKLOADS = ("astar",)

#: Window used by ``chaos --smoke`` (CI exercises the state machine and
#: the oracle, not the cycles-to-recovery margins).
CHAOS_SMOKE_WINDOW = 2_000


def campaign_recovery() -> RecoveryPolicy:
    """Recovery policy armed on every ``[.../recovery]`` point.

    Three reloads with 2x backoff bound the revival budget at
    ``2048 + 4096 + 8192`` core cycles; ``reload_on_breaker`` scrubs
    hint-corrupting components, and two squash timeouts condemn a lossy
    handshake.  Thresholds deliberately match the ``faults`` campaign
    watchdog so the only variable between the paired points is recovery.
    """
    return RecoveryPolicy(
        max_reloads=3,
        reconfig_latency_cycles=2_048,
        reload_backoff_factor=2,
        drain_timeout_cycles=512,
        reload_on_breaker=True,
        squash_timeout_reload_after=2,
    )


def _chaos_pfm(fault_plan=None, recovery: RecoveryPolicy | None = None,
               tenants: tuple = (),
               ) -> PFMParams:
    return PFMParams(
        watchdog=campaign_watchdog(),
        fault_plan=fault_plan,
        recovery=recovery or RecoveryPolicy(),
        tenants=tenants,
    )


def chaos_points(
    window: int, workloads: tuple[str, ...] = CHAOS_WORKLOADS,
    tenants: tuple = (),
) -> list[SweepPoint]:
    """Campaign grid.  With *tenants*, every PFM point hosts the
    co-tenants too: faults and recovery stay scoped to slot 0 (co-tenants
    never inherit the fault plan or recovery policy), so the oracle then
    also proves per-slot recovery leaves the neighbours' streams — and
    the architectural stream — untouched.
    """
    points = []
    swap_at = max(1, window // 4)
    for name in workloads:
        points.append(baseline_point(name, window))
        points.append(pfm_point(f"{name} [clean]", name, window,
                      _chaos_pfm(tenants=tenants)))
        points.append(
            pfm_point(
                f"{name} [swap]",
                name,
                window,
                _chaos_pfm(recovery=RecoveryPolicy(scheduled_reload_at=swap_at),
                           tenants=tenants),
            )
        )
        for plan_name, plan in BUILTIN_PLANS.items():
            points.append(
                pfm_point(
                    f"{name} [fault:{plan_name}/no-recovery]",
                    name,
                    window,
                    _chaos_pfm(plan, tenants=tenants),
                )
            )
            points.append(
                pfm_point(
                    f"{name} [fault:{plan_name}/recovery]",
                    name,
                    window,
                    _chaos_pfm(plan, campaign_recovery(), tenants=tenants),
                )
            )
    return points


def run_chaos(
    window: int = DEFAULT_WINDOW,
    pool: SweepPool | None = None,
    workloads: tuple[str, ...] = CHAOS_WORKLOADS,
    tenants: tuple = (),
) -> tuple[ExperimentResult, dict]:
    """Run the campaign; return the rendered result and a JSON payload."""
    pool = pool or default_pool()
    points = chaos_points(window, workloads, tenants)
    stats = pool.run(points)

    result = ExperimentResult(
        experiment="Chaos",
        title=(
            f"{len(BUILTIN_PLANS)} fault plans x {{no-recovery, recovery}}"
            f" x {len(workloads)} workload(s) + 1 scheduled swap"
        ),
        unit="% of clean watchdog-enabled IPC (clean row: % of baseline)",
    )
    payload: dict = {
        "window": window,
        "workloads": list(workloads),
        "plans": sorted(BUILTIN_PLANS),
        "watchdog": dataclasses.asdict(campaign_watchdog()),
        "recovery": dataclasses.asdict(campaign_recovery()),
        "points": {},
    }
    if tenants:
        payload["tenants"] = [spec.label() for spec in tenants]
    failures = []
    swap_mismatches = []
    for point in points:
        point_stats = stats[point.label]
        entry = {
            "workload": point.workload,
            "key": point.key(),
            "ipc": point_stats.ipc,
            "arch_digest": point_stats.arch_digest,
            "fabric_state": point_stats.fabric_state,
            "reconfigs": point_stats.reconfigs,
            "reconfig_cycles": point_stats.reconfig_cycles,
            "reloads_abandoned": point_stats.reloads_abandoned,
            "drain_stall_cycles": point_stats.drain_stall_cycles,
            "mean_cycles_to_recovery": (
                point_stats.reconfig_cycles / point_stats.reconfigs
                if point_stats.reconfigs
                else None
            ),
            "stats": stats_to_dict(point_stats),
        }
        if not point.label.startswith("baseline:"):
            baseline = stats[f"baseline:{point.workload}"]
            verdict = check_equivalence(baseline, point_stats)
            entry["oracle_ok"] = verdict.ok
            if not verdict.ok:
                failures.append(f"{point.label}: {verdict.reason}")
            clean = stats[f"{point.workload} [clean]"]
            if point.label.endswith("[clean]"):
                result.add(
                    point.label, 100.0 * point_stats.speedup_over(baseline)
                )
            else:
                retained = (
                    100.0 * point_stats.ipc / clean.ipc if clean.ipc else 0.0
                )
                entry["ipc_retained_pct"] = retained
                result.add(point.label, retained)
            if point.label.endswith("[swap]"):
                # The architectural-invisibility pin: a mid-run
                # same-bitstream swap must be digest-identical to the
                # *clean* run, not merely to the plain baseline.
                invisible = point_stats.arch_digest == clean.arch_digest
                entry["swap_invisible"] = invisible
                if not invisible:
                    swap_mismatches.append(point.label)
        payload["points"][point.label] = entry
    payload["oracle_failures"] = failures
    payload["swap_mismatches"] = swap_mismatches
    if failures:
        raise OracleViolation(
            "architectural-equivalence oracle failed for "
            + "; ".join(failures)
        )
    if swap_mismatches:
        raise OracleViolation(
            "scheduled same-bitstream swap was architecturally visible for "
            + "; ".join(swap_mismatches)
        )
    recovered = sum(
        1
        for label, entry in payload["points"].items()
        if label.endswith("/recovery]")
        and entry["reconfigs"] >= 1
        and entry["fabric_state"] != "disabled"
    )
    paired = sum(1 for p in points if p.label.endswith("/recovery]"))
    result.notes = (
        f"oracle: all points digest-identical to baseline; scheduled swap"
        f" digest-identical to clean; {recovered}/{paired} recovery points"
        f" ended re-ACTIVE with >=1 reload"
    )
    return result, payload


def chaos(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Registry entry point (rendered result only)."""
    result, _ = run_chaos(window, pool)
    return result
