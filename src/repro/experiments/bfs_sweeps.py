"""bfs experiments: Figure 12, Table 3, Figure 13, Figure 14 (Section 4.2).

Grids are declared as :class:`~repro.experiments.pool.SweepPoint` lists
(``*_points``) and evaluated by a :class:`~repro.experiments.pool.SweepPool`.
"""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    add_speedup_rows,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult, add_stat_rows
from repro.experiments.runner import DEFAULT_WINDOW

WORKLOAD = "bfs-roads"
BASE = f"baseline:{WORKLOAD}"
YT_BASE = "baseline:bfs-youtube"


def fig12_points(window: int, include_youtube: bool = True) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    for label, kwargs in (
        ("perfBP", dict(perfect_branch_prediction=True)),
        ("perfD$", dict(perfect_dcache=True)),
        ("perfBP+D$", dict(perfect_branch_prediction=True, perfect_dcache=True)),
    ):
        points.append(
            SweepPoint(label=label, workload=WORKLOAD, window=window, **kwargs)
        )
    for clk, width in [(4, 1), (8, 1), (4, 2), (4, 4)]:
        pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
        points.append(pfm_point(f"clk{clk}_w{width}", WORKLOAD, window, pfm))
    if include_youtube:
        points.append(baseline_point("bfs-youtube", window))
        points.append(
            pfm_point(
                "clk4_w4 (Youtube)", "bfs-youtube", window, PFMParams(delay=0)
            )
        )
    return points


def fig12(window: int = DEFAULT_WINDOW, include_youtube: bool = True,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Idealizations + custom component vs C and W (Roads; Youtube extra)."""
    result = ExperimentResult(
        experiment="Figure 12",
        title="bfs speedups: idealizations and clkC_wW (Roads graph)",
        paper={
            "perfBP": 11.0,
            "perfD$": 152.0,
            "perfBP+D$": 426.0,
            "clk4_w4": 125.0,
        },
        notes=(
            "paper: both bottlenecks must be attacked together — perfect"
            " BP alone is small, perfect D$ alone a fraction of both;"
            " measured magnitudes run larger than the paper's because the"
            " synthetic graph windows are colder (see EXPERIMENTS.md)"
        ),
    )
    pool = pool or default_pool()
    points = fig12_points(window, include_youtube)
    stats = pool.run(points)
    for point in points:
        if point.label in (BASE, YT_BASE):
            continue
        base = YT_BASE if point.workload == "bfs-youtube" else BASE
        result.add(point.label, pool.speedup_pct(stats, point.label, base))
    return result


def table3_points(window: int) -> list[SweepPoint]:
    return [pfm_point("default", WORKLOAD, window, PFMParams())]


def table3(window: int = DEFAULT_WINDOW,
           pool: SweepPool | None = None) -> ExperimentResult:
    """FST and RST snoop percentages inside the ROI."""
    result = ExperimentResult(
        experiment="Table 3",
        title="bfs: FST and RST snoop percentages",
        unit="% of instructions in ROI",
        paper={"retired hit RST": 31.0, "fetched hit FST": 13.0},
        notes="paper: bfs observes a higher fraction of retired instructions than astar",
    )
    pool = pool or default_pool()
    stats = pool.run(table3_points(window))["default"]
    add_stat_rows(result, stats, [
        ("retired hit RST", "rst_hit_pct"),
        ("fetched hit FST", "fst_hit_pct"),
    ])
    return result


def fig13_points(window: int) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    for delay in (0, 2, 4, 8):
        points.append(
            pfm_point(f"delay{delay}", WORKLOAD, window, PFMParams(delay=delay))
        )
    for queue in (8, 16, 32, 64):
        points.append(
            pfm_point(
                f"queue{queue}", WORKLOAD, window,
                PFMParams(delay=4, queue_size=queue),
            )
        )
    for port in ("ALL", "LS", "LS1"):
        points.append(
            pfm_point(
                f"port{port}", WORKLOAD, window, PFMParams(delay=4, port=port)
            )
        )
    return points


def fig13(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Sensitivity to delayD (a), queueQ (b), portP (c)."""
    result = ExperimentResult(
        experiment="Figure 13",
        title="bfs sensitivity to D, Q, P",
        notes="paper: low sensitivity to all three",
    )
    pool = pool or default_pool()
    points = fig13_points(window)
    stats = pool.run(points)
    add_speedup_rows(result, pool, points, stats, BASE)
    return result


def fig14_points(window: int) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    for entries in (8, 16, 32, 64, 128):
        pfm = PFMParams(
            delay=4,
            port="LS1",
            component_overrides={"queue_entries": entries},
        )
        points.append(pfm_point(f"{entries} entries", WORKLOAD, window, pfm))
    return points


def fig14(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Sensitivity to the frontier/begin-address/trip-count/neighbor queues."""
    result = ExperimentResult(
        experiment="Figure 14",
        title="bfs speedup vs queue entries (speculative scope)",
        notes=(
            "paper: performance scales with the number of entries"
            " (all configs clk4_w4, delay4, queue32, portLS1)"
        ),
    )
    pool = pool or default_pool()
    points = fig14_points(window)
    stats = pool.run(points)
    add_speedup_rows(result, pool, points, stats, BASE)
    return result


def bfs_mpki_points(window: int) -> list[SweepPoint]:
    return [
        baseline_point(WORKLOAD, window),
        pfm_point("custom", WORKLOAD, window, PFMParams(delay=0)),
    ]


def bfs_mpki(window: int = DEFAULT_WINDOW,
             pool: SweepPool | None = None) -> ExperimentResult:
    """Headline MPKI collapse (Section 4.2 text: 19.1 -> 0.5)."""
    result = ExperimentResult(
        experiment="Section 4.2",
        title="bfs branch MPKI, baseline vs custom component",
        unit="mispredictions per kilo-instruction",
        paper={"baseline": 19.1, "custom": 0.5},
    )
    pool = pool or default_pool()
    stats = pool.run(bfs_mpki_points(window))
    result.add("baseline", stats[BASE].mpki)
    result.add("custom", stats["custom"].mpki)
    return result
