"""bfs experiments: Figure 12, Table 3, Figure 13, Figure 14 (Section 4.2)."""

from __future__ import annotations

from repro.core import PFMParams, SimConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    pfm_speedup_pct,
    run_baseline,
    run_config,
    run_pfm,
    speedup_pct,
)

WORKLOAD = "bfs-roads"


def fig12(window: int = DEFAULT_WINDOW, include_youtube: bool = True) -> ExperimentResult:
    """Idealizations + custom component vs C and W (Roads; Youtube extra)."""
    result = ExperimentResult(
        experiment="Figure 12",
        title="bfs speedups: idealizations and clkC_wW (Roads graph)",
        paper={
            "perfBP": 11.0,
            "perfD$": 152.0,
            "perfBP+D$": 426.0,
            "clk4_w4": 125.0,
        },
        notes=(
            "paper: both bottlenecks must be attacked together — perfect"
            " BP alone is small, perfect D$ alone a fraction of both;"
            " measured magnitudes run larger than the paper's because the"
            " synthetic graph windows are colder (see EXPERIMENTS.md)"
        ),
    )
    base = run_baseline(WORKLOAD, window)
    for label, kwargs in (
        ("perfBP", dict(perfect_branch_prediction=True)),
        ("perfD$", dict(perfect_dcache=True)),
        ("perfBP+D$", dict(perfect_branch_prediction=True, perfect_dcache=True)),
    ):
        stats = run_config(
            WORKLOAD, SimConfig(max_instructions=window, **kwargs)
        )
        result.add(label, speedup_pct(stats, base))
    for clk, width in [(4, 1), (8, 1), (4, 2), (4, 4)]:
        pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
        result.add(f"clk{clk}_w{width}", pfm_speedup_pct(WORKLOAD, pfm, window))
    if include_youtube:
        yt_base = run_baseline("bfs-youtube", window)
        yt = run_pfm("bfs-youtube", PFMParams(delay=0), window)
        result.add("clk4_w4 (Youtube)", speedup_pct(yt, yt_base))
    return result


def table3(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """FST and RST snoop percentages inside the ROI."""
    result = ExperimentResult(
        experiment="Table 3",
        title="bfs: FST and RST snoop percentages",
        unit="% of instructions in ROI",
        paper={"retired hit RST": 31.0, "fetched hit FST": 13.0},
        notes="paper: bfs observes a higher fraction of retired instructions than astar",
    )
    stats = run_pfm(WORKLOAD, PFMParams(), window)
    result.add("retired hit RST", stats.rst_hit_pct)
    result.add("fetched hit FST", stats.fst_hit_pct)
    return result


def fig13(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Sensitivity to delayD (a), queueQ (b), portP (c)."""
    result = ExperimentResult(
        experiment="Figure 13",
        title="bfs sensitivity to D, Q, P",
        notes="paper: low sensitivity to all three",
    )
    for delay in (0, 2, 4, 8):
        pfm = PFMParams(delay=delay)
        result.add(f"delay{delay}", pfm_speedup_pct(WORKLOAD, pfm, window))
    for queue in (8, 16, 32, 64):
        pfm = PFMParams(delay=4, queue_size=queue)
        result.add(f"queue{queue}", pfm_speedup_pct(WORKLOAD, pfm, window))
    for port in ("ALL", "LS", "LS1"):
        pfm = PFMParams(delay=4, port=port)
        result.add(f"port{port}", pfm_speedup_pct(WORKLOAD, pfm, window))
    return result


def fig14(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Sensitivity to the frontier/begin-address/trip-count/neighbor queues."""
    result = ExperimentResult(
        experiment="Figure 14",
        title="bfs speedup vs queue entries (speculative scope)",
        notes=(
            "paper: performance scales with the number of entries"
            " (all configs clk4_w4, delay4, queue32, portLS1)"
        ),
    )
    for entries in (8, 16, 32, 64, 128):
        pfm = PFMParams(
            delay=4,
            port="LS1",
            component_overrides={"queue_entries": entries},
        )
        result.add(f"{entries} entries", pfm_speedup_pct(WORKLOAD, pfm, window))
    return result


def bfs_mpki(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Headline MPKI collapse (Section 4.2 text: 19.1 -> 0.5)."""
    result = ExperimentResult(
        experiment="Section 4.2",
        title="bfs branch MPKI, baseline vs custom component",
        unit="mispredictions per kilo-instruction",
        paper={"baseline": 19.1, "custom": 0.5},
    )
    result.add("baseline", run_baseline(WORKLOAD, window).mpki)
    result.add("custom", run_pfm(WORKLOAD, PFMParams(delay=0), window).mpki)
    return result
