"""Parallel sweep execution engine.

Every figure and table is a sweep: a list of independent
``(workload, window, configuration)`` points, each evaluated by one call
to :func:`~repro.core.simulate`.  This module makes that structure
explicit — sweeps declare their grids as :class:`SweepPoint` lists and a
:class:`SweepPool` evaluates them, serially or fanned out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.

Three properties the harness guarantees:

* **Determinism** — a point's result depends only on the point (workload
  builders are seeded, the cycle model has no hidden global state), so
  results are bit-identical regardless of worker count or scheduling
  order.  ``tests/test_determinism.py`` and the golden snapshots under
  ``tests/goldens/`` enforce this.
* **Result reuse** — every completed point (baseline, PFM, oracle,
  telemetry alike) is published to a content-addressed
  :class:`~repro.store.ResultStore` under the cache directory (CLI
  default ``.repro-cache/store/``) and every requested point is looked
  up there first, so concurrent workers, later invocations, resident
  daemons, and merged stores from other hosts never rerun a point
  anyone has already paid for.
* **Checkpoint/resume** — with a checkpoint path set, every finished
  point is appended to a JSONL file as it completes; a re-invocation of
  an interrupted sweep replays the file and only computes the remainder.
  The checkpoint is removed once the whole sweep has succeeded.
* **Crash containment** — a point that raises, or a worker process that
  dies (OOM-killed, segfaulted), is retried up to ``retries`` times with
  ``retry_backoff``-second exponential backoff, in a fresh executor when
  the pool itself broke.  Points that still fail are appended to the
  checkpoint as ``{"key": ..., "failed": true, "error": ...}`` records —
  skipped on replay so a resume retries them — the checkpoint is *kept*,
  and :class:`SweepFailure` summarizes what was lost.  ``fail_fast=True``
  (CLI ``--fail-fast``) restores the old raise-on-first-error behavior.
  ``KeyboardInterrupt`` always propagates immediately.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path

from repro.core import PFMParams, SimConfig, SimStats, simulate
from repro.store import ResultStore, store_dir
from repro.telemetry import TelemetryParams
from repro.workloads.tracecache import (
    CACHE_DIR_ENV,
    DEFAULT_CACHE_DIR,
    canonical_bytes,
)

#: Named oracle factories, so oracle-driven points stay declarative and
#: picklable (the factory runs inside the worker, next to the workload).
ORACLES = {
    "astar-slipstream": "repro.slipstream:make_astar_slipstream",
    "bfs-slipstream": "repro.slipstream:make_bfs_slipstream",
}


def _resolve_oracle(name: str):
    try:
        module_name, _, attr = ORACLES[name].partition(":")
    except KeyError:
        raise ValueError(f"unknown oracle {name!r}; known: {sorted(ORACLES)}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)


@dataclass
class SweepPoint:
    """One independent simulation of a sweep grid.

    ``label`` names the row in the rendered result; everything else
    describes the run itself.  Points must be picklable: ``overrides``
    are forwarded to the workload builder in the worker process, and
    ``oracle`` names a factory from :data:`ORACLES` (called with the
    built workload plus ``oracle_kwargs``) rather than holding a live
    oracle object.
    """

    label: str
    workload: str
    window: int
    pfm: PFMParams | None = None
    perfect_branch_prediction: bool = False
    perfect_dcache: bool = False
    oracle: str | None = None
    oracle_kwargs: dict = field(default_factory=dict)
    overrides: dict = field(default_factory=dict)
    telemetry: TelemetryParams | None = None

    @property
    def is_baseline(self) -> bool:
        """True for plain-core runs, the ones worth persisting on disk."""
        return (
            self.pfm is None
            and not self.perfect_branch_prediction
            and not self.perfect_dcache
            and self.oracle is None
            # Telemetry-carrying runs haul their event snapshot along;
            # never serve them as (or poison) a cached plain baseline.
            and self.telemetry is None
        )

    def _config_spec(self) -> dict:
        spec = {
            "workload": self.workload,
            "window": self.window,
            "pfm": dataclasses.asdict(self.pfm) if self.pfm else None,
            "perfect_bp": self.perfect_branch_prediction,
            "perfect_dcache": self.perfect_dcache,
            "oracle": self.oracle,
            "oracle_kwargs": self.oracle_kwargs,
            "overrides": self.overrides,
        }
        if self.telemetry is not None:
            # Added only when set so pre-existing cache keys still match.
            spec["telemetry"] = dataclasses.asdict(self.telemetry)
        return spec

    def config_key(self) -> str:
        """Content hash of the run configuration (label excluded)."""
        digest = hashlib.sha256(_canonical_bytes(self._config_spec()))
        return digest.hexdigest()[:16]

    def key(self) -> str:
        """Stable identity used by the memory memo and checkpoints."""
        return f"{self.workload}-w{self.window}-{self.config_key()}"

    def store_key(self) -> str:
        """Full content address for the shared result store.

        Extends the :meth:`config_key` spec with the workload's
        ``trace_key`` — the content hash of its compiled instruction
        stream — so editing a workload builder silently invalidates
        every dependent store entry, on every host.  The execution
        backend is deliberately *not* part of the key: results are
        byte-identical across backends by construction
        (``tests/test_backend_equivalence.py`` pins that contract).
        """
        from repro.store import trace_key_for

        spec = self._config_spec()
        spec["trace_key"] = trace_key_for(self.workload, self.overrides)
        return hashlib.sha256(_canonical_bytes(spec)).hexdigest()


# Canonical spec encoding is shared with the trace cache so sweep-point
# keys and trace-cache memo keys agree on what "the same overrides" means.
_canonical_bytes = canonical_bytes


class SweepFailure(RuntimeError):
    """One or more sweep points failed after exhausting their retries.

    ``errors`` maps point labels to the final error message; successful
    points were checkpointed before this was raised, so re-running the
    sweep resumes from them and recomputes only the failures.
    """

    def __init__(self, errors: dict[str, str]):
        self.errors = dict(errors)
        summary = "; ".join(
            f"{label}: {message}" for label, message in sorted(errors.items())
        )
        super().__init__(
            f"{len(errors)} sweep point(s) failed after retries: {summary}"
        )


def stats_to_dict(stats: SimStats) -> dict:
    return dataclasses.asdict(stats)


def stats_from_dict(payload: dict) -> SimStats:
    return SimStats(**payload)


def run_point(point: SweepPoint) -> SimStats:
    """Evaluate one point (this is the function worker processes run)."""
    from repro.registry import build_workload

    workload = build_workload(point.workload, **point.overrides)
    oracle = None
    if point.oracle is not None:
        oracle = _resolve_oracle(point.oracle)(workload, **point.oracle_kwargs)
    config = SimConfig(
        max_instructions=point.window,
        pfm=point.pfm,
        perfect_branch_prediction=point.perfect_branch_prediction,
        perfect_dcache=point.perfect_dcache,
        oracle=oracle,
        telemetry=point.telemetry,
    )
    return simulate(workload, config)


def baseline_point(workload: str, window: int, label: str | None = None,
                   **overrides) -> SweepPoint:
    """Plain-core point, labelled ``baseline:<workload>`` by default."""
    return SweepPoint(
        label=label or f"baseline:{workload}",
        workload=workload,
        window=window,
        overrides=overrides,
    )


def pfm_point(label: str, workload: str, window: int, pfm: PFMParams,
              **overrides) -> SweepPoint:
    """PFM-enabled point."""
    return SweepPoint(
        label=label,
        workload=workload,
        window=window,
        pfm=pfm,
        overrides=overrides,
    )


class SweepPool:
    """Evaluates sweep points, serially or across worker processes.

    ``jobs=1`` runs in-process (no executor, no pickling) — the
    reference execution mode the determinism tests compare against.
    ``jobs>1`` fans points out over a process pool; results are
    collected as they complete but always keyed by label, so callers
    see an order-independent mapping.

    ``cache_dir=None`` keeps result reuse purely in-memory (the default
    for library use, e.g. under pytest); pass a directory (the CLI
    passes ``.repro-cache``) to attach a content-addressed
    :class:`~repro.store.ResultStore` under ``<cache_dir>/store/`` that
    persists *every* completed point across processes, invocations, and
    hosts.  Pass ``store`` explicitly (a :class:`ResultStore` or a
    directory) to share one store between pools or point several
    shard runs at separate stores.  ``checkpoint`` names a JSONL file
    recording each finished point for crash recovery.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: str | os.PathLike | None = None,
        checkpoint: str | os.PathLike | None = None,
        retries: int = 2,
        retry_backoff: float = 0.5,
        fail_fast: bool = False,
        memoize_all: bool = False,
        store: ResultStore | str | os.PathLike | None = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.checkpoint = Path(checkpoint) if checkpoint is not None else None
        self.retries = 0 if fail_fast else retries
        self.retry_backoff = retry_backoff
        self.fail_fast = fail_fast
        if store is None and self.cache_dir is not None:
            store = store_dir(self.cache_dir)
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        #: Content-addressed disk store serving *all* point kinds, or
        #: ``None`` for memory-only pools.
        self.store: ResultStore | None = store
        #: With ``memoize_all`` the in-memory cache serves *every* point
        #: kind, not just plain baselines — sound because all points are
        #: deterministic functions of their key.  The resident service
        #: turns this on over a shared cache dict so repeated identical
        #: requests (PFM configs included) are pure cache hits without
        #: paying a store-key workload build.
        self.memoize_all = memoize_all
        self._memory_cache: dict[str, SimStats] = {}
        self._store_keys: dict[str, str] = {}
        #: Accounting for the most recent run(): distinct points computed
        #: vs replayed from checkpoint vs served from the memory memo vs
        #: served from the result store.
        self.last_run_info: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # result store + memory memo
    # ------------------------------------------------------------------ #

    def _store_key(self, point: SweepPoint) -> str:
        """Store address for *point*, memoized per pool (the digest pays
        one workload build per distinct point, see ``store_key``)."""
        key = point.key()
        skey = self._store_keys.get(key)
        if skey is None:
            skey = point.store_key()
            self._store_keys[key] = skey
        return skey

    def _remember(self, point: SweepPoint, stats: SimStats) -> None:
        if point.is_baseline or self.memoize_all:
            self._memory_cache[point.key()] = stats

    def _cached_in_memory(self, point: SweepPoint) -> SimStats | None:
        if not (point.is_baseline or self.memoize_all):
            return None
        return self._memory_cache.get(point.key())

    def _store_lookup(self, point: SweepPoint) -> SimStats | None:
        if self.store is None:
            return None
        return self.store.get(self._store_key(point))

    def _publish(self, point: SweepPoint, stats: SimStats,
                 overwrite: bool = True) -> None:
        if self.store is None:
            return
        skey = self._store_key(point)
        if not overwrite and skey in self.store:
            return
        self.store.put(
            skey,
            stats,
            meta={
                "workload": point.workload,
                "window": point.window,
                "point_key": point.key(),
            },
        )

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #

    def _load_checkpoint(self) -> dict[str, SimStats]:
        done: dict[str, SimStats] = {}
        if self.checkpoint is None or not self.checkpoint.exists():
            return done
        with self.checkpoint.open() as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn final line from a killed run
                if not isinstance(record, dict) or "key" not in record:
                    continue  # foreign or half-schema line
                if record.get("failed"):
                    # Recorded so humans can see what died; a resumed
                    # sweep retries the point rather than trusting it.
                    done.pop(record["key"], None)
                    continue
                try:
                    done[record["key"]] = stats_from_dict(record["stats"])
                except (KeyError, TypeError):
                    # Stats payload from a different SimStats schema (or
                    # torn mid-object yet still valid JSON): recompute
                    # the point rather than resume from a bad record.
                    continue
        return done

    def _append_record(self, record: dict) -> None:
        """Crash-safe append: flush makes the line visible to concurrent
        readers, fsync makes it survive the machine dying — a record is
        either fully durable or a torn trailing line the loader skips."""
        assert self.checkpoint is not None
        self.checkpoint.parent.mkdir(parents=True, exist_ok=True)
        with self.checkpoint.open("a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _append_checkpoint(self, point: SweepPoint, stats: SimStats) -> None:
        if self.checkpoint is None:
            return
        self._append_record(
            {"key": point.key(), "stats": stats_to_dict(stats)}
        )

    def _append_failure(self, point: SweepPoint, error: str) -> None:
        if self.checkpoint is None:
            return
        self._append_record(
            {"key": point.key(), "failed": True, "error": error}
        )

    def _clear_checkpoint(self) -> None:
        if self.checkpoint is not None and self.checkpoint.exists():
            self.checkpoint.unlink()

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def run(self, points: list[SweepPoint]) -> dict[str, SimStats]:
        """Evaluate *points*, returning ``{label: SimStats}``.

        Labels must be unique.  Points with identical configurations are
        computed once and fanned back out to every label that asked.
        """
        labels = [point.label for point in points]
        if len(set(labels)) != len(labels):
            duplicates = sorted({l for l in labels if labels.count(l) > 1})
            raise ValueError(f"duplicate sweep point labels: {duplicates}")

        results: dict[str, SimStats] = {}
        finished = self._load_checkpoint()
        resumed = 0
        cached = 0
        store_hits = 0

        pending: dict[str, SweepPoint] = {}  # key -> representative point
        waiting: dict[str, list[SweepPoint]] = {}  # key -> all points
        seen: set[str] = set()
        for point in points:
            key = point.key()
            waiting.setdefault(key, []).append(point)
            if key in seen:
                continue
            seen.add(key)
            if key in finished:
                # Checkpointed by an interrupted run: reuse, and publish
                # to the store so the result outlives the checkpoint.
                resumed += 1
                self._remember(point, finished[key])
                self._publish(point, finished[key], overwrite=False)
                continue
            stats = self._cached_in_memory(point)
            if stats is not None:
                cached += 1
                continue
            stats = self._store_lookup(point)
            if stats is not None:
                # Published by an earlier run, another worker, a daemon
                # sharing the store, or a merged shard from another host.
                store_hits += 1
                self._remember(point, stats)
                finished[key] = stats
                continue
            pending[key] = point

        def record(point: SweepPoint, stats: SimStats) -> None:
            self._remember(point, stats)
            self._publish(point, stats)
            self._append_checkpoint(point, stats)
            finished[point.key()] = stats

        todo = list(pending.values())
        # PFM/oracle runs cost more than plain baselines; dispatching them
        # first tightens the makespan (results are order-independent).
        todo.sort(key=lambda point: point.is_baseline)
        failures = self._execute(todo, record)

        self.last_run_info = {
            "computed": len(todo), "resumed": resumed, "cached": cached,
            "store_hits": store_hits, "failed": len(failures),
        }
        if failures:
            # Successful points are already checkpointed; keep the file so
            # a re-invocation resumes from them and retries the failures.
            raise SweepFailure(failures)

        for key, siblings in waiting.items():
            stats = finished.get(key)
            if stats is None:
                stats = self._memory_cache[key]
            for point in siblings:
                results[point.label] = stats

        self._clear_checkpoint()
        return results

    def _execute(self, todo: list[SweepPoint], record) -> dict[str, str]:
        """Run every point in *todo*, retrying crashes; map label->error.

        Each round runs all still-pending points; a point that raises —
        including :class:`BrokenProcessPool` when a worker process died
        under it — is retried in the next round (under a fresh executor)
        until it exhausts ``self.retries``, with exponential backoff
        between rounds.  ``fail_fast`` re-raises the first error
        unretried; ``KeyboardInterrupt`` always propagates.
        """
        remaining = list(todo)
        attempts: dict[str, int] = {}
        failures: dict[str, str] = {}
        round_index = 0
        while remaining:
            if round_index:
                time.sleep(self.retry_backoff * (2 ** (round_index - 1)))
            retry: list[SweepPoint] = []

            def on_error(point: SweepPoint, exc: Exception) -> None:
                if self.fail_fast:
                    raise exc
                count = attempts.get(point.key(), 0) + 1
                attempts[point.key()] = count
                if count > self.retries:
                    message = f"{type(exc).__name__}: {exc}"
                    failures[point.label] = message
                    self._append_failure(point, message)
                else:
                    retry.append(point)

            # Retry rounds with jobs>1 stay in a (fresh) executor even for
            # a single point: if its worker segfaulted, re-running it
            # in-process would take the whole sweep down with it.
            if self.jobs == 1 or (round_index == 0 and len(remaining) <= 1):
                for point in remaining:
                    try:
                        record(point, run_point(point))
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:
                        on_error(point, exc)
            else:
                workers = min(self.jobs, len(remaining))
                with ProcessPoolExecutor(max_workers=workers) as executor:
                    futures = {
                        executor.submit(run_point, point): point
                        for point in remaining
                    }
                    for future in as_completed(futures):
                        point = futures[future]
                        try:
                            record(point, future.result())
                        except KeyboardInterrupt:
                            raise
                        except Exception as exc:
                            # A BrokenProcessPool lands here for every
                            # in-flight future; each affected point gets
                            # its retry in the next round's new executor.
                            on_error(point, exc)
            remaining = retry
            round_index += 1
        return failures

    def speedup_pct(self, results: dict[str, SimStats], label: str,
                    baseline_label: str) -> float:
        """Convenience: % IPC improvement of one row over another."""
        return 100.0 * results[label].speedup_over(results[baseline_label])


def add_speedup_rows(result, pool: SweepPool, points: list[SweepPoint],
                     stats: dict[str, SimStats], baseline_label: str) -> None:
    """Append a speedup row per non-baseline point, in point order."""
    for point in points:
        if point.label == baseline_label:
            continue
        result.add(
            point.label, pool.speedup_pct(stats, point.label, baseline_label)
        )


def default_pool() -> SweepPool:
    """Serial in-memory pool, used when a sweep runs without the CLI."""
    cache_dir = os.environ.get(CACHE_DIR_ENV) or None
    return SweepPool(jobs=1, cache_dir=cache_dir)
