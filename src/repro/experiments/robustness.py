"""Input-robustness sweeps (extension; motivated by Section 5's footnote).

The paper prefers the load-based astar strategy over the table-mimicking
astar-alt because it is "more robust to different input dataset sizes".
These sweeps quantify that and the components' sensitivity to input
*structure*:

* :func:`astar_input_robustness` — main design vs astar-alt across grid
  sizes (astar-alt's fixed tables alias as the grid outgrows them).
* :func:`astar_pattern_robustness` — speckle vs maze obstacle maps.
* :func:`bfs_graph_robustness` — road-like vs power-law graphs.
"""

from __future__ import annotations

from repro.core import PFMParams, SimConfig, simulate
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW
from repro.workloads.astar import build_astar_alt_workload, build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import powerlaw_graph, road_graph


def _speedup(builder, window, pfm=PFMParams(delay=0), **kwargs) -> float:
    baseline = simulate(builder(**kwargs), SimConfig(max_instructions=window))
    treated = simulate(
        builder(**kwargs), SimConfig(max_instructions=window, pfm=pfm)
    )
    return 100.0 * treated.speedup_over(baseline)


def astar_input_robustness(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Main design vs astar-alt as the input outgrows astar-alt's tables.

    The dataset:table ratio is the operative quantity (the paper's
    robustness footnote); within short windows it is swept by shrinking
    the tables against a fixed 192x192 grid — the active wavefront set
    must overflow the direct-mapped tables for aliasing to bite.
    """
    result = ExperimentResult(
        experiment="Robustness A",
        title="astar: load-based vs table-mimicking vs table capacity",
        notes=(
            "the load-based main design reads the program's real arrays"
            " and is capacity-free; astar-alt degrades once its tables"
            " alias (the paper's reason for switching strategies)"
        ),
    )
    side = 192
    result.add(
        "main (no tables)",
        _speedup(build_astar_workload, window,
                 grid_width=side, grid_height=side),
    )
    for entries in (16 * 1024, 1024, 256, 64):
        result.add(
            f"alt {entries}-entry tables",
            _speedup(build_astar_alt_workload, window,
                     grid_width=side, grid_height=side,
                     table_entries=entries),
        )
    return result


def astar_pattern_robustness(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Obstacle structure: speckle maps vs corridor mazes."""
    result = ExperimentResult(
        experiment="Robustness B",
        title="astar custom predictor across obstacle patterns",
        notes=(
            "maze maps make the baseline predictor stronger (correlated"
            " outcomes), shrinking — but not erasing — the custom"
            " component's advantage"
        ),
    )
    for pattern in ("random", "maze"):
        baseline = simulate(
            build_astar_workload(pattern=pattern),
            SimConfig(max_instructions=window),
        )
        treated = simulate(
            build_astar_workload(pattern=pattern),
            SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
        )
        result.add(f"{pattern} speedup", 100 * treated.speedup_over(baseline))
        result.add(f"{pattern} baseline MPKI", baseline.mpki)
    return result


def bfs_graph_robustness(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Graph structure: road lattice vs heavy-tailed power law."""
    result = ExperimentResult(
        experiment="Robustness C",
        title="bfs custom component across graph families",
        notes=(
            "power-law graphs have small diameters and huge frontier"
            " reuse: the baseline suffers less, so the component's"
            " headroom shrinks (the paper's Youtube bars are likewise"
            " lower than its Roads bars)"
        ),
    )
    graphs = {
        "roads": road_graph(side=128),
        "youtube": powerlaw_graph(num_nodes=12_000),
    }
    for name, graph in graphs.items():
        baseline = simulate(
            build_bfs_workload(graph=graph, graph_name=name),
            SimConfig(max_instructions=window),
        )
        treated = simulate(
            build_bfs_workload(graph=graph, graph_name=name),
            SimConfig(max_instructions=window, pfm=PFMParams(delay=0)),
        )
        result.add(f"{name} speedup", 100 * treated.speedup_over(baseline))
        result.add(f"{name} baseline MPKI", baseline.mpki)
    # When the baseline barely mispredicts (hub-heavy graphs), the
    # stalling Fetch Agent can turn the component into a net loss; the
    # §2.4 non-stalling design recovers it — a case for that alternative.
    proceed = simulate(
        build_bfs_workload(graph=graphs["youtube"], graph_name="youtube"),
        SimConfig(
            max_instructions=window,
            pfm=PFMParams(delay=0, fetch_policy="proceed"),
        ),
    )
    youtube_baseline = simulate(
        build_bfs_workload(graph=graphs["youtube"], graph_name="youtube"),
        SimConfig(max_instructions=window),
    )
    result.add(
        "youtube speedup (non-stalling §2.4)",
        100 * proceed.speedup_over(youtube_baseline),
    )
    return result
