"""Input-robustness sweeps (extension; motivated by Section 5's footnote).

The paper prefers the load-based astar strategy over the table-mimicking
astar-alt because it is "more robust to different input dataset sizes".
These sweeps quantify that and the components' sensitivity to input
*structure*:

* :func:`astar_input_robustness` — main design vs astar-alt across grid
  sizes (astar-alt's fixed tables alias as the grid outgrows them).
* :func:`astar_pattern_robustness` — speckle vs maze obstacle maps.
* :func:`bfs_graph_robustness` — road-like vs power-law graphs.

Each variant is a (baseline, treated) pair of sweep points sharing the
same workload-builder overrides, so the sweeps parallelize like every
other grid.
"""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW
from repro.workloads.graphs import powerlaw_graph, road_graph

_PFM = PFMParams(delay=0)


def _pair(label: str, workload: str, window: int,
          pfm: PFMParams = _PFM, **overrides) -> list[SweepPoint]:
    """Baseline + treated points for one input variant."""
    return [
        baseline_point(workload, window, label=f"baseline:{label}", **overrides),
        pfm_point(label, workload, window, pfm, **overrides),
    ]


def _add_speedups(result: ExperimentResult, pool: SweepPool,
                  points: list[SweepPoint],
                  stats: dict) -> None:
    for point in points:
        if point.label.startswith("baseline:"):
            continue
        result.add(
            point.label,
            pool.speedup_pct(stats, point.label, f"baseline:{point.label}"),
        )


def astar_input_robustness_points(window: int) -> list[SweepPoint]:
    side = 192
    points = _pair(
        "main (no tables)", "astar", window,
        grid_width=side, grid_height=side,
    )
    for entries in (16 * 1024, 1024, 256, 64):
        points += _pair(
            f"alt {entries}-entry tables", "astar-alt", window,
            grid_width=side, grid_height=side, table_entries=entries,
        )
    return points


def astar_input_robustness(window: int = DEFAULT_WINDOW,
                           pool: SweepPool | None = None) -> ExperimentResult:
    """Main design vs astar-alt as the input outgrows astar-alt's tables.

    The dataset:table ratio is the operative quantity (the paper's
    robustness footnote); within short windows it is swept by shrinking
    the tables against a fixed 192x192 grid — the active wavefront set
    must overflow the direct-mapped tables for aliasing to bite.
    """
    result = ExperimentResult(
        experiment="Robustness A",
        title="astar: load-based vs table-mimicking vs table capacity",
        notes=(
            "the load-based main design reads the program's real arrays"
            " and is capacity-free; astar-alt degrades once its tables"
            " alias (the paper's reason for switching strategies)"
        ),
    )
    pool = pool or default_pool()
    points = astar_input_robustness_points(window)
    _add_speedups(result, pool, points, pool.run(points))
    return result


def astar_pattern_robustness_points(window: int) -> list[SweepPoint]:
    points = []
    for pattern in ("random", "maze"):
        points += _pair(f"{pattern} speedup", "astar", window, pattern=pattern)
    return points


def astar_pattern_robustness(window: int = DEFAULT_WINDOW,
                             pool: SweepPool | None = None) -> ExperimentResult:
    """Obstacle structure: speckle maps vs corridor mazes."""
    result = ExperimentResult(
        experiment="Robustness B",
        title="astar custom predictor across obstacle patterns",
        notes=(
            "maze maps make the baseline predictor stronger (correlated"
            " outcomes), shrinking — but not erasing — the custom"
            " component's advantage"
        ),
    )
    pool = pool or default_pool()
    points = astar_pattern_robustness_points(window)
    stats = pool.run(points)
    for pattern in ("random", "maze"):
        label = f"{pattern} speedup"
        result.add(label, pool.speedup_pct(stats, label, f"baseline:{label}"))
        result.add(f"{pattern} baseline MPKI", stats[f"baseline:{label}"].mpki)
    return result


def bfs_graph_robustness_points(window: int) -> list[SweepPoint]:
    graphs = {
        "roads": ("bfs-roads", road_graph(side=128)),
        "youtube": ("bfs-youtube", powerlaw_graph(num_nodes=12_000)),
    }
    points = []
    for name, (workload, graph) in graphs.items():
        points += _pair(
            f"{name} speedup", workload, window, graph=graph, graph_name=name
        )
    workload, graph = graphs["youtube"]
    points.append(
        pfm_point(
            "youtube speedup (non-stalling §2.4)", workload, window,
            PFMParams(delay=0, fetch_policy="proceed"),
            graph=graph, graph_name="youtube",
        )
    )
    return points


def bfs_graph_robustness(window: int = DEFAULT_WINDOW,
                         pool: SweepPool | None = None) -> ExperimentResult:
    """Graph structure: road lattice vs heavy-tailed power law."""
    result = ExperimentResult(
        experiment="Robustness C",
        title="bfs custom component across graph families",
        notes=(
            "power-law graphs have small diameters and huge frontier"
            " reuse: the baseline suffers less, so the component's"
            " headroom shrinks (the paper's Youtube bars are likewise"
            " lower than its Roads bars)"
        ),
    )
    pool = pool or default_pool()
    points = bfs_graph_robustness_points(window)
    stats = pool.run(points)
    for name in ("roads", "youtube"):
        label = f"{name} speedup"
        result.add(label, pool.speedup_pct(stats, label, f"baseline:{label}"))
        result.add(f"{name} baseline MPKI", stats[f"baseline:{label}"].mpki)
    # When the baseline barely mispredicts (hub-heavy graphs), the
    # stalling Fetch Agent can turn the component into a net loss; the
    # §2.4 non-stalling design recovers it — a case for that alternative.
    result.add(
        "youtube speedup (non-stalling §2.4)",
        pool.speedup_pct(
            stats, "youtube speedup (non-stalling §2.4)",
            "baseline:youtube speedup",
        ),
    )
    return result
