"""Figure 17: the five custom prefetchers vs C and W (Section 4.3).

Grids are declared as :class:`~repro.experiments.pool.SweepPoint` lists
(``*_points``) and evaluated by a :class:`~repro.experiments.pool.SweepPool`.
"""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW, PREFETCH_WORKLOADS


def _speedup_rows(result: ExperimentResult, pool: SweepPool,
                  points: list[SweepPoint]) -> None:
    stats = pool.run(points)
    for point in points:
        if point.label.startswith("baseline:"):
            continue
        result.add(
            point.label,
            pool.speedup_pct(stats, point.label, f"baseline:{point.workload}"),
        )


def fig17_points(window: int) -> list[SweepPoint]:
    points = []
    for name in PREFETCH_WORKLOADS:
        points.append(baseline_point(name, window))
        for clk, width in [(1, 1), (4, 1), (4, 4)]:
            pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
            points.append(pfm_point(f"{name} clk{clk}_w{width}", name, window, pfm))
    return points


def fig17(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Speedups for different C and W (delay0, queue32, portALL)."""
    result = ExperimentResult(
        experiment="Figure 17",
        title="Custom prefetchers vs clkC_wW",
        notes=(
            "paper: performance is very resistant to C, W, and D — partly"
            " the adaptive prefetch distance, partly that the core never"
            " stalls waiting for RF packets in prefetch-only use-cases"
        ),
    )
    _speedup_rows(result, pool or default_pool(), fig17_points(window))
    return result


def fig17_delay_points(window: int) -> list[SweepPoint]:
    points = []
    for name in PREFETCH_WORKLOADS:
        points.append(baseline_point(name, window))
        for delay in (0, 8):
            pfm = PFMParams(clk_ratio=4, width=1, delay=delay)
            points.append(pfm_point(f"{name} delay{delay}", name, window, pfm))
    return points


def fig17_delay(window: int = DEFAULT_WINDOW,
                pool: SweepPool | None = None) -> ExperimentResult:
    """Delay sensitivity for prefetchers (text: resistant, not shown)."""
    result = ExperimentResult(
        experiment="Figure 17 (delay)",
        title="Custom prefetchers vs delayD (clk4_w1, queue32, portALL)",
        notes="paper text: performance is resistant to D (not shown)",
    )
    _speedup_rows(result, pool or default_pool(), fig17_delay_points(window))
    return result


def fig17_ports_points(window: int) -> list[SweepPoint]:
    points = []
    for name in PREFETCH_WORKLOADS:
        points.append(baseline_point(name, window))
        for port in ("ALL", "LS1"):
            pfm = PFMParams(clk_ratio=4, width=1, delay=0, port=port)
            points.append(pfm_point(f"{name} port{port}", name, window, pfm))
    return points


def fig17_ports(window: int = DEFAULT_WINDOW,
                pool: SweepPool | None = None) -> ExperimentResult:
    """Port sensitivity (text: portLS1 performs as well as portALL)."""
    result = ExperimentResult(
        experiment="Figure 17 (ports)",
        title="Custom prefetchers: portLS1 vs portALL (clk4_w1, delay0)",
        notes="paper text: PRF port availability is not an issue",
    )
    _speedup_rows(result, pool or default_pool(), fig17_ports_points(window))
    return result
