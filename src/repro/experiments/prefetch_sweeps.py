"""Figure 17: the five custom prefetchers vs C and W (Section 4.3)."""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    PREFETCH_WORKLOADS,
    pfm_speedup_pct,
)


def fig17(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Speedups for different C and W (delay0, queue32, portALL)."""
    result = ExperimentResult(
        experiment="Figure 17",
        title="Custom prefetchers vs clkC_wW",
        notes=(
            "paper: performance is very resistant to C, W, and D — partly"
            " the adaptive prefetch distance, partly that the core never"
            " stalls waiting for RF packets in prefetch-only use-cases"
        ),
    )
    for name in PREFETCH_WORKLOADS:
        for clk, width in [(1, 1), (4, 1), (4, 4)]:
            pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
            result.add(
                f"{name} clk{clk}_w{width}",
                pfm_speedup_pct(name, pfm, window),
            )
    return result


def fig17_delay(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Delay sensitivity for prefetchers (text: resistant, not shown)."""
    result = ExperimentResult(
        experiment="Figure 17 (delay)",
        title="Custom prefetchers vs delayD (clk4_w1, queue32, portALL)",
        notes="paper text: performance is resistant to D (not shown)",
    )
    for name in PREFETCH_WORKLOADS:
        for delay in (0, 8):
            pfm = PFMParams(clk_ratio=4, width=1, delay=delay)
            result.add(
                f"{name} delay{delay}", pfm_speedup_pct(name, pfm, window)
            )
    return result


def fig17_ports(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Port sensitivity (text: portLS1 performs as well as portALL)."""
    result = ExperimentResult(
        experiment="Figure 17 (ports)",
        title="Custom prefetchers: portLS1 vs portALL (clk4_w1, delay0)",
        notes="paper text: PRF port availability is not an issue",
    )
    for name in PREFETCH_WORKLOADS:
        for port in ("ALL", "LS1"):
            pfm = PFMParams(clk_ratio=4, width=1, delay=0, port=port)
            result.add(f"{name} port{port}", pfm_speedup_pct(name, pfm, window))
    return result
