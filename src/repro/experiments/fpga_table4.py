"""Table 4: FPGA hardware overhead estimates (Section 5)."""

from __future__ import annotations

from repro.experiments.report import ExperimentResult
from repro.registry import build_workload
from repro.pfm.component import RFTimings
from repro.power.fpga import FPGAEstimate, FPGAModel

#: Paper's Table 4 rows: (LUT, FF, BRAM, DSP, MHz, dyn-logic mW).
PAPER_TABLE4 = {
    "astar (4wide)": (6249, 3523, 0.0, 0, 500, 251),
    "astar-alt": (1064, 700, 17.5, 0, 498, 236),
    "libq": (282, 215, 0.0, 0, 690, 8),
    "lbm": (169, 204, 0.0, 0, 628, 6),
    "bwaves": (182, 363, 0.0, 0, 731, 10),
    "milc": (253, 667, 0.0, 4, 628, 38),
}


def component_structures() -> dict[str, dict]:
    """Structural inventories for the Table 4 designs.

    astar uses the width-4 configuration with the 8-entry index_queue;
    the prefetchers are the width-1 HLS designs.
    """
    structures: dict[str, dict] = {}
    wide = RFTimings(clk_ratio=4, width=4, delay=4)
    narrow = RFTimings(clk_ratio=4, width=1, delay=4)

    workload = build_workload("astar")
    component = workload.bitstream.component_factory(
        wide, workload.memory, workload.bitstream.metadata
    )
    structures["astar (4wide)"] = component.structure()

    alt = build_workload("astar-alt")
    alt_component = alt.bitstream.component_factory(
        narrow, alt.memory, alt.bitstream.metadata
    )
    structures["astar-alt"] = alt_component.structure()
    for name, label in (
        ("libquantum", "libq"),
        ("lbm", "lbm"),
        ("bwaves", "bwaves"),
        ("milc", "milc"),
    ):
        workload = build_workload(name)
        component = workload.bitstream.component_factory(
            narrow, workload.memory, workload.bitstream.metadata
        )
        structures[label] = component.structure()
    return structures


def estimates() -> list[FPGAEstimate]:
    return FPGAModel().table4(component_structures())


def table4(window: int = 0, pool=None) -> ExperimentResult:
    """LUT counts paper-vs-measured (full rows printed in the notes).

    Analytic (no simulation); *window* and *pool* exist for registry
    signature uniformity and are ignored.
    """
    result = ExperimentResult(
        experiment="Table 4",
        title="FPGA hardware overhead (xcvu3p estimates)",
        unit="LUTs (see notes for the full rows)",
        paper={name: row[0] for name, row in PAPER_TABLE4.items()},
    )
    lines = []
    for estimate in estimates():
        paper_row = PAPER_TABLE4[estimate.design]
        result.add(estimate.design, estimate.lut)
        lines.append(
            f"{estimate.design}: est LUT/FF/BRAM/DSP/MHz/dyn ="
            f" {estimate.lut}/{estimate.ff}/{estimate.bram:g}/{estimate.dsp}"
            f"/{estimate.freq_mhz}/{estimate.dyn_logic_mw:.0f}mW"
            f"  (paper {paper_row[0]}/{paper_row[1]}/{paper_row[2]:g}"
            f"/{paper_row[3]}/{paper_row[4]}/{paper_row[5]}mW)"
        )
    result.notes = "; ".join(lines)
    return result
