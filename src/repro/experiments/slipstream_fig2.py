"""Figure 2: PFM vs Slipstream 2.0 speedups (Section 1.1)."""

from __future__ import annotations

from repro.core import PFMParams, SimConfig, simulate
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    build_workload,
    pfm_speedup_pct,
    run_baseline,
    speedup_pct,
)
from repro.slipstream import make_astar_slipstream, make_bfs_slipstream


def fig2(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """PFM and Slipstream 2.0 speedups on astar and bfs."""
    result = ExperimentResult(
        experiment="Figure 2",
        title="Speedups of PFM and Slipstream 2.0",
        paper={"astar slipstream": 18.0, "astar PFM": 154.0, "bfs PFM": 125.0},
        notes=(
            "slipstream is modelled with the paper's two tailored"
            " optimizations (hardwired pruning, local-squash recovery);"
            " the restart-mode row shows the substantially lower speedup"
            " the paper notes for leading-thread restarts"
        ),
    )

    astar_base = run_baseline("astar", window)
    workload = build_workload("astar")
    slipstream = simulate(
        workload,
        SimConfig(max_instructions=window, oracle=make_astar_slipstream(workload)),
    )
    result.add("astar slipstream", speedup_pct(slipstream, astar_base))
    workload = build_workload("astar")
    restarts = simulate(
        workload,
        SimConfig(
            max_instructions=window,
            oracle=make_astar_slipstream(workload, restart_penalty=64),
        ),
    )
    result.add("astar slipstream (restarts)", speedup_pct(restarts, astar_base))
    result.add(
        "astar PFM",
        pfm_speedup_pct("astar", PFMParams(delay=4, port="LS1"), window),
    )

    bfs_base = run_baseline("bfs-roads", window)
    workload = build_workload("bfs-roads")
    slipstream = simulate(
        workload,
        SimConfig(max_instructions=window, oracle=make_bfs_slipstream(workload)),
    )
    result.add("bfs slipstream", speedup_pct(slipstream, bfs_base))
    result.add(
        "bfs PFM",
        pfm_speedup_pct("bfs-roads", PFMParams(delay=4, port="LS1"), window),
    )
    return result
