"""Figure 2: PFM vs Slipstream 2.0 speedups (Section 1.1).

Slipstream points name their oracle factory (see
:data:`repro.experiments.pool.ORACLES`) so the oracle is constructed in
the worker next to the workload it shadows.
"""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW


def fig2_points(window: int) -> list[SweepPoint]:
    return [
        baseline_point("astar", window),
        SweepPoint(
            label="astar slipstream",
            workload="astar",
            window=window,
            oracle="astar-slipstream",
        ),
        SweepPoint(
            label="astar slipstream (restarts)",
            workload="astar",
            window=window,
            oracle="astar-slipstream",
            oracle_kwargs={"restart_penalty": 64},
        ),
        pfm_point(
            "astar PFM", "astar", window, PFMParams(delay=4, port="LS1")
        ),
        baseline_point("bfs-roads", window),
        SweepPoint(
            label="bfs slipstream",
            workload="bfs-roads",
            window=window,
            oracle="bfs-slipstream",
        ),
        pfm_point(
            "bfs PFM", "bfs-roads", window, PFMParams(delay=4, port="LS1")
        ),
    ]


def fig2(window: int = DEFAULT_WINDOW,
         pool: SweepPool | None = None) -> ExperimentResult:
    """PFM and Slipstream 2.0 speedups on astar and bfs."""
    result = ExperimentResult(
        experiment="Figure 2",
        title="Speedups of PFM and Slipstream 2.0",
        paper={"astar slipstream": 18.0, "astar PFM": 154.0, "bfs PFM": 125.0},
        notes=(
            "slipstream is modelled with the paper's two tailored"
            " optimizations (hardwired pruning, local-squash recovery);"
            " the restart-mode row shows the substantially lower speedup"
            " the paper notes for leading-thread restarts"
        ),
    )
    pool = pool or default_pool()
    points = fig2_points(window)
    stats = pool.run(points)
    for point in points:
        if point.label.startswith("baseline:"):
            continue
        result.add(
            point.label,
            pool.speedup_pct(stats, point.label, f"baseline:{point.workload}"),
        )
    return result
