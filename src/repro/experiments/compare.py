"""Quantify reproduction quality: shape agreement with the paper.

The reproduction's claim is that *shapes* hold — who wins, orderings,
rough factors — even where absolute magnitudes differ (DESIGN.md §5).
This module turns that into numbers:

* :func:`rank_agreement` — Spearman rank correlation between the paper's
  reported series and the measured series (ordering preservation).
* :func:`log_ratio_spread` — dispersion of log(measured/paper) across a
  series (a constant factor gives zero spread: same shape, scaled).
* :func:`shape_report` — both metrics for every experiment that embeds
  paper values, rendered as a table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy import stats as scipy_stats

from repro.experiments.report import ExperimentResult


@dataclass(frozen=True)
class ShapeScore:
    experiment: str
    points: int
    spearman: float | None  # None when fewer than 3 comparable points
    log_ratio_spread: float | None

    def row(self) -> str:
        rho = f"{self.spearman:+.2f}" if self.spearman is not None else "  — "
        spread = (
            f"{self.log_ratio_spread:.2f}"
            if self.log_ratio_spread is not None
            else " — "
        )
        return f"{self.experiment:<12} {self.points:>6} {rho:>9} {spread:>12}"


def _paired(result: ExperimentResult) -> tuple[list[float], list[float]]:
    measured, paper = [], []
    for label, value in result.rows:
        if label in result.paper:
            measured.append(value)
            paper.append(result.paper[label])
    return measured, paper


def rank_agreement(result: ExperimentResult) -> float | None:
    """Spearman rank correlation of measured vs paper (None if < 3 points)."""
    measured, paper = _paired(result)
    if len(measured) < 3:
        return None
    rho, _ = scipy_stats.spearmanr(measured, paper)
    return float(rho)


def log_ratio_spread(result: ExperimentResult) -> float | None:
    """Std-dev of log(measured/paper) over strictly positive pairs.

    0 means the measured series is the paper's series times a constant
    (perfect shape); values around 0.5 mean point-to-point factors vary
    by ~1.6x around the central scaling.
    """
    measured, paper = _paired(result)
    ratios = [
        math.log(m / p)
        for m, p in zip(measured, paper)
        if m > 0 and p > 0
    ]
    if len(ratios) < 2:
        return None
    mean = sum(ratios) / len(ratios)
    variance = sum((r - mean) ** 2 for r in ratios) / len(ratios)
    return math.sqrt(variance)


def score(result: ExperimentResult) -> ShapeScore:
    measured, _ = _paired(result)
    return ShapeScore(
        experiment=result.experiment,
        points=len(measured),
        spearman=rank_agreement(result),
        log_ratio_spread=log_ratio_spread(result),
    )


def shape_report(results: list[ExperimentResult]) -> str:
    """Render shape scores for every experiment with embedded paper values."""
    lines = [
        f"{'experiment':<12} {'points':>6} {'spearman':>9} {'log-spread':>12}"
    ]
    for result in results:
        if result.paper:
            lines.append(score(result).row())
    return "\n".join(lines)
