"""Result containers and text rendering for the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field


def aligned_rows(
    rows: list[tuple[str, str]], *, indent: str = "   ", min_width: int = 12
) -> list[str]:
    """Render ``(label, cells)`` rows with one shared label column.

    The label column is as wide as the longest label (at least
    *min_width*); *cells* is the already-formatted remainder of the line.
    Both report renderers — :meth:`ExperimentResult.render` and the sim
    CLI's detailed breakdown — lay out their stat rows through here.
    """
    width = max([len(label) for label, _ in rows] + [min_width])
    return [f"{indent}{label:<{width}} {cells}" for label, cells in rows]


@dataclass
class ExperimentResult:
    """One regenerated table or figure.

    Rows are ``(label, measured_value)``; ``paper`` maps labels to the
    value the paper reports (where it states one), so reports show
    paper-vs-measured side by side.  Values are percentages for speedup
    figures and raw numbers elsewhere (``unit`` says which).
    """

    experiment: str  # "Figure 8", "Table 2", ...
    title: str
    rows: list[tuple[str, float]] = field(default_factory=list)
    paper: dict[str, float] = field(default_factory=dict)
    unit: str = "% IPC improvement"
    notes: str = ""

    def add(self, label: str, value: float) -> None:
        self.rows.append((label, value))

    def value(self, label: str) -> float:
        for row_label, value in self.rows:
            if row_label == label:
                return value
        raise KeyError(label)

    def render(self) -> str:
        rows = [("series", f"{'measured':>10} {'paper':>10}")]
        for label, value in self.rows:
            paper_value = self.paper.get(label)
            paper_text = f"{paper_value:>10.1f}" if paper_value is not None else f"{'—':>10}"
            rows.append((label, f"{value:>10.1f} {paper_text}"))
        lines = [
            f"== {self.experiment}: {self.title} ==",
            f"   unit: {self.unit}",
            *aligned_rows(rows),
        ]
        if self.notes:
            lines.append(f"   note: {self.notes}")
        return "\n".join(lines)


def render_all(results: list[ExperimentResult]) -> str:
    return "\n\n".join(r.render() for r in results)


def add_stat_rows(result: ExperimentResult, stats,
                  rows: list[tuple[str, str]]) -> None:
    """Append rows plucked from ``SimStats.to_dict()`` by flat key.

    ``rows`` is ``[(row_label, metric_key), ...]`` where *metric_key* is
    a key of the flat export (e.g. ``rst_hit_pct``, ``load_hits_l1``,
    ``queue_obsq_r_max_occupancy``).  A missing key raises ``KeyError``
    naming it — no silent zero rows.
    """
    metrics = stats.to_dict()
    for label, key in rows:
        if key not in metrics:
            raise KeyError(f"unknown SimStats metric {key!r} for row {label!r}")
        result.add(label, metrics[key])
