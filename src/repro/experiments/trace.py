"""The ``trace`` experiment: one workload, probes on, exported artifacts.

Runs a single workload twice through the :class:`SweepPool` — a plain
baseline (served from the shared cache when warm) and a PFM run with the
:mod:`repro.telemetry` ring sink attached — then renders a summary and
hands the traced stats back so the CLI can write the Perfetto JSON, the
event CSV, and the metrics manifest.

Determinism: the telemetry snapshot travels inside ``SimStats`` (plain
dicts, pickle-safe), and every exporter serializes with sorted keys, so
the written artifacts are byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

from repro.experiments.pool import SweepPoint, SweepPool, baseline_point, default_pool
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW, parse_config_label
from repro.telemetry import TelemetryParams

#: Window used by ``trace --smoke`` (the CI artifact job).
TRACE_SMOKE_WINDOW = 2_000

#: Default fabric configuration for traced runs (the Table 2 point).
DEFAULT_TRACE_CONFIG = "clk4_w4, delay4, queue32, portLS1"

DEFAULT_RING = 65_536
DEFAULT_SAMPLE_PERIOD = 64


def trace_points(
    target: str,
    window: int,
    config: str = DEFAULT_TRACE_CONFIG,
    ring: int = DEFAULT_RING,
    sample_period: int = DEFAULT_SAMPLE_PERIOD,
) -> list[SweepPoint]:
    """Baseline + traced-PFM points for one workload."""
    return [
        baseline_point(target, window),
        SweepPoint(
            label=f"trace:{target} [{config}]",
            workload=target,
            window=window,
            pfm=parse_config_label(config),
            telemetry=TelemetryParams(
                ring_capacity=ring, sample_period=sample_period
            ),
        ),
    ]


def run_trace(
    target: str,
    window: int = DEFAULT_WINDOW,
    pool: SweepPool | None = None,
    config: str = DEFAULT_TRACE_CONFIG,
    ring: int = DEFAULT_RING,
    sample_period: int = DEFAULT_SAMPLE_PERIOD,
):
    """Run the traced pair; return ``(result, traced_stats, baseline_stats)``."""
    pool = pool or default_pool()
    points = trace_points(target, window, config, ring, sample_period)
    stats = pool.run(points)
    base = stats[points[0].label]
    traced = stats[points[1].label]
    snapshot = traced.telemetry or {}

    result = ExperimentResult(
        experiment="Trace",
        title=f"{target} [{config}], window {window}",
        unit="value",
        notes=f"ring {ring} events, sampler period {sample_period} cycles",
    )
    result.add("speedup % over baseline", 100.0 * traced.speedup_over(base))
    result.add("IPC (traced)", traced.ipc)
    result.add("events captured", snapshot.get("captured", 0))
    result.add("events dropped (ring full)", snapshot.get("dropped", 0))
    for kind, count in sorted(snapshot.get("counts", {}).items()):
        result.add(f"emitted: {kind}", count)
    return result, traced, base
