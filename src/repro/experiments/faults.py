"""Fault-injection campaign: every built-in fault plan x a workload trio.

Per workload the grid holds one plain-core baseline, one clean
PFM-with-watchdog point, and one point per :data:`~repro.faults.plan.
BUILTIN_PLANS` entry — all with the graceful-degradation watchdog armed
at the campaign thresholds below.  After the sweep completes, every PFM
point is checked against the same-workload baseline with the
architectural-equivalence oracle: faults corrupt *timing-domain hints*
only, so the retired architectural state must be bit-identical no matter
what the fabric delivered.  A failing oracle is a safety bug, not a
degraded run, and aborts the campaign.

The rendered rows report each faulted run's IPC as a percentage of the
clean watchdog-enabled run on the same workload — the graceful part of
graceful degradation.  ``--json`` serializes the per-point stats plus
the digests and oracle verdicts deterministically (sorted keys, no
timestamps), byte-identical across ``--jobs`` values.
"""

from __future__ import annotations

import dataclasses

from repro.core.params import PFMParams
from repro.core.watchdog import WatchdogParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
    stats_to_dict,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW
from repro.faults import BUILTIN_PLANS, check_equivalence

#: Campaign workloads: astar and bfs-roads exercise the branch-prediction
#: component (squashes, FST overrides); libquantum exercises the
#: prefetch/load-injection path with no FST predictions at all.
FAULT_WORKLOADS = ("astar", "bfs-roads", "libquantum")

#: Window used by ``faults --smoke`` (CI exercises the oracle and the
#: watchdog plumbing, not the cycle model).
FAULT_SMOKE_WINDOW = 2_000


class OracleViolation(RuntimeError):
    """A faulted run retired different architectural state than baseline."""


def campaign_watchdog() -> WatchdogParams:
    """Watchdog thresholds the campaign arms on every PFM point.

    Calibrated so clean runs of every campaign workload trip nothing
    (tests/test_faults.py pins this): the fetch deadline sits well above
    healthy IntQ-F latency, the dead-declaration streak requires frozen
    progress tokens, accuracy 0.6 is far below the component's healthy
    windowed accuracy, and the MLB-full streak is 1.5x the buffer's
    64-entry capacity (healthy fill bursts saturate at about capacity).
    """
    return WatchdogParams(
        fetch_timeout_cycles=256,
        fetch_timeout_disable_after=8,
        squash_timeout_cycles=512,
        min_override_accuracy=0.6,
        accuracy_window=64,
        mlb_full_streak=96,
    )


def _campaign_pfm(fault_plan=None) -> PFMParams:
    return PFMParams(watchdog=campaign_watchdog(), fault_plan=fault_plan)


def fault_points(
    window: int, workloads: tuple[str, ...] = FAULT_WORKLOADS
) -> list[SweepPoint]:
    points = []
    for name in workloads:
        points.append(baseline_point(name, window))
        points.append(
            pfm_point(f"{name} [clean]", name, window, _campaign_pfm())
        )
        for plan_name, plan in BUILTIN_PLANS.items():
            points.append(
                pfm_point(
                    f"{name} [fault:{plan_name}]",
                    name,
                    window,
                    _campaign_pfm(plan),
                )
            )
    return points


def run_faults(
    window: int = DEFAULT_WINDOW,
    pool: SweepPool | None = None,
    workloads: tuple[str, ...] = FAULT_WORKLOADS,
) -> tuple[ExperimentResult, dict]:
    """Run the campaign; return the rendered result and a JSON payload."""
    pool = pool or default_pool()
    points = fault_points(window, workloads)
    stats = pool.run(points)

    result = ExperimentResult(
        experiment="Faults",
        title=f"{len(BUILTIN_PLANS)} fault plans x {len(workloads)} workloads",
        unit="% of clean watchdog-enabled IPC (clean rows: % of baseline)",
    )
    payload: dict = {
        "window": window,
        "workloads": list(workloads),
        "plans": sorted(BUILTIN_PLANS),
        "watchdog": dataclasses.asdict(campaign_watchdog()),
        "points": {},
    }
    failures = []
    for point in points:
        point_stats = stats[point.label]
        entry = {
            "workload": point.workload,
            "key": point.key(),
            "ipc": point_stats.ipc,
            "arch_digest": point_stats.arch_digest,
            "stats": stats_to_dict(point_stats),
        }
        if not point.label.startswith("baseline:"):
            baseline = stats[f"baseline:{point.workload}"]
            verdict = check_equivalence(baseline, point_stats)
            entry["oracle_ok"] = verdict.ok
            if not verdict.ok:
                failures.append(f"{point.label}: {verdict.reason}")
            clean = stats[f"{point.workload} [clean]"]
            if point.label.endswith("[clean]"):
                result.add(
                    point.label, 100.0 * point_stats.speedup_over(baseline)
                )
            else:
                retained = (
                    100.0 * point_stats.ipc / clean.ipc if clean.ipc else 0.0
                )
                entry["ipc_retained_pct"] = retained
                result.add(point.label, retained)
        payload["points"][point.label] = entry
    payload["oracle_failures"] = failures
    if failures:
        raise OracleViolation(
            "architectural-equivalence oracle failed for "
            + "; ".join(failures)
        )
    checked = sum(
        1 for p in points if not p.label.startswith("baseline:")
    )
    result.notes = (
        f"oracle: {checked}/{checked} faulted+clean points retired"
        " architectural state bit-identical to the plain baseline"
    )
    return result, payload


def faults(window: int = DEFAULT_WINDOW,
           pool: SweepPool | None = None) -> ExperimentResult:
    """Registry entry point (rendered result only)."""
    result, _ = run_faults(window, pool)
    return result
