"""Workload builders and simulation helpers shared by the experiments.

Graphs and grids are deterministic (seeded), so each builder returns a
fresh workload with identical initial state; baselines are cached per
(workload, window) to avoid rerunning them for every sweep point.
"""

from __future__ import annotations

import functools

from repro.core import PFMParams, SimConfig, SimStats, simulate
from repro.workloads.astar import build_astar_alt_workload, build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.bwaves import build_bwaves_workload
from repro.workloads.graphs import powerlaw_graph, road_graph
from repro.workloads.lbm import build_lbm_workload
from repro.workloads.leslie import build_leslie_workload
from repro.workloads.libquantum import build_libquantum_workload
from repro.workloads.milc import build_milc_workload

DEFAULT_WINDOW = 40_000


@functools.lru_cache(maxsize=2)
def _roads_graph():
    return road_graph()


@functools.lru_cache(maxsize=2)
def _youtube_graph():
    return powerlaw_graph()


def build_workload(name: str, **overrides):
    """Fresh workload by benchmark name."""
    if name == "astar":
        return build_astar_workload(**overrides)
    if name == "astar-alt":
        return build_astar_alt_workload(**overrides)
    if name in ("bfs-roads", "bfs-youtube"):
        kwargs = dict(overrides)
        kwargs.setdefault(
            "graph_name", "roads" if name == "bfs-roads" else "youtube"
        )
        if "graph" not in kwargs:
            kwargs["graph"] = (
                _roads_graph() if name == "bfs-roads" else _youtube_graph()
            )
        return build_bfs_workload(**kwargs)
    if name == "libquantum":
        return build_libquantum_workload(**overrides)
    if name == "bwaves":
        return build_bwaves_workload(**overrides)
    if name == "lbm":
        return build_lbm_workload(**overrides)
    if name == "milc":
        return build_milc_workload(**overrides)
    if name == "leslie":
        return build_leslie_workload(**overrides)
    raise ValueError(f"unknown workload {name!r}")


PREFETCH_WORKLOADS = ("libquantum", "bwaves", "lbm", "milc", "leslie")


def run_config(name: str, config: SimConfig, **overrides) -> SimStats:
    """Simulate workload *name* under *config* (fresh state each call)."""
    return simulate(build_workload(name, **overrides), config)


_baseline_cache: dict[tuple, SimStats] = {}


def run_baseline(name: str, window: int = DEFAULT_WINDOW) -> SimStats:
    """Baseline (plain core) run, cached per (workload, window)."""
    key = (name, window)
    if key not in _baseline_cache:
        _baseline_cache[key] = run_config(name, SimConfig(max_instructions=window))
    return _baseline_cache[key]


def run_pfm(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    **overrides,
) -> SimStats:
    """PFM-enabled run."""
    return run_config(
        name, SimConfig(max_instructions=window, pfm=pfm), **overrides
    )


def speedup_pct(stats: SimStats, baseline: SimStats) -> float:
    return 100.0 * stats.speedup_over(baseline)


def pfm_speedup_pct(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    **overrides,
) -> float:
    """Speedup of a PFM configuration over the cached baseline, in %."""
    base = run_baseline(name, window)
    return speedup_pct(run_pfm(name, pfm, window, **overrides), base)


def _parse_int(text: str, token: str, what: str) -> int:
    """Parse one integer field of a config token, with a clear error.

    Stricter than int(): plain decimal digits only (no "1_0", no
    whitespace), so near-miss labels fail instead of half-parsing.
    """
    if not text.removeprefix("-").isdigit():
        raise ValueError(
            f"malformed token {token!r} in config label: "
            f"expected an integer {what}, got {text!r}"
        )
    return int(text)


def parse_config_label(label: str) -> PFMParams:
    """Parse the paper's notation: "clk4_w4, delay4, queue32, portLS1".

    Every malformed token raises :class:`ValueError` naming the token —
    never a silent fall-through to the PFMParams defaults.
    """
    params = PFMParams()
    for token in label.replace(",", " ").split():
        if token.startswith("clk"):
            clk, sep, width = token.partition("_w")
            if not sep:
                raise ValueError(
                    f"malformed token {token!r} in config label: "
                    "expected the form clkC_wW (e.g. clk4_w4)"
                )
            params.clk_ratio = _parse_int(
                clk.removeprefix("clk"), token, "clock ratio C"
            )
            params.width = _parse_int(width, token, "width W")
        elif token.startswith("delay"):
            params.delay = _parse_int(
                token.removeprefix("delay"), token, "delay D"
            )
        elif token.startswith("queue"):
            params.queue_size = _parse_int(
                token.removeprefix("queue"), token, "queue size Q"
            )
        elif token.startswith("port"):
            params.port = token.removeprefix("port")
        else:
            raise ValueError(f"unknown token {token!r} in config label")
    params.__post_init__()
    return params
