"""Simulation helpers shared by the experiments.

Workloads are resolved by name through the registry layer
(:mod:`repro.registry`); graphs and grids are deterministic (seeded), so
each build returns a fresh workload with identical initial state.
Baselines are cached per (workload, window, overrides-digest) to avoid
rerunning them for every sweep point.
"""

from __future__ import annotations

import hashlib

from repro.core import CoreParams, PFMParams, SimConfig, SimStats, simulate
from repro.registry import build_workload

__all__ = [
    "DEFAULT_WINDOW",
    "PREFETCH_WORKLOADS",
    "build_workload",
    "run_config",
    "run_baseline",
    "run_pfm",
    "speedup_pct",
    "pfm_speedup_pct",
    "parse_config_label",
]

DEFAULT_WINDOW = 40_000

PREFETCH_WORKLOADS = ("libquantum", "bwaves", "lbm", "milc", "leslie")


def run_config(name: str, config: SimConfig, **overrides) -> SimStats:
    """Simulate workload *name* under *config* (fresh state each call)."""
    return simulate(build_workload(name, **overrides), config)


def _core_params(backend: str) -> CoreParams:
    """CoreParams pinned to *backend* ("auto" keeps the defaults)."""
    return CoreParams() if backend == "auto" else CoreParams(backend=backend)


_baseline_cache: dict[tuple[str, int, str], SimStats] = {}


def _overrides_digest(overrides: dict) -> str:
    """Canonical digest of builder overrides for the baseline-cache key.

    Two calls with the same overrides under different spellings (keyword
    order) collapse to one entry; calls with *different* overrides no
    longer collide on the bare (name, window) pair.
    """
    if not overrides:
        return ""
    from repro.experiments.pool import _canonical_bytes

    return hashlib.sha256(_canonical_bytes(overrides)).hexdigest()[:16]


def run_baseline(
    name: str,
    window: int = DEFAULT_WINDOW,
    backend: str = "auto",
    **overrides,
) -> SimStats:
    """Baseline (plain core) run, cached per (workload, window, overrides).

    Because every backend is bit-identical, the cache deliberately does
    NOT key on *backend*: a hit may carry stats computed by a different
    engine (only the non-field provenance attrs differ).
    """
    key = (name, window, _overrides_digest(overrides))
    if key not in _baseline_cache:
        _baseline_cache[key] = run_config(
            name,
            SimConfig(core=_core_params(backend), max_instructions=window),
            **overrides,
        )
    return _baseline_cache[key]


def run_pfm(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    backend: str = "auto",
    **overrides,
) -> SimStats:
    """PFM-enabled run (non-python backends fall back to the reference)."""
    return run_config(
        name,
        SimConfig(
            core=_core_params(backend), max_instructions=window, pfm=pfm
        ),
        **overrides,
    )


def speedup_pct(stats: SimStats, baseline: SimStats) -> float:
    return 100.0 * stats.speedup_over(baseline)


def pfm_speedup_pct(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    **overrides,
) -> float:
    """Speedup of a PFM configuration over the cached baseline, in %.

    Builder overrides apply to *both* runs — the baseline must simulate
    the same workload instance the PFM run does.
    """
    base = run_baseline(name, window, **overrides)
    return speedup_pct(run_pfm(name, pfm, window, **overrides), base)


def _parse_int(text: str, token: str, what: str) -> int:
    """Parse one integer field of a config token, with a clear error.

    Stricter than int(): plain decimal digits only (no "1_0", no
    whitespace), so near-miss labels fail instead of half-parsing.
    """
    if not text.removeprefix("-").isdigit():
        raise ValueError(
            f"malformed token {token!r} in config label: "
            f"expected an integer {what}, got {text!r}"
        )
    return int(text)


def parse_config_label(label: str) -> PFMParams:
    """Parse the paper's notation: "clk4_w4, delay4, queue32, portLS1".

    Every malformed token raises :class:`ValueError` naming the token —
    never a silent fall-through to the PFMParams defaults.
    """
    params = PFMParams()
    for token in label.replace(",", " ").split():
        if token.startswith("clk"):
            clk, sep, width = token.partition("_w")
            if not sep:
                raise ValueError(
                    f"malformed token {token!r} in config label: "
                    "expected the form clkC_wW (e.g. clk4_w4)"
                )
            params.clk_ratio = _parse_int(
                clk.removeprefix("clk"), token, "clock ratio C"
            )
            params.width = _parse_int(width, token, "width W")
        elif token.startswith("delay"):
            params.delay = _parse_int(
                token.removeprefix("delay"), token, "delay D"
            )
        elif token.startswith("queue"):
            params.queue_size = _parse_int(
                token.removeprefix("queue"), token, "queue size Q"
            )
        elif token.startswith("port"):
            params.port = token.removeprefix("port")
        else:
            raise ValueError(f"unknown token {token!r} in config label")
    params.__post_init__()
    return params
