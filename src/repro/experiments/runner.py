"""Workload builders and simulation helpers shared by the experiments.

Graphs and grids are deterministic (seeded), so each builder returns a
fresh workload with identical initial state; baselines are cached per
(workload, window) to avoid rerunning them for every sweep point.
"""

from __future__ import annotations

import functools

from repro.core import PFMParams, SimConfig, SimStats, simulate
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.bwaves import build_bwaves_workload
from repro.workloads.graphs import powerlaw_graph, road_graph
from repro.workloads.lbm import build_lbm_workload
from repro.workloads.leslie import build_leslie_workload
from repro.workloads.libquantum import build_libquantum_workload
from repro.workloads.milc import build_milc_workload

DEFAULT_WINDOW = 40_000


@functools.lru_cache(maxsize=2)
def _roads_graph():
    return road_graph()


@functools.lru_cache(maxsize=2)
def _youtube_graph():
    return powerlaw_graph()


def build_workload(name: str, **overrides):
    """Fresh workload by benchmark name."""
    if name == "astar":
        return build_astar_workload(**overrides)
    if name == "bfs-roads":
        return build_bfs_workload(graph=_roads_graph(), graph_name="roads", **overrides)
    if name == "bfs-youtube":
        return build_bfs_workload(
            graph=_youtube_graph(), graph_name="youtube", **overrides
        )
    if name == "libquantum":
        return build_libquantum_workload(**overrides)
    if name == "bwaves":
        return build_bwaves_workload(**overrides)
    if name == "lbm":
        return build_lbm_workload(**overrides)
    if name == "milc":
        return build_milc_workload(**overrides)
    if name == "leslie":
        return build_leslie_workload(**overrides)
    raise ValueError(f"unknown workload {name!r}")


PREFETCH_WORKLOADS = ("libquantum", "bwaves", "lbm", "milc", "leslie")


def run_config(name: str, config: SimConfig, **overrides) -> SimStats:
    """Simulate workload *name* under *config* (fresh state each call)."""
    return simulate(build_workload(name, **overrides), config)


_baseline_cache: dict[tuple, SimStats] = {}


def run_baseline(name: str, window: int = DEFAULT_WINDOW) -> SimStats:
    """Baseline (plain core) run, cached per (workload, window)."""
    key = (name, window)
    if key not in _baseline_cache:
        _baseline_cache[key] = run_config(name, SimConfig(max_instructions=window))
    return _baseline_cache[key]


def run_pfm(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    **overrides,
) -> SimStats:
    """PFM-enabled run."""
    return run_config(
        name, SimConfig(max_instructions=window, pfm=pfm), **overrides
    )


def speedup_pct(stats: SimStats, baseline: SimStats) -> float:
    return 100.0 * stats.speedup_over(baseline)


def pfm_speedup_pct(
    name: str,
    pfm: PFMParams,
    window: int = DEFAULT_WINDOW,
    **overrides,
) -> float:
    """Speedup of a PFM configuration over the cached baseline, in %."""
    base = run_baseline(name, window)
    return speedup_pct(run_pfm(name, pfm, window, **overrides), base)


def parse_config_label(label: str) -> PFMParams:
    """Parse the paper's notation: "clk4_w4, delay4, queue32, portLS1"."""
    params = PFMParams()
    for token in label.replace(",", " ").split():
        if token.startswith("clk"):
            clk, _, width = token.partition("_w")
            params.clk_ratio = int(clk.removeprefix("clk"))
            params.width = int(width)
        elif token.startswith("delay"):
            params.delay = int(token.removeprefix("delay"))
        elif token.startswith("queue"):
            params.queue_size = int(token.removeprefix("queue"))
        elif token.startswith("port"):
            params.port = token.removeprefix("port")
        else:
            raise ValueError(f"unknown token {token!r} in config label")
    params.__post_init__()
    return params
