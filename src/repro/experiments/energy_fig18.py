"""Figure 18: core+RF energy of PFM designs normalized to baseline."""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW, PREFETCH_WORKLOADS
from repro.experiments.fpga_table4 import estimates
from repro.power.core_energy import CoreEnergyModel

#: Which Table 4 design's RF power applies to each use-case.
_DESIGN_FOR_WORKLOAD = {
    "astar": "astar (4wide)",
    "bfs-roads": "astar (4wide)",  # comparable width-4 engine complexity
    "libquantum": "libq",
    "bwaves": "bwaves",
    "lbm": "lbm",
    "milc": "milc",
    "leslie": "bwaves",  # leslie was not synthesized; bwaves is its analogue
}

WORKLOADS = ("astar", "bfs-roads", *PREFETCH_WORKLOADS)


def fig18_points(window: int) -> list[SweepPoint]:
    points = []
    for name in WORKLOADS:
        points.append(baseline_point(name, window))
        points.append(
            pfm_point(f"pfm:{name}", name, window, PFMParams(delay=4, port="LS1"))
        )
    return points


def fig18(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Energy (core + RF) normalized to baseline (core alone) = 1.0.

    The reduction comes from (1) less misspeculation activity and
    (2) less static energy from shorter runtime (Section 5), partially
    offset by the FPGA's own dynamic + static power.
    """
    result = ExperimentResult(
        experiment="Figure 18",
        title="Energy of PFM designs (core+RF) normalized to baseline",
        unit="normalized energy (baseline = 1.0)",
        notes=(
            "paper: all use-cases reduce energy, attributed to reduced"
            " misspeculation and reduced static energy from shorter runtime"
        ),
    )
    model = CoreEnergyModel()
    fpga = {estimate.design: estimate for estimate in estimates()}

    pool = pool or default_pool()
    stats = pool.run(fig18_points(window))
    for name in WORKLOADS:
        design = fpga[_DESIGN_FOR_WORKLOAD[name]]
        baseline_energy = model.energy(stats[f"baseline:{name}"])
        pfm_energy = model.energy(
            stats[f"pfm:{name}"],
            rf_dynamic_w=(design.dyn_logic_mw) / 1000.0,
            rf_static_w=design.static_mw / 1000.0,
        )
        result.add(name, pfm_energy.normalized_to(baseline_energy))
    return result
