"""Experiment harness: regenerate every table and figure of the paper.

Each experiment module exposes a ``run(window=...)`` function returning an
:class:`~repro.experiments.report.ExperimentResult` whose rows mirror the
paper's series, alongside the paper's reported values for comparison.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments fig8 --window 40000
    python -m repro.experiments all

Windows default to 40k dynamic instructions (the paper uses 100M SimPoint
windows; the pure-Python cycle model trades window length for tractability
— all quantities are ratios against a same-window baseline, see
DESIGN.md §5).
"""

from repro.experiments.report import ExperimentResult
from repro.experiments.pool import SweepPoint, SweepPool
from repro.experiments.runner import run_baseline, run_pfm, run_config

__all__ = [
    "ExperimentResult",
    "SweepPoint",
    "SweepPool",
    "run_baseline",
    "run_pfm",
    "run_config",
]
