"""astar experiments: Figure 8, Table 2, Figure 9, Figure 10 (Section 4.1.3)."""

from __future__ import annotations

from repro.core import PFMParams, SimConfig
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import (
    DEFAULT_WINDOW,
    pfm_speedup_pct,
    run_baseline,
    run_config,
    run_pfm,
    speedup_pct,
)

WORKLOAD = "astar"


def fig8(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Speedup vs C and W (delay0, queue32, portALL; 8-entry index_queue)."""
    result = ExperimentResult(
        experiment="Figure 8",
        title="astar custom branch predictor vs clkC_wW",
        paper={
            "clk4_w2": 99.0,
            "clk4_w3": 155.0,
            "clk4_w4": 163.0,
            "perfBP": 162.0,
        },
        notes=(
            "paper: low-bandwidth configs (clk4_w1, clk8_w1) reduce the"
            " speedup or cause slowdowns; clk4_w4 slightly exceeds perfect"
            " BP via the prefetching effect of the predictor's loads"
        ),
    )
    base = run_baseline(WORKLOAD, window)
    for clk, width in [(1, 1), (2, 1), (4, 1), (8, 1), (4, 2), (4, 3), (4, 4)]:
        pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
        result.add(f"clk{clk}_w{width}", pfm_speedup_pct(WORKLOAD, pfm, window))
    perf = run_config(
        WORKLOAD,
        SimConfig(max_instructions=window, perfect_branch_prediction=True),
    )
    result.add("perfBP", speedup_pct(perf, base))
    return result


def table2(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """FST and RST snoop percentages inside the ROI."""
    result = ExperimentResult(
        experiment="Table 2",
        title="astar: FST and RST snoop percentages",
        unit="% of instructions in ROI",
        paper={"retired hit RST": 20.3, "fetched hit FST": 15.5},
    )
    stats = run_pfm(WORKLOAD, PFMParams(), window)
    result.add("retired hit RST", stats.rst_hit_pct)
    result.add("fetched hit FST", stats.fst_hit_pct)
    return result


def fig9(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Sensitivity to delayD (a), queueQ (b), and portP (c)."""
    result = ExperimentResult(
        experiment="Figure 9",
        title="astar sensitivity to D, Q, P",
        paper={"delay8": 138.0, "delay4, queue32, portLS1": 154.0},
        notes=(
            "paper: speedup decreases slowly with delay; resistant to"
            " queue size; PRF ports not an issue"
        ),
    )
    # (a) delay sweep at clk4_w4, queue32, portALL
    for delay in (0, 2, 4, 8):
        pfm = PFMParams(delay=delay)
        result.add(f"delay{delay}", pfm_speedup_pct(WORKLOAD, pfm, window))
    # (b) queue sweep at clk4_w4, delay4, portALL
    for queue in (8, 16, 32, 64):
        pfm = PFMParams(delay=4, queue_size=queue)
        result.add(f"queue{queue}", pfm_speedup_pct(WORKLOAD, pfm, window))
    # (c) port sweep at clk4_w4, delay4, queue32
    for port in ("ALL", "LS", "LS1"):
        pfm = PFMParams(delay=4, port=port)
        label = f"delay4, queue32, port{port}" if port == "LS1" else f"port{port}"
        result.add(label, pfm_speedup_pct(WORKLOAD, pfm, window))
    return result


def fig10(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Sensitivity to the index_queue size (speculative scope)."""
    result = ExperimentResult(
        experiment="Figure 10",
        title="astar speedup vs index_queue entries",
        notes=(
            "paper: an 8-entry index_queue achieves most of the speedup"
            " potential (all configs clk4_w4, delay4, queue32, portLS1)"
        ),
    )
    for entries in (1, 2, 4, 8, 16):
        pfm = PFMParams(
            delay=4,
            port="LS1",
            component_overrides={"index_queue_entries": entries},
        )
        result.add(f"{entries} entries", pfm_speedup_pct(WORKLOAD, pfm, window))
    return result


def astar_mpki(window: int = DEFAULT_WINDOW) -> ExperimentResult:
    """Headline MPKI collapse (Section 4.1.3 text: 31.9 -> 1.04)."""
    result = ExperimentResult(
        experiment="Section 4.1.3",
        title="astar branch MPKI, baseline vs custom predictor",
        unit="mispredictions per kilo-instruction",
        paper={"baseline": 31.9, "custom": 1.04},
    )
    result.add("baseline", run_baseline(WORKLOAD, window).mpki)
    result.add("custom", run_pfm(WORKLOAD, PFMParams(delay=0), window).mpki)
    return result
