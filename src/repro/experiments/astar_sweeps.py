"""astar experiments: Figure 8, Table 2, Figure 9, Figure 10 (Section 4.1.3).

Each figure declares its grid as a :class:`~repro.experiments.pool.SweepPoint`
list (``*_points``) and assembles the rendered result from the stats the
pool returns, so the same sweep runs serially or across worker processes.
"""

from __future__ import annotations

from repro.core import PFMParams
from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    add_speedup_rows,
    baseline_point,
    default_pool,
    pfm_point,
)
from repro.experiments.report import ExperimentResult, add_stat_rows
from repro.experiments.runner import DEFAULT_WINDOW

WORKLOAD = "astar"
BASE = f"baseline:{WORKLOAD}"


def fig8_points(window: int) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    for clk, width in [(1, 1), (2, 1), (4, 1), (8, 1), (4, 2), (4, 3), (4, 4)]:
        pfm = PFMParams(clk_ratio=clk, width=width, delay=0)
        points.append(pfm_point(f"clk{clk}_w{width}", WORKLOAD, window, pfm))
    points.append(
        SweepPoint(
            label="perfBP",
            workload=WORKLOAD,
            window=window,
            perfect_branch_prediction=True,
        )
    )
    return points


def fig8(window: int = DEFAULT_WINDOW,
         pool: SweepPool | None = None) -> ExperimentResult:
    """Speedup vs C and W (delay0, queue32, portALL; 8-entry index_queue)."""
    result = ExperimentResult(
        experiment="Figure 8",
        title="astar custom branch predictor vs clkC_wW",
        paper={
            "clk4_w2": 99.0,
            "clk4_w3": 155.0,
            "clk4_w4": 163.0,
            "perfBP": 162.0,
        },
        notes=(
            "paper: low-bandwidth configs (clk4_w1, clk8_w1) reduce the"
            " speedup or cause slowdowns; clk4_w4 slightly exceeds perfect"
            " BP via the prefetching effect of the predictor's loads"
        ),
    )
    pool = pool or default_pool()
    points = fig8_points(window)
    stats = pool.run(points)
    add_speedup_rows(result, pool, points, stats, BASE)
    return result


def table2_points(window: int) -> list[SweepPoint]:
    return [pfm_point("default", WORKLOAD, window, PFMParams())]


def table2(window: int = DEFAULT_WINDOW,
           pool: SweepPool | None = None) -> ExperimentResult:
    """FST and RST snoop percentages inside the ROI."""
    result = ExperimentResult(
        experiment="Table 2",
        title="astar: FST and RST snoop percentages",
        unit="% of instructions in ROI",
        paper={"retired hit RST": 20.3, "fetched hit FST": 15.5},
    )
    pool = pool or default_pool()
    stats = pool.run(table2_points(window))["default"]
    add_stat_rows(result, stats, [
        ("retired hit RST", "rst_hit_pct"),
        ("fetched hit FST", "fst_hit_pct"),
    ])
    return result


def fig9_points(window: int) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    # (a) delay sweep at clk4_w4, queue32, portALL
    for delay in (0, 2, 4, 8):
        points.append(
            pfm_point(f"delay{delay}", WORKLOAD, window, PFMParams(delay=delay))
        )
    # (b) queue sweep at clk4_w4, delay4, portALL
    for queue in (8, 16, 32, 64):
        points.append(
            pfm_point(
                f"queue{queue}", WORKLOAD, window,
                PFMParams(delay=4, queue_size=queue),
            )
        )
    # (c) port sweep at clk4_w4, delay4, queue32
    for port in ("ALL", "LS", "LS1"):
        label = f"delay4, queue32, port{port}" if port == "LS1" else f"port{port}"
        points.append(
            pfm_point(label, WORKLOAD, window, PFMParams(delay=4, port=port))
        )
    return points


def fig9(window: int = DEFAULT_WINDOW,
         pool: SweepPool | None = None) -> ExperimentResult:
    """Sensitivity to delayD (a), queueQ (b), and portP (c)."""
    result = ExperimentResult(
        experiment="Figure 9",
        title="astar sensitivity to D, Q, P",
        paper={"delay8": 138.0, "delay4, queue32, portLS1": 154.0},
        notes=(
            "paper: speedup decreases slowly with delay; resistant to"
            " queue size; PRF ports not an issue"
        ),
    )
    pool = pool or default_pool()
    points = fig9_points(window)
    stats = pool.run(points)
    add_speedup_rows(result, pool, points, stats, BASE)
    return result


def fig10_points(window: int) -> list[SweepPoint]:
    points = [baseline_point(WORKLOAD, window)]
    for entries in (1, 2, 4, 8, 16):
        pfm = PFMParams(
            delay=4,
            port="LS1",
            component_overrides={"index_queue_entries": entries},
        )
        points.append(pfm_point(f"{entries} entries", WORKLOAD, window, pfm))
    return points


def fig10(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Sensitivity to the index_queue size (speculative scope)."""
    result = ExperimentResult(
        experiment="Figure 10",
        title="astar speedup vs index_queue entries",
        notes=(
            "paper: an 8-entry index_queue achieves most of the speedup"
            " potential (all configs clk4_w4, delay4, queue32, portLS1)"
        ),
    )
    pool = pool or default_pool()
    points = fig10_points(window)
    stats = pool.run(points)
    add_speedup_rows(result, pool, points, stats, BASE)
    return result


def astar_mpki_points(window: int) -> list[SweepPoint]:
    return [
        baseline_point(WORKLOAD, window),
        pfm_point("custom", WORKLOAD, window, PFMParams(delay=0)),
    ]


def astar_mpki(window: int = DEFAULT_WINDOW,
               pool: SweepPool | None = None) -> ExperimentResult:
    """Headline MPKI collapse (Section 4.1.3 text: 31.9 -> 1.04)."""
    result = ExperimentResult(
        experiment="Section 4.1.3",
        title="astar branch MPKI, baseline vs custom predictor",
        unit="mispredictions per kilo-instruction",
        paper={"baseline": 31.9, "custom": 1.04},
    )
    pool = pool or default_pool()
    stats = pool.run(astar_mpki_points(window))
    result.add("baseline", stats[BASE].mpki)
    result.add("custom", stats["custom"].mpki)
    return result
