"""Full-matrix workload sweep: every workload x a set of PFM configs.

This is the generic fan-out the CLI exposes as the ``sweep`` experiment
(and, at a reduced window, as ``--smoke``): per workload one plain-core
baseline plus one point per configuration label, all evaluated through a
:class:`~repro.experiments.pool.SweepPool`.  ``--json`` serializes the
raw per-point stats deterministically (sorted keys, no timestamps), so
two sweeps of the same grid produce byte-identical files regardless of
``--jobs`` or scheduling order.
"""

from __future__ import annotations

import json

from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
    stats_to_dict,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW, parse_config_label
from repro.registry import workload_names

#: All workloads the reproduction can build, in registration order
#: (the registry's autoload order keeps this stable across runs).
SWEEP_WORKLOADS = workload_names()

#: Default configuration grid (paper §3 notation).
SWEEP_CONFIGS = (
    "clk4_w4, delay4, queue32, portLS1",
    "clk4_w1, delay0",
)

#: Window used by ``--smoke`` (kept tiny so CI exercises the parallel
#: machinery, not the cycle model).
SMOKE_WINDOW = 2_000


def sweep_points(
    window: int,
    workloads: tuple[str, ...] = SWEEP_WORKLOADS,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
) -> list[SweepPoint]:
    points = []
    for name in workloads:
        points.append(baseline_point(name, window))
        for config in configs:
            points.append(
                pfm_point(
                    f"{name} [{config}]", name, window,
                    parse_config_label(config),
                )
            )
    return points


def run_sweep(
    window: int = DEFAULT_WINDOW,
    pool: SweepPool | None = None,
    workloads: tuple[str, ...] = SWEEP_WORKLOADS,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
) -> tuple[ExperimentResult, dict]:
    """Run the sweep; return the rendered result and a JSON-ready payload."""
    pool = pool or default_pool()
    points = sweep_points(window, workloads, configs)
    stats = pool.run(points)

    result = ExperimentResult(
        experiment="Sweep",
        title=f"{len(workloads)}-workload sweep, {len(points)} points",
        notes="speedup of each config over the same-workload baseline",
    )
    payload: dict = {
        "window": window,
        "workloads": list(workloads),
        "configs": list(configs),
        "points": {},
    }
    for point in points:
        entry = {
            "workload": point.workload,
            "key": point.key(),
            "ipc": stats[point.label].ipc,
            "stats": stats_to_dict(stats[point.label]),
        }
        if not point.label.startswith("baseline:"):
            speedup = pool.speedup_pct(
                stats, point.label, f"baseline:{point.workload}"
            )
            entry["speedup_pct"] = speedup
            result.add(point.label, speedup)
        payload["points"][point.label] = entry
    return result, payload


def payload_json(payload: dict) -> str:
    """Deterministic serialization (byte-identical across --jobs values)."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def sweep(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Registry entry point (rendered result only)."""
    result, _ = run_sweep(window, pool)
    return result
