"""Full-matrix workload sweep: every workload x a set of PFM configs.

This is the generic fan-out the CLI exposes as the ``sweep`` experiment
(and, at a reduced window, as ``--smoke``): per workload one plain-core
baseline plus one point per configuration label, all evaluated through a
:class:`~repro.experiments.pool.SweepPool`.  ``--json`` serializes the
raw per-point stats deterministically (sorted keys, no timestamps), so
two sweeps of the same grid produce byte-identical files regardless of
``--jobs`` or scheduling order.
"""

from __future__ import annotations

import dataclasses
import json
from typing import TYPE_CHECKING

from repro.experiments.pool import (
    SweepPoint,
    SweepPool,
    baseline_point,
    default_pool,
    pfm_point,
    stats_to_dict,
)
from repro.experiments.report import ExperimentResult
from repro.experiments.runner import DEFAULT_WINDOW, parse_config_label
from repro.registry import workload_names

if TYPE_CHECKING:
    from repro.pfm.tenancy import TenantSpec

#: All workloads the reproduction can build, in registration order
#: (the registry's autoload order keeps this stable across runs).
SWEEP_WORKLOADS = workload_names()

#: Default configuration grid (paper §3 notation).
SWEEP_CONFIGS = (
    "clk4_w4, delay4, queue32, portLS1",
    "clk4_w1, delay0",
)

#: Window used by ``--smoke`` (kept tiny so CI exercises the parallel
#: machinery, not the cycle model).
SMOKE_WINDOW = 2_000


def sweep_points(
    window: int,
    workloads: tuple[str, ...] = SWEEP_WORKLOADS,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
    tenants: tuple["TenantSpec", ...] = (),
) -> list[SweepPoint]:
    """Grid points; with *tenants* each PFM point also gets a tenant-free
    twin (``<label> [solo]``) so the equivalence oracle has its reference.
    """
    points = []
    for name in workloads:
        points.append(baseline_point(name, window))
        for config in configs:
            pfm = parse_config_label(config)
            label = f"{name} [{config}]"
            if tenants:
                points.append(pfm_point(f"{label} [solo]", name, window, pfm))
                pfm = dataclasses.replace(pfm, tenants=tenants)
            points.append(pfm_point(label, name, window, pfm))
    return points


def run_sweep(
    window: int = DEFAULT_WINDOW,
    pool: SweepPool | None = None,
    workloads: tuple[str, ...] = SWEEP_WORKLOADS,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
    tenants: tuple["TenantSpec", ...] = (),
) -> tuple[ExperimentResult, dict]:
    """Run the sweep; return the rendered result and a JSON-ready payload.

    With *tenants*, every PFM point runs twice — solo and with the
    co-tenants resident — and the equivalence oracle requires the two
    architectural digests to match (the registered tenant layouts are
    observe-only, so sharing the fabric must not perturb the primary).
    An :class:`~repro.experiments.faults.OracleViolation` aborts the
    sweep; ``oracle_ok`` is recorded per tenanted point in the payload.
    """
    pool = pool or default_pool()
    points = sweep_points(window, workloads, configs, tenants)
    stats = pool.run(points)

    result = ExperimentResult(
        experiment="Sweep",
        title=f"{len(workloads)}-workload sweep, {len(points)} points",
        notes="speedup of each config over the same-workload baseline",
    )
    payload: dict = {
        "window": window,
        "workloads": list(workloads),
        "configs": list(configs),
        "points": {},
    }
    if tenants:
        payload["tenants"] = [spec.label() for spec in tenants]
    for point in points:
        entry = {
            "workload": point.workload,
            "key": point.key(),
            "ipc": stats[point.label].ipc,
            "stats": stats_to_dict(stats[point.label]),
        }
        if not point.label.startswith("baseline:"):
            speedup = pool.speedup_pct(
                stats, point.label, f"baseline:{point.workload}"
            )
            entry["speedup_pct"] = speedup
            result.add(point.label, speedup)
        if (
            tenants
            and point.pfm is not None
            and point.pfm.tenants
        ):
            from repro.experiments.faults import OracleViolation
            from repro.faults.oracle import check_equivalence

            verdict = check_equivalence(
                stats[f"{point.label} [solo]"], stats[point.label]
            )
            if not verdict.ok:
                raise OracleViolation(
                    f"{point.label}: co-tenants perturbed the primary"
                    f" architectural stream ({verdict.reason})"
                )
            entry["oracle_ok"] = True
        payload["points"][point.label] = entry
    return result, payload


def payload_json(payload: dict) -> str:
    """Deterministic serialization (byte-identical across --jobs values)."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


# --------------------------------------------------------------------- #
# sharded sweeps
# --------------------------------------------------------------------- #


def shard_slice(
    points: list[SweepPoint], shard: tuple[int, int]
) -> list[SweepPoint]:
    """The deterministic subset of *points* owned by shard ``(i, n)``.

    Assignment hashes each point's key (see
    :func:`repro.store.shard_of`), so it is independent of enumeration
    order and host — N invocations of ``--shard i/N`` over the same grid
    partition it exactly, with no point run twice and none missed.
    """
    from repro.store import shard_of

    index, count = shard
    if count < 1 or not 1 <= index <= count:
        raise ValueError(f"shard index must satisfy 1 <= {index} <= {count}")
    return [p for p in points if shard_of(p.key(), count) == index]


def run_sweep_shard(
    window: int,
    pool: SweepPool,
    shard: tuple[int, int],
    workloads: tuple[str, ...] = SWEEP_WORKLOADS,
    configs: tuple[str, ...] = SWEEP_CONFIGS,
) -> dict:
    """Run one shard of the sweep grid, publishing into ``pool.store``.

    The product of a shard run is its *store*, not a rendered table:
    speedups need the same-workload baseline, which may be owned by a
    different shard.  ``repro.experiments shard-merge`` unions the shard
    stores and renders the full grid from them — byte-identical to a
    single-host ``sweep`` run.  The returned payload summarizes what
    this shard computed (deterministic, sorted keys).
    """
    if pool.store is None:
        raise ValueError(
            "shard runs need a result store (pass --store or --cache-dir);"
            " without one there is nothing to merge"
        )
    points = sweep_points(window, workloads, configs)
    mine = shard_slice(points, shard)
    stats = pool.run(mine)
    return {
        "shard": f"{shard[0]}/{shard[1]}",
        "window": window,
        "workloads": list(workloads),
        "configs": list(configs),
        "points_total": len(points),
        "points_selected": len(mine),
        "points": {
            point.label: {
                "workload": point.workload,
                "key": point.key(),
                "ipc": stats[point.label].ipc,
            }
            for point in mine
        },
    }


def sweep(window: int = DEFAULT_WINDOW,
          pool: SweepPool | None = None) -> ExperimentResult:
    """Registry entry point (rendered result only)."""
    result, _ = run_sweep(window, pool)
    return result
