"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments list
    python -m repro.experiments fig8
    python -m repro.experiments fig12 --window 80000 --jobs 4
    python -m repro.experiments sweep --jobs 4 --json results.json
    python -m repro.experiments --smoke --jobs 2
    python -m repro.experiments all
    python -m repro.experiments serve              # resident daemon
    python -m repro.experiments submit sweep --smoke --wait

``--jobs N`` fans each experiment's sweep points out over N worker
processes; results are bit-identical to a serial run.  Completed points
are published to a content-addressed result store under ``--cache-dir``
(default ``.repro-cache/store/``) and interrupted sweeps resume from a
per-experiment checkpoint file there.  ``sweep --shard i/n --store DIR``
runs a deterministic slice of the grid on one host; ``shard-merge``
unions the shard stores and renders a result set byte-identical to the
single-host run (EXPERIMENTS.md "Distributed sweeps").
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments import astar_sweeps, bfs_sweeps, energy_fig18
from repro.experiments import chaos as chaos_module
from repro.experiments import faults as faults_module
from repro.experiments import fpga_table4, prefetch_sweeps, robustness
from repro.experiments import slipstream_fig2, sweep as sweep_module
from repro.experiments import trace as trace_module
from repro.experiments.pool import CACHE_DIR_ENV, DEFAULT_CACHE_DIR, SweepPool
from repro.experiments.runner import DEFAULT_WINDOW

EXPERIMENTS = {
    "fig2": slipstream_fig2.fig2,
    "fig8": astar_sweeps.fig8,
    "tab2": astar_sweeps.table2,
    "fig9": astar_sweeps.fig9,
    "fig10": astar_sweeps.fig10,
    "astar-mpki": astar_sweeps.astar_mpki,
    "fig12": bfs_sweeps.fig12,
    "tab3": bfs_sweeps.table3,
    "fig13": bfs_sweeps.fig13,
    "fig14": bfs_sweeps.fig14,
    "bfs-mpki": bfs_sweeps.bfs_mpki,
    "fig17": prefetch_sweeps.fig17,
    "fig17-delay": prefetch_sweeps.fig17_delay,
    "fig17-ports": prefetch_sweeps.fig17_ports,
    "tab4": fpga_table4.table4,
    "fig18": energy_fig18.fig18,
    "robust-inputs": robustness.astar_input_robustness,
    "robust-patterns": robustness.astar_pattern_robustness,
    "robust-graphs": robustness.bfs_graph_robustness,
    "sweep": sweep_module.sweep,
    "faults": faults_module.faults,
    "chaos": chaos_module.chaos,
}

#: Experiments that produce a raw-stats payload for ``--json`` and have
#: their own reduced window under ``--smoke``.
PAYLOAD_EXPERIMENTS = {
    "sweep": (sweep_module.run_sweep, sweep_module.SMOKE_WINDOW),
    "faults": (faults_module.run_faults, faults_module.FAULT_SMOKE_WINDOW),
    "chaos": (chaos_module.run_chaos, chaos_module.CHAOS_SMOKE_WINDOW),
}

#: Experiments whose runners accept co-resident fabric tenants
#: (``--tenant``); the others have no multi-tenant story yet.
TENANT_EXPERIMENTS = ("sweep", "chaos")


def _run_info(pool: SweepPool) -> str:
    info = pool.last_run_info or {}
    return (f"{info.get('computed', 0)} simulated,"
            f" {info.get('resumed', 0)} resumed,"
            f" {info.get('cached', 0)} cached,"
            f" {info.get('store_hits', 0)} from store")


def make_pool(args, experiment: str, window: int) -> SweepPool:
    """One pool per experiment: shared result store, own checkpoint."""
    cache_dir = None if args.no_cache else args.cache_dir
    checkpoint = None
    if cache_dir is not None:
        checkpoint = (
            Path(cache_dir) / "checkpoints" / f"{experiment}-w{window}.jsonl"
        )
        if args.no_resume and checkpoint.exists():
            checkpoint.unlink()
    return SweepPool(
        jobs=args.jobs,
        cache_dir=cache_dir,
        checkpoint=checkpoint,
        fail_fast=args.fail_fast,
        store=getattr(args, "store", None),
    )


def _dir_size(path: Path) -> tuple[int, int]:
    """(file count, total bytes) under *path*, recursively."""
    files = 0
    total = 0
    if path.is_dir():
        for entry in path.rglob("*"):
            if entry.is_file():
                files += 1
                total += entry.stat().st_size
    return files, total


def _fmt_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{n} B"
        value /= 1024
    return f"{n} B"


def _cache_main(argv: list[str]) -> int:
    """The ``cache`` subcommand: inspect or clear the `.repro-cache/` store.

    Parsed by its own parser (not the experiments one) so maintenance
    flags like ``clear --jobs`` don't collide with the sweep ``--jobs N``
    worker-count option.
    """
    from repro.workloads import tracecache

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments cache",
        description="Inspect, clear, or garbage-collect .repro-cache/.",
    )
    parser.add_argument(
        "action", nargs="?", default="list", choices=("list", "clear", "gc"),
        help="list (default): report per-section sizes; clear: delete"
             " compiled traces (the result store with --store, the service"
             " job store with --jobs); gc: evict least-recently-written"
             " cache files until the total fits --max-bytes",
    )
    parser.add_argument(
        "--jobs", action="store_true",
        help="with 'clear': clear the service job store (journal, results,"
             " per-job checkpoints) instead of the compiled traces",
    )
    parser.add_argument(
        "--store", action="store_true",
        help="with 'clear': clear the content-addressed result store"
             " instead of the compiled traces",
    )
    parser.add_argument(
        "--max-bytes", metavar="SIZE", default=None,
        help="with 'gc': byte budget for traces+baselines+store combined"
             " (suffixes K/M/G, e.g. 200M); oldest files evicted first",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR),
        help=f"cache directory (default ${CACHE_DIR_ENV} or"
             f" {DEFAULT_CACHE_DIR})",
    )
    args = parser.parse_args(argv)
    base = Path(args.cache_dir)

    if args.action == "gc":
        from repro.store import gc_cache, parse_size

        if args.max_bytes is None:
            parser.error("gc requires --max-bytes SIZE (e.g. --max-bytes 200M)")
        try:
            budget = parse_size(args.max_bytes)
        except ValueError as exc:
            parser.error(str(exc))
        summary = gc_cache(base, budget)
        for name, section in summary["sections"].items():
            print(f"{name}: {section['files']} file(s),"
                  f" {_fmt_bytes(section['bytes'])} -> evicted"
                  f" {section['evicted_files']} file(s),"
                  f" {_fmt_bytes(section['evicted_bytes'])}")
        print(f"total {_fmt_bytes(summary['total_bytes'])} -> kept"
              f" {_fmt_bytes(summary['kept_bytes'])}"
              f" (budget {_fmt_bytes(budget)})")
        return 0

    if args.action == "clear":
        if args.jobs:
            from repro.service import JobStore, jobs_dir

            removed, freed = JobStore(jobs_dir(base)).clear()
            print(f"removed {removed} job-store file(s), freed"
                  f" {_fmt_bytes(freed)} from {jobs_dir(base)}")
            return 0
        if args.store:
            from repro.store import ResultStore, store_dir

            store = ResultStore(store_dir(base))
            removed, freed = store.clear()
            print(f"removed {removed} result-store entr{'y' if removed == 1 else 'ies'},"
                  f" freed {_fmt_bytes(freed)} from {store.directory}")
            return 0
        removed, freed = tracecache.clear_traces(base)
        print(f"removed {removed} compiled trace(s), freed {_fmt_bytes(freed)}"
              f" from {tracecache.trace_dir(base)}")
        return 0

    entries = tracecache.trace_files(base)
    print(f"cache directory: {base}")
    print(f"compiled traces ({tracecache.trace_dir(base)}):")
    if not entries:
        print("  (none)")
    total = 0
    for entry in entries:
        total += entry["size_bytes"]
        if entry["valid"]:
            halted = ", halted" if entry["halted"] else ""
            print(f"  {entry['path'].name}  {_fmt_bytes(entry['size_bytes'])}"
                  f"  ({entry['workload']}, {entry['length']} insts{halted})")
        else:
            print(f"  {entry['path'].name}  {_fmt_bytes(entry['size_bytes'])}"
                  f"  (unreadable — will be recompiled on next use)")
    print(f"  total: {len(entries)} file(s), {_fmt_bytes(total)}")
    grand_total = total
    for label, sub in (("baselines", "baselines"), ("checkpoints", "checkpoints")):
        files, size = _dir_size(base / sub)
        grand_total += size
        print(f"{label}: {files} file(s), {_fmt_bytes(size)}")
    from repro.store import ResultStore, store_dir

    store = ResultStore(store_dir(base))
    store_count, store_bytes = len(store), store.size_bytes()
    grand_total += store_bytes
    print(f"result store ({store.directory}): {store_count}"
          f" entr{'y' if store_count == 1 else 'ies'},"
          f" {_fmt_bytes(store_bytes)}"
          f"  (evict with 'cache gc --max-bytes SIZE')")
    from repro.service import jobs_dir

    files, size = _dir_size(jobs_dir(base))
    grand_total += size
    print(f"service jobs: {files} file(s), {_fmt_bytes(size)}"
          f"  (clear with 'cache clear --jobs')")
    print(f"total cache footprint: {_fmt_bytes(grand_total)}")
    return 0


def _shard_merge_main(argv: list[str]) -> int:
    """The ``shard-merge`` subcommand: union shard stores, render the grid.

    N hosts each ran ``sweep --shard i/N --store DIR-i``; this unions
    their stores into ``--store OUT`` and (with ``--json``) renders the
    *full* sweep grid from the merged store — every point a store hit,
    output byte-identical to a single-host ``sweep --json`` run.  Points
    missing from every shard (a shard died) are computed and published,
    so the merge also repairs partial fleets.
    """
    from repro.store import ResultStore

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments shard-merge",
        description="Union shard result stores and render the full sweep.",
    )
    parser.add_argument(
        "sources", nargs="+", metavar="STORE",
        help="shard store directories to merge (in order; first value"
             " wins on byte conflicts)",
    )
    parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="destination store directory (created if missing)",
    )
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="render the full sweep grid from the merged store to FILE"
             " (byte-identical to a single-host 'sweep --json')",
    )
    parser.add_argument(
        "--window", type=int, default=None,
        help=f"grid window for --json (default {DEFAULT_WINDOW};"
             f" {sweep_module.SMOKE_WINDOW} under --smoke) — must match"
             f" the shard runs",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="render the --smoke grid (must match the shard runs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for any points missing from every shard",
    )
    args = parser.parse_args(argv)

    merged = ResultStore(args.store)
    totals = {"added": 0, "identical": 0, "conflicts": 0, "invalid": 0}
    for source in args.sources:
        summary = merged.merge_from(source)
        for field in totals:
            totals[field] += summary[field]
        print(f"merged {source}: {summary['added']} added,"
              f" {summary['identical']} identical,"
              f" {summary['conflicts']} conflict(s) kept ours,"
              f" {summary['invalid']} invalid skipped")
    count = len(merged)
    print(f"store {merged.directory}: {count}"
          f" entr{'y' if count == 1 else 'ies'},"
          f" {_fmt_bytes(merged.size_bytes())}")

    if args.json:
        window = args.window or (
            sweep_module.SMOKE_WINDOW if args.smoke else DEFAULT_WINDOW
        )
        pool = SweepPool(jobs=args.jobs, store=merged)
        result, payload = sweep_module.run_sweep(window, pool)
        Path(args.json).write_text(sweep_module.payload_json(payload))
        print(result.render())
        print(f"   [jobs={args.jobs}, {_run_info(pool)}]")
        print(f"raw stats written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv:
        from repro.service.cli import SERVICE_VERBS

        if argv[0] in SERVICE_VERBS:
            # Service verbs have their own flag surface (serve/submit/...);
            # hand the whole line to the service CLI.
            from repro.service.cli import main as service_main

            return service_main(argv)
        if argv[0] == "cache":
            return _cache_main(argv[1:])
        if argv[0] == "shard-merge":
            return _shard_merge_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (see 'list'), or 'all'",
    )
    parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="workload to trace ('trace' only; default astar)",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=None,
        help=f"dynamic instructions per run (default {DEFAULT_WINDOW};"
             f" {sweep_module.SMOKE_WINDOW} under --smoke)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes to fan sweep points over (default 1)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run at a tiny window (CI smoke test); alone it runs the"
             " full-matrix sweep, combined with 'sweep' or 'faults' it"
             " shrinks that experiment's window",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the rendered results to FILE",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="write raw per-point stats as deterministic JSON"
             " (sweep, faults and --smoke only)",
    )
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR),
        help=f"result store + checkpoint directory"
             f" (default ${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result store and checkpointing",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="content-addressed result store directory (default"
             " <cache-dir>/store); shard runs point each invocation at"
             " its own store, merged later with 'shard-merge'",
    )
    parser.add_argument(
        "--shard",
        metavar="I/N",
        default=None,
        help="run only the deterministic 1-based shard I of N of the"
             " sweep grid, publishing results into the store"
             " (sweep or bare --smoke only; see 'shard-merge')",
    )
    parser.add_argument(
        "--fail-fast",
        action="store_true",
        help="abort on the first failed sweep point instead of retrying"
             " crashed workers and summarizing failures at the end",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="discard any existing checkpoint instead of resuming from it",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "python", "numpy"),
        default="auto",
        help="execution backend for every run, workers included (auto"
             " honours $REPRO_BACKEND and picks numpy when importable)",
    )
    parser.add_argument(
        "--tenant",
        metavar="LAYOUT[:PRIO]",
        action="append",
        default=[],
        dest="tenants",
        help="co-resident fabric tenant for every PFM point (repeatable),"
             " e.g. introspect or branch-mirror:background; combines with "
             + "/".join(TENANT_EXPERIMENTS)
             + " or bare --smoke",
    )
    trace_group = parser.add_argument_group("trace options")
    trace_group.add_argument(
        "--perfetto",
        metavar="FILE",
        default=None,
        help="write the Perfetto/Chrome trace-event JSON to FILE",
    )
    trace_group.add_argument(
        "--trace-csv",
        metavar="FILE",
        default=None,
        help="write the flat event CSV to FILE",
    )
    trace_group.add_argument(
        "--manifest",
        metavar="FILE",
        default=None,
        help="write the per-run metrics manifest (JSON) to FILE",
    )
    trace_group.add_argument(
        "--config",
        default=trace_module.DEFAULT_TRACE_CONFIG,
        help=f"PFM configuration label to trace"
             f" (default {trace_module.DEFAULT_TRACE_CONFIG!r})",
    )
    trace_group.add_argument(
        "--ring",
        type=int,
        default=trace_module.DEFAULT_RING,
        metavar="N",
        help=f"telemetry ring-buffer capacity in events"
             f" (default {trace_module.DEFAULT_RING})",
    )
    trace_group.add_argument(
        "--sample-period",
        type=int,
        default=trace_module.DEFAULT_SAMPLE_PERIOD,
        metavar="CYCLES",
        help=f"occupancy sampler cadence in core cycles, 0 disables"
             f" (default {trace_module.DEFAULT_SAMPLE_PERIOD})",
    )
    args = parser.parse_args(argv)

    if args.backend != "auto":
        # Worker processes inherit the environment, so pinning the
        # backend here reaches every SweepPool run.
        from repro.backends import ENV_VAR as backend_env_var

        os.environ[backend_env_var] = args.backend

    if args.experiment is None and not args.smoke:
        parser.error("an experiment id (or --smoke) is required")
    tenant_specs: tuple = ()
    if args.tenants:
        if args.experiment is not None and args.experiment not in TENANT_EXPERIMENTS:
            parser.error(
                "--tenant combines only with "
                + "/".join(TENANT_EXPERIMENTS)
                + " (or bare --smoke)"
            )
        from repro.pfm.tenancy import parse_tenant_spec

        try:
            tenant_specs = tuple(parse_tenant_spec(t) for t in args.tenants)
        except ValueError as exc:
            parser.error(str(exc))
    if (
        args.experiment is not None
        and args.smoke
        and args.experiment not in PAYLOAD_EXPERIMENTS
        and args.experiment != "trace"
    ):
        parser.error(
            "--smoke combines only with "
            + "/".join(PAYLOAD_EXPERIMENTS)
            + "/trace; alone it runs the full-matrix sweep"
        )

    shard = None
    if args.shard is not None:
        if args.experiment not in (None, "sweep"):
            parser.error(
                "--shard combines only with the sweep experiment"
                " (or bare --smoke)"
            )
        if tenant_specs:
            parser.error("--shard does not combine with --tenant")
        from repro.store import parse_shard

        try:
            shard = parse_shard(args.shard)
        except ValueError as exc:
            parser.error(str(exc))

    if shard is not None:
        window = args.window or (
            sweep_module.SMOKE_WINDOW if args.smoke else DEFAULT_WINDOW
        )
        index, count = shard
        pool = make_pool(args, f"sweep-shard{index}of{count}", window)
        if pool.store is None:
            parser.error(
                "--shard needs a result store: pass --store DIR or drop"
                " --no-cache"
            )
        started = time.time()
        payload = sweep_module.run_sweep_shard(window, pool, shard)
        print(f"shard {index}/{count}: ran {payload['points_selected']} of"
              f" {payload['points_total']} grid points into"
              f" {pool.store.directory}")
        print(f"   [{time.time() - started:.1f}s, jobs={args.jobs},"
              f" {_run_info(pool)}]")
        if args.json:
            Path(args.json).write_text(sweep_module.payload_json(payload))
            print(f"shard summary written to {args.json}")
        return 0

    if args.experiment == "list":
        from repro.registry import (
            SERVICE_KINDS,
            backend_names,
            component_names,
            predictor_names,
            prefetcher_names,
            tenant_layout_names,
            workload_names,
        )
        from repro.service import ENDPOINTS

        print("experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("  trace  (telemetry trace of one workload; see --perfetto)")
        print("  shape  (aggregate shape-agreement metrics)")
        print("  cache  (inspect/clear/gc the on-disk caches)")
        print("  shard-merge  (union shard result stores; see --shard)")
        print("  serve / submit / status / result / cancel / stats"
              "  (simulation service; see repro.service)")
        for title, names in (
            ("workloads", workload_names()),
            ("components", component_names()),
            ("predictors", predictor_names()),
            ("prefetchers", prefetcher_names()),
            ("tenant layouts", tenant_layout_names()),
            ("backends", backend_names()),
        ):
            print(f"{title}:")
            for name in names:
                print(f"  {name}")
        print("service request kinds:")
        for name, handler in SERVICE_KINDS.items():
            print(f"  {name}  ({handler.summary})")
        print("service endpoints:")
        for method, route, summary in ENDPOINTS:
            print(f"  {method} {route}  ({summary})")
        return 0

    if args.experiment == "trace":
        from repro.telemetry.export import (
            events_csv,
            metrics_manifest,
            perfetto_json,
        )

        target = args.target or "astar"
        if args.smoke:
            window = args.window or trace_module.TRACE_SMOKE_WINDOW
        else:
            window = args.window or DEFAULT_WINDOW
        pool = make_pool(args, f"trace-{target}", window)
        started = time.time()
        result, traced, base = trace_module.run_trace(
            target,
            window,
            pool,
            config=args.config,
            ring=args.ring,
            sample_period=args.sample_period,
        )
        print(result.render())
        print(f"   [{time.time() - started:.1f}s, jobs={args.jobs},"
              f" {_run_info(pool)}]")
        if args.perfetto:
            Path(args.perfetto).write_text(perfetto_json(traced.telemetry))
            print(f"perfetto trace written to {args.perfetto}"
                  f" (load at https://ui.perfetto.dev)")
        if args.trace_csv:
            Path(args.trace_csv).write_text(events_csv(traced.telemetry))
            print(f"event csv written to {args.trace_csv}")
        if args.manifest:
            import json as json_module

            manifest = metrics_manifest(traced, baseline=base)
            Path(args.manifest).write_text(
                json_module.dumps(manifest, sort_keys=True, indent=2) + "\n"
            )
            print(f"metrics manifest written to {args.manifest}")
        return 0

    if args.smoke and args.experiment is None:
        window = args.window or sweep_module.SMOKE_WINDOW
        pool = make_pool(args, "smoke", window)
        started = time.time()
        result, payload = sweep_module.run_sweep(window, pool,
                                                 tenants=tenant_specs)
        print(result.render())
        print(f"   [{time.time() - started:.1f}s, jobs={args.jobs},"
              f" {_run_info(pool)}]")
        if args.json:
            Path(args.json).write_text(sweep_module.payload_json(payload))
            print(f"raw stats written to {args.json}")
        return 0

    if args.smoke:
        window = args.window or PAYLOAD_EXPERIMENTS[args.experiment][1]
    else:
        window = args.window or DEFAULT_WINDOW

    if args.experiment == "shape":
        from repro.experiments.compare import shape_report

        results = [
            EXPERIMENTS[name](window=window, pool=make_pool(args, name, window))
            for name in ("fig2", "fig8", "tab2", "fig12", "tab3", "tab4")
        ]
        print(shape_report(results))
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    rendered = []
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use 'list' to see choices"
            )
        pool = make_pool(args, name, window)
        started = time.time()
        if name in PAYLOAD_EXPERIMENTS:
            run_with_payload = PAYLOAD_EXPERIMENTS[name][0]
            kwargs = (
                {"tenants": tenant_specs}
                if tenant_specs and name in TENANT_EXPERIMENTS
                else {}
            )
            result, payload = run_with_payload(window, pool, **kwargs)
            if args.json:
                Path(args.json).write_text(sweep_module.payload_json(payload))
        else:
            result = EXPERIMENTS[name](window=window, pool=pool)
        text = result.render()
        rendered.append(text)
        print(text)
        print(f"   [{time.time() - started:.1f}s, {_run_info(pool)}]\n")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(
                f"# PFM reproduction results (window={window})\n\n"
            )
            handle.write("\n\n".join(rendered))
            handle.write("\n")
        print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
