"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.experiments list
    python -m repro.experiments fig8
    python -m repro.experiments fig12 --window 80000
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import astar_sweeps, bfs_sweeps, energy_fig18
from repro.experiments import fpga_table4, prefetch_sweeps, robustness
from repro.experiments import slipstream_fig2
from repro.experiments.runner import DEFAULT_WINDOW

EXPERIMENTS = {
    "fig2": slipstream_fig2.fig2,
    "fig8": astar_sweeps.fig8,
    "tab2": astar_sweeps.table2,
    "fig9": astar_sweeps.fig9,
    "fig10": astar_sweeps.fig10,
    "astar-mpki": astar_sweeps.astar_mpki,
    "fig12": bfs_sweeps.fig12,
    "tab3": bfs_sweeps.table3,
    "fig13": bfs_sweeps.fig13,
    "fig14": bfs_sweeps.fig14,
    "bfs-mpki": bfs_sweeps.bfs_mpki,
    "fig17": prefetch_sweeps.fig17,
    "fig17-delay": prefetch_sweeps.fig17_delay,
    "fig17-ports": prefetch_sweeps.fig17_ports,
    "tab4": fpga_table4.table4,
    "fig18": energy_fig18.fig18,
    "robust-inputs": robustness.astar_input_robustness,
    "robust-patterns": robustness.astar_pattern_robustness,
    "robust-graphs": robustness.bfs_graph_robustness,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=DEFAULT_WINDOW,
        help=f"dynamic instructions per run (default {DEFAULT_WINDOW})",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the rendered results to FILE",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        print("shape  (aggregate shape-agreement metrics)")
        return 0

    if args.experiment == "shape":
        from repro.experiments.compare import shape_report

        results = [
            EXPERIMENTS[name](window=args.window)
            for name in ("fig2", "fig8", "tab2", "fig12", "tab3", "tab4")
        ]
        print(shape_report(results))
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    rendered = []
    for name in names:
        if name not in EXPERIMENTS:
            parser.error(
                f"unknown experiment {name!r}; use 'list' to see choices"
            )
        started = time.time()
        result = EXPERIMENTS[name](window=args.window)
        text = result.render()
        rendered.append(text)
        print(text)
        print(f"   [{time.time() - started:.1f}s]\n")

    if args.out:
        with open(args.out, "w") as handle:
            handle.write(
                f"# PFM reproduction results (window={args.window})\n\n"
            )
            handle.write("\n\n".join(rendered))
            handle.write("\n")
        print(f"results written to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
