"""TAGE-SC-L: the paper's baseline conditional branch predictor (Table 1).

Composition (Seznec, CBP-5 2016): TAGE provides the primary prediction;
the loop predictor overrides it for high-confidence regular loops; the
statistical corrector revises the result when its perceptron sum is
confident.  All three train at retirement with prediction-time state
carried in a pending queue (the hardware analogue is the branch queue the
paper's fetch unit keeps for in-flight branches).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.predictor import BranchPredictor
from repro.frontend.statistical_corrector import StatisticalCorrector
from repro.frontend.tage import Tage, TagePrediction
from repro.registry.predictors import register_predictor


@dataclass(slots=True)
class _PendingRecord:
    pc: int
    final_taken: bool
    tage_pred: TagePrediction
    sc_indices: list[int]
    sc_sum: int
    loop_overrode: bool


@register_predictor("tagescl")
class TageSCL(BranchPredictor):
    """TAGE + Statistical Corrector + Loop predictor."""

    def __init__(
        self,
        tage: Tage | None = None,
        corrector: StatisticalCorrector | None = None,
        loop: LoopPredictor | None = None,
    ):
        self.tage = tage or Tage()
        self.corrector = corrector or StatisticalCorrector()
        self.loop = loop or LoopPredictor()
        self._pending: list[_PendingRecord] = []

    def predict(self, pc: int) -> bool:
        tage_pred = self.tage.lookup(pc)
        taken = tage_pred.taken

        loop_pred = self.loop.lookup(pc)
        loop_overrode = False
        if loop_pred.valid:
            taken = loop_pred.taken
            loop_overrode = True

        sc_taken, sc_indices, sc_sum = self.corrector.lookup(pc, taken)
        if not loop_overrode:
            taken = sc_taken

        self._pending.append(
            _PendingRecord(
                pc=pc,
                final_taken=taken,
                tage_pred=tage_pred,
                sc_indices=sc_indices,
                sc_sum=sc_sum,
                loop_overrode=loop_overrode,
            )
        )
        # Speculative history update with the final prediction; the stale
        # bit self-corrects on the (rare) mispredict via the update path.
        self.tage._history.push(taken)
        return taken

    def update(self, pc: int, taken: bool) -> None:
        if not self._pending:
            raise RuntimeError("TAGE-SC-L update without matching predict")
        record = self._pending.pop(0)
        if record.pc != pc:
            raise RuntimeError(
                f"TAGE-SC-L update pc mismatch: {record.pc:#x} vs {pc:#x}"
            )
        if record.final_taken != taken:
            self.tage._history.push(taken)  # correct the speculative bit
        self.tage.train(record.tage_pred, taken)
        self.corrector.train(
            pc,
            record.tage_pred.taken,
            taken,
            record.sc_indices,
            record.sc_sum,
        )
        self.loop.update(pc, taken)

    def on_taken_control(self, pc: int, target: int) -> None:
        self.tage.on_taken_control(pc, target)

    @property
    def pending_depth(self) -> int:
        """In-flight (predicted, not yet trained) branch count."""
        return len(self._pending)
