"""Folded global history registers, as used by TAGE [Seznec].

A geometric history of length L is consumed through circular-shift-register
"folds" so that indices and tags over very long histories cost O(1) per
update instead of O(L).
"""

from __future__ import annotations


class FoldedHistory:
    """History of *length* bits folded into *width* bits."""

    __slots__ = ("value", "length", "width", "_out_shift")

    def __init__(self, length: int, width: int):
        if width <= 0:
            raise ValueError("fold width must be positive")
        self.value = 0
        self.length = length
        self.width = width
        self._out_shift = length % width

    def push(self, bit: int, outgoing_bit: int) -> None:
        """Shift *bit* in and *outgoing_bit* (the bit aging out) out."""
        self.value = (self.value << 1) | bit
        self.value ^= outgoing_bit << self._out_shift
        self.value ^= self.value >> self.width
        self.value &= (1 << self.width) - 1


class GlobalHistory:
    """Global direction history with folded views for each TAGE table."""

    def __init__(self, max_length: int):
        self.max_length = max_length
        self.bits = [0] * max_length  # circular buffer, newest at _head
        self._head = 0
        self._folds: list[FoldedHistory] = []

    def add_fold(self, length: int, width: int) -> FoldedHistory:
        fold = FoldedHistory(length, width)
        self._folds.append(fold)
        return fold

    def push(self, taken: bool) -> None:
        bit = int(taken)
        for fold in self._folds:
            outgoing = self.bits[(self._head - fold.length) % self.max_length]
            fold.push(bit, outgoing)
        self.bits[self._head] = bit
        self._head = (self._head + 1) % self.max_length

    def recent(self, n: int) -> int:
        """The most recent *n* history bits as an integer (newest = LSB)."""
        value = 0
        for i in range(n):
            value |= self.bits[(self._head - 1 - i) % self.max_length] << i
        return value
