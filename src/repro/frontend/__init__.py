"""Front-end substrate: branch predictors.

The paper's baseline core uses a 64 KB TAGE-SC-L [Seznec 2016] conditional
branch predictor (Table 1).  This package implements the real TAGE-SC-L
algorithm — tagged geometric-history tables with usefulness-managed
allocation, a statistical corrector, and a loop predictor — at reduced
storage (see DESIGN.md §5), plus bimodal/gshare baselines used in tests and
ablations, and a perfect predictor for the perfBP idealization.
"""

from repro.frontend.predictor import BranchPredictor, PerfectPredictor
from repro.frontend.simple import AlwaysTakenPredictor, BimodalPredictor, GSharePredictor
from repro.frontend.tage import Tage
from repro.frontend.loop_predictor import LoopPredictor
from repro.frontend.statistical_corrector import StatisticalCorrector
from repro.frontend.tagescl import TageSCL

__all__ = [
    "BranchPredictor",
    "PerfectPredictor",
    "AlwaysTakenPredictor",
    "BimodalPredictor",
    "GSharePredictor",
    "Tage",
    "LoopPredictor",
    "StatisticalCorrector",
    "TageSCL",
]
