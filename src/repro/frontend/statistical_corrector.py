"""Statistical corrector (the SC in TAGE-SC-L).

A GEHL-style perceptron-sum over several global-history-length tables plus
a bias table, gated by a dynamic confidence threshold.  The SC revises the
TAGE prediction when TAGE is statistically weak for a branch — e.g. biased
branches that TAGE keeps flip-flopping on.
"""

from __future__ import annotations

from repro.frontend.history import GlobalHistory

_CTR_MAX = 31  # 6-bit signed weights
_CTR_MIN = -32


class StatisticalCorrector:
    """GEHL tables + bias, with a self-adjusting use threshold."""

    HISTORY_LENGTHS = (0, 3, 8, 16, 27)

    def __init__(self, log_entries: int = 9):
        self._mask = (1 << log_entries) - 1
        self._tables = [
            [0] * (1 << log_entries) for _ in self.HISTORY_LENGTHS
        ]
        self._bias = [0] * (1 << log_entries)
        self._history = GlobalHistory(max(self.HISTORY_LENGTHS) + 2)
        self._threshold = 6
        self._threshold_ctr = 0

    def _indices(self, pc: int, tage_taken: bool) -> list[int]:
        base = (pc >> 2) ^ (int(tage_taken) << 1)
        out = []
        for length in self.HISTORY_LENGTHS:
            h = self._history.recent(length) if length else 0
            out.append((base ^ h ^ (h >> 3)) & self._mask)
        return out

    def _sum(self, pc: int, tage_taken: bool, indices: list[int]) -> int:
        total = 2 * self._bias[(pc >> 2) & self._mask] + 1
        for table, index in zip(self._tables, indices):
            total += 2 * table[index] + 1
        total += (len(self._tables) + 1) * (1 if tage_taken else -1)
        return total

    def lookup(self, pc: int, tage_taken: bool) -> tuple[bool, list[int], int]:
        """Final direction given TAGE's prediction, plus train-time state.

        Returns ``(direction, indices, sum)``; pass *indices*/*sum* back to
        :meth:`train` so training uses prediction-time state (the history
        advances between fetch-time prediction and retire-time training).
        """
        indices = self._indices(pc, tage_taken)
        total = self._sum(pc, tage_taken, indices)
        if abs(total) >= self._threshold:
            return total >= 0, indices, total
        return tage_taken, indices, total

    def predict(self, pc: int, tage_taken: bool) -> bool:
        """Final direction given TAGE's prediction (stateless convenience)."""
        return self.lookup(pc, tage_taken)[0]

    def train(
        self,
        pc: int,
        tage_taken: bool,
        taken: bool,
        indices: list[int],
        total: int,
    ) -> None:
        """Train with prediction-time *indices*/*total* state."""
        sc_taken = total >= 0 if abs(total) >= self._threshold else tage_taken

        # Dynamic threshold (Seznec): adapt when SC and TAGE disagree.
        if sc_taken != tage_taken:
            if sc_taken == taken:
                self._threshold_ctr = max(-127, self._threshold_ctr - 1)
            else:
                self._threshold_ctr = min(127, self._threshold_ctr + 1)
            if self._threshold_ctr >= 64:
                self._threshold = min(31, self._threshold + 1)
                self._threshold_ctr = 0
            elif self._threshold_ctr <= -64:
                self._threshold = max(4, self._threshold - 1)
                self._threshold_ctr = 0

        # Train weights when wrong or weak.
        if sc_taken != taken or abs(total) < self._threshold * 2:
            delta = 1 if taken else -1
            bias_index = (pc >> 2) & self._mask
            self._bias[bias_index] = _clamp(self._bias[bias_index] + delta)
            for table, index in zip(self._tables, indices):
                table[index] = _clamp(table[index] + delta)

        self._history.push(taken)

    def update(self, pc: int, tage_taken: bool, taken: bool) -> None:
        """Train using current-history indices (tests / standalone use)."""
        _, indices, total = self.lookup(pc, tage_taken)
        self.train(pc, tage_taken, taken, indices, total)


def _clamp(value: int) -> int:
    return max(_CTR_MIN, min(_CTR_MAX, value))
