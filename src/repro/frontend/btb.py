"""Branch target buffer and return address stack.

The fetch unit needs the *target* of taken control flow in the same cycle
it predicts the direction; a BTB miss costs a fetch bubble while the
target is computed from the instruction bytes.  Returns (``jalr``) are
predicted by a return address stack pushed by calls (``jal``); a RAS
mispredict is a full pipeline squash, resolved at execute.
"""

from __future__ import annotations


class BranchTargetBuffer:
    """Direct-mapped tagged BTB."""

    def __init__(self, entries: int = 4096):
        if entries & (entries - 1):
            raise ValueError("BTB entries must be a power of two")
        self._mask = entries - 1
        self._tags = [-1] * entries
        self._targets = [0] * entries
        self.hits = 0
        self.misses = 0

    def predict(self, pc: int) -> int | None:
        """Predicted target for the control instruction at *pc*."""
        slot = (pc >> 2) & self._mask
        if self._tags[slot] != pc:
            self.misses += 1
            return None
        self.hits += 1
        return self._targets[slot]

    def update(self, pc: int, target: int) -> None:
        slot = (pc >> 2) & self._mask
        self._tags[slot] = pc
        self._targets[slot] = target


class ReturnAddressStack:
    """Fixed-depth circular return address stack."""

    def __init__(self, depth: int = 16):
        if depth < 1:
            raise ValueError("RAS depth must be >= 1")
        self._stack: list[int] = []
        self._depth = depth
        self.overflows = 0

    def push(self, return_address: int) -> None:
        self._stack.append(return_address)
        if len(self._stack) > self._depth:
            self._stack.pop(0)  # oldest entry falls off (circular)
            self.overflows += 1

    def pop(self) -> int | None:
        """Predicted return target (None when empty)."""
        if not self._stack:
            return None
        return self._stack.pop()

    @property
    def depth(self) -> int:
        return len(self._stack)
