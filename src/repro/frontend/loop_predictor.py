"""Loop predictor (the L in TAGE-SC-L).

Identifies branches with regular trip counts and predicts the loop exit
after a confidence threshold of identical trip counts.  This is the
component that lets the baseline core handle *regular* loop branches —
which is exactly why the paper's bfs neighbor-loop branch (irregular,
per-node trip counts) defeats it and needs a custom component.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class LoopEntry:
    tag: int = -1
    trip_count: int = 0  # learned iterations between exits
    current: int = 0  # iterations seen since last exit
    confidence: int = 0  # exits observed with the same trip count
    age: int = 0


@dataclass(slots=True)
class LoopPrediction:
    valid: bool
    taken: bool
    index: int


class LoopPredictor:
    """Small set-associative table of loop trip counts."""

    CONFIDENCE_THRESHOLD = 3
    MAX_AGE = 31

    def __init__(self, log_entries: int = 6, tag_bits: int = 10):
        self._mask = (1 << log_entries) - 1
        self._tag_mask = (1 << tag_bits) - 1
        self._entries = [LoopEntry() for _ in range(1 << log_entries)]

    def _index_tag(self, pc: int) -> tuple[int, int]:
        return (pc >> 2) & self._mask, (pc >> 2) & self._tag_mask

    def lookup(self, pc: int) -> LoopPrediction:
        index, tag = self._index_tag(pc)
        entry = self._entries[index]
        if entry.tag != tag or entry.confidence < self.CONFIDENCE_THRESHOLD:
            return LoopPrediction(valid=False, taken=False, index=index)
        # Predict not-taken (exit) on the iteration matching the learned
        # trip count; taken (continue) otherwise.  Loop branches here are
        # taken to continue, matching the kernels' bottom-test loops.
        taken = entry.current + 1 < entry.trip_count
        return LoopPrediction(valid=True, taken=taken, index=index)

    def update(self, pc: int, taken: bool) -> None:
        index, tag = self._index_tag(pc)
        entry = self._entries[index]
        if entry.tag != tag:
            # Replacement: only steal aged-out entries.
            if entry.age > 0:
                entry.age -= 1
                return
            entry.tag = tag
            entry.trip_count = 0
            entry.current = 0
            entry.confidence = 0
            entry.age = self.MAX_AGE

        if taken:
            entry.current += 1
            return
        # Loop exit observed: check trip count stability.
        observed = entry.current + 1
        if observed == entry.trip_count:
            entry.confidence = min(self.CONFIDENCE_THRESHOLD, entry.confidence + 1)
            entry.age = self.MAX_AGE
        else:
            entry.trip_count = observed
            entry.confidence = 0
        entry.current = 0
