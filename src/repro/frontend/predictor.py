"""Branch predictor interface.

The cycle model is trace-driven over the correct path, so predictors see
only correct-path branches: ``predict(pc)`` at fetch, then
``update(pc, taken)`` when the branch retires (the paper's core also trains
its tables at retirement).  Predictors maintain their own global history.
"""

from __future__ import annotations

import abc


class BranchPredictor(abc.ABC):
    """Abstract conditional branch predictor."""

    @abc.abstractmethod
    def predict(self, pc: int) -> bool:
        """Predict the branch at *pc*: True = taken."""

    @abc.abstractmethod
    def update(self, pc: int, taken: bool) -> None:
        """Train on the resolved outcome of the branch at *pc*."""

    def on_taken_control(self, pc: int, target: int) -> None:
        """Hook for unconditional taken control flow (history spice).

        Default: no-op.  TAGE-SC-L folds taken jumps into path history.
        """


class PerfectPredictor(BranchPredictor):
    """Oracle predictor for the paper's *perfBP* idealization.

    The cycle model special-cases perfect prediction (it knows the trace
    outcome); this class exists so perfBP flows through the same predictor
    interface and statistics plumbing as real predictors.
    """

    def __init__(self):
        self._next_outcome: bool | None = None

    def stage_outcome(self, taken: bool) -> None:
        """Provide the oracle outcome for the next ``predict`` call."""
        self._next_outcome = taken

    def predict(self, pc: int) -> bool:
        if self._next_outcome is None:
            raise RuntimeError("perfect predictor used without staged outcome")
        outcome, self._next_outcome = self._next_outcome, None
        return outcome

    def update(self, pc: int, taken: bool) -> None:
        return None
