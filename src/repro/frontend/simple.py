"""Simple baseline predictors: static, bimodal, gshare.

These are not part of the paper's configuration (its baseline is
TAGE-SC-L) but serve as reference points in tests and ablation benchmarks,
and as the cheap fallback predictor behind the Fetch Agent's chicken
switch.
"""

from __future__ import annotations

from repro.frontend.predictor import BranchPredictor
from repro.registry.predictors import register_predictor


@register_predictor("always-taken")
class AlwaysTakenPredictor(BranchPredictor):
    """Static always-taken."""

    def predict(self, pc: int) -> bool:
        return True

    def update(self, pc: int, taken: bool) -> None:
        return None


class SaturatingCounter:
    """An n-bit saturating up/down counter."""

    __slots__ = ("value", "_max")

    def __init__(self, bits: int = 2, initial: int | None = None):
        self._max = (1 << bits) - 1
        self.value = initial if initial is not None else (self._max + 1) // 2

    @property
    def taken(self) -> bool:
        return self.value > self._max // 2

    def train(self, taken: bool) -> None:
        if taken:
            if self.value < self._max:
                self.value += 1
        elif self.value > 0:
            self.value -= 1


@register_predictor("bimodal")
class BimodalPredictor(BranchPredictor):
    """PC-indexed table of 2-bit counters."""

    def __init__(self, log_entries: int = 13, counter_bits: int = 2):
        self._mask = (1 << log_entries) - 1
        self._table = [SaturatingCounter(counter_bits) for _ in range(1 << log_entries)]

    def _index(self, pc: int) -> int:
        return (pc >> 2) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].taken

    def update(self, pc: int, taken: bool) -> None:
        self._table[self._index(pc)].train(taken)


@register_predictor("gshare")
class GSharePredictor(BranchPredictor):
    """Global-history XOR PC indexed table of 2-bit counters."""

    def __init__(self, log_entries: int = 14, history_bits: int = 14):
        self._mask = (1 << log_entries) - 1
        self._history_mask = (1 << history_bits) - 1
        self._history = 0
        self._table = [SaturatingCounter(2) for _ in range(1 << log_entries)]

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        return self._table[self._index(pc)].taken

    def update(self, pc: int, taken: bool) -> None:
        self._table[self._index(pc)].train(taken)
        self._history = ((self._history << 1) | int(taken)) & self._history_mask
