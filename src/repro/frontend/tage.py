"""TAGE: TAgged GEometric-history-length branch predictor [Seznec].

A bimodal base table backed by a series of partially-tagged tables indexed
with geometrically increasing global history lengths.  Prediction comes
from the longest-history matching table; allocation on mispredictions is
steered by 2-bit usefulness counters with periodic graceful reset; a
use-alt-on-newly-allocated counter arbitrates between provider and
alternate predictions for fresh entries.

Storage is scaled down relative to the paper's 64 KB configuration (see
DESIGN.md §5) but the algorithm is the full one, so the astar/bfs ROI
branches are genuinely hard for it — the property the paper's motivation
rests on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.history import FoldedHistory, GlobalHistory
from repro.frontend.predictor import BranchPredictor

# Geometric history lengths for the default 8-table configuration.
DEFAULT_HISTORY_LENGTHS = (4, 7, 12, 20, 34, 58, 99, 168)


@dataclass(slots=True)
class TageEntry:
    tag: int = 0
    ctr: int = 0  # signed 3-bit: -4..3, >=0 means taken
    useful: int = 0  # 2-bit usefulness


@dataclass(slots=True)
class TagePrediction:
    """Everything the update path needs about one prediction."""

    taken: bool
    provider: int  # table index, -1 = bimodal
    provider_index: int
    alt_taken: bool
    alt_provider: int
    alt_index: int
    indices: tuple[int, ...]
    tags: tuple[int, ...]
    provider_weak: bool
    bimodal_index: int
    pc: int
    tage_taken: bool = field(default=False)


class Tage(BranchPredictor):
    """The TAGE predictor proper (no SC/L; see :class:`TageSCL`)."""

    def __init__(
        self,
        history_lengths: tuple[int, ...] = DEFAULT_HISTORY_LENGTHS,
        log_tagged_entries: int = 10,
        tag_bits: int = 9,
        log_bimodal_entries: int = 13,
        useful_reset_period: int = 1 << 18,
    ):
        self.history_lengths = history_lengths
        self.num_tables = len(history_lengths)
        self._log_entries = log_tagged_entries
        self._entry_mask = (1 << log_tagged_entries) - 1
        self._tag_bits = tag_bits
        self._tag_mask = (1 << tag_bits) - 1

        self._bimodal_mask = (1 << log_bimodal_entries) - 1
        self._bimodal = [2] * (1 << log_bimodal_entries)  # 2-bit, weakly NT

        self._tables = [
            [TageEntry() for _ in range(1 << log_tagged_entries)]
            for _ in range(self.num_tables)
        ]

        self._history = GlobalHistory(max(history_lengths) + 4)
        self._index_folds: list[FoldedHistory] = []
        self._tag_folds1: list[FoldedHistory] = []
        self._tag_folds2: list[FoldedHistory] = []
        for length in history_lengths:
            self._index_folds.append(self._history.add_fold(length, log_tagged_entries))
            self._tag_folds1.append(self._history.add_fold(length, tag_bits))
            self._tag_folds2.append(self._history.add_fold(length, tag_bits - 1))

        self._use_alt_on_na = 8  # 4-bit counter, >=8 favors alt for weak entries
        self._useful_reset_period = useful_reset_period
        self._branch_count = 0
        self._pending: list[TagePrediction] = []
        self._alloc_rng = 0x9E3779B9  # deterministic LFSR for allocation choice

    # ------------------------------------------------------------------ #
    # indexing
    # ------------------------------------------------------------------ #

    def _bimodal_index(self, pc: int) -> int:
        return (pc >> 2) & self._bimodal_mask

    def _table_index(self, pc: int, table: int) -> int:
        folded = self._index_folds[table].value
        return ((pc >> 2) ^ (pc >> (2 + self._log_entries)) ^ folded) & self._entry_mask

    def _table_tag(self, pc: int, table: int) -> int:
        t1 = self._tag_folds1[table].value
        t2 = self._tag_folds2[table].value
        return ((pc >> 2) ^ t1 ^ (t2 << 1)) & self._tag_mask

    # ------------------------------------------------------------------ #
    # predict
    # ------------------------------------------------------------------ #

    def lookup(self, pc: int) -> TagePrediction:
        """Compute a prediction record without enqueueing it for update."""
        indices = tuple(self._table_index(pc, t) for t in range(self.num_tables))
        tags = tuple(self._table_tag(pc, t) for t in range(self.num_tables))

        provider = -1
        alt_provider = -1
        for t in range(self.num_tables - 1, -1, -1):
            if self._tables[t][indices[t]].tag == tags[t]:
                if provider < 0:
                    provider = t
                else:
                    alt_provider = t
                    break

        bimodal_index = self._bimodal_index(pc)
        bimodal_taken = self._bimodal[bimodal_index] >= 2

        if alt_provider >= 0:
            alt_entry = self._tables[alt_provider][indices[alt_provider]]
            alt_taken = alt_entry.ctr >= 0
            alt_index = indices[alt_provider]
        else:
            alt_taken = bimodal_taken
            alt_index = bimodal_index

        if provider >= 0:
            entry = self._tables[provider][indices[provider]]
            provider_taken = entry.ctr >= 0
            weak = entry.ctr in (-1, 0) and entry.useful == 0
            if weak and self._use_alt_on_na >= 8:
                taken = alt_taken
            else:
                taken = provider_taken
            provider_index = indices[provider]
        else:
            taken = bimodal_taken
            weak = False
            provider_index = bimodal_index

        return TagePrediction(
            taken=taken,
            provider=provider,
            provider_index=provider_index,
            alt_taken=alt_taken,
            alt_provider=alt_provider,
            alt_index=alt_index,
            indices=indices,
            tags=tags,
            provider_weak=weak,
            bimodal_index=bimodal_index,
            pc=pc,
            tage_taken=taken,
        )

    def predict(self, pc: int) -> bool:
        pred = self.lookup(pc)
        self._pending.append(pred)
        self._history.push(pred.taken)  # speculative, corrected on update
        return pred.taken

    # ------------------------------------------------------------------ #
    # update
    # ------------------------------------------------------------------ #

    def update(self, pc: int, taken: bool) -> None:
        if not self._pending:
            raise RuntimeError("TAGE update without matching predict")
        pred = self._pending.pop(0)
        if pred.pc != pc:
            raise RuntimeError(
                f"TAGE update pc mismatch: predicted {pred.pc:#x}, updating {pc:#x}"
            )
        # Trace-driven correct path: fix speculative history if mispredicted.
        if pred.taken != taken:
            self._repair_history(taken)
        self.train(pred, taken)

    def _repair_history(self, taken: bool) -> None:
        # The speculatively pushed bit was wrong.  With no wrong path in a
        # trace-driven model, simply push the correction; the one stale bit
        # ages out and matches hardware that checkpoints/restores history.
        self._history.push(taken)

    def train(self, pred: TagePrediction, taken: bool) -> None:
        """TAGE update given the prediction-time state."""
        self._branch_count += 1
        mispredicted = pred.taken != taken

        if pred.provider >= 0:
            entry = self._tables[pred.provider][pred.provider_index]
            provider_taken = entry.ctr >= 0
            # use-alt-on-na bookkeeping: when provider was weak and the two
            # predictions differ, learn which side to trust.
            if pred.provider_weak and provider_taken != pred.alt_taken:
                if pred.alt_taken == taken:
                    self._use_alt_on_na = min(15, self._use_alt_on_na + 1)
                else:
                    self._use_alt_on_na = max(0, self._use_alt_on_na - 1)
            # usefulness: provider correct where alternate was wrong.
            if provider_taken == taken and pred.alt_taken != taken:
                entry.useful = min(3, entry.useful + 1)
            elif provider_taken != taken and pred.alt_taken == taken:
                entry.useful = max(0, entry.useful - 1)
            entry.ctr = _train_signed(entry.ctr, taken)
            # Train bimodal too when the provider entry is not yet confident.
            if entry.useful == 0:
                self._train_bimodal(pred.bimodal_index, taken)
        else:
            self._train_bimodal(pred.bimodal_index, taken)

        if mispredicted and pred.provider < self.num_tables - 1:
            self._allocate(pred, taken)

        if self._branch_count % self._useful_reset_period == 0:
            self._graceful_useful_reset()

    def _train_bimodal(self, index: int, taken: bool) -> None:
        ctr = self._bimodal[index]
        self._bimodal[index] = min(3, ctr + 1) if taken else max(0, ctr - 1)

    def _next_random(self) -> int:
        # xorshift32: deterministic allocation tie-breaking.
        x = self._alloc_rng
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self._alloc_rng = x
        return x

    def _allocate(self, pred: TagePrediction, taken: bool) -> None:
        start = pred.provider + 1
        candidates = [
            t
            for t in range(start, self.num_tables)
            if self._tables[t][pred.indices[t]].useful == 0
        ]
        if not candidates:
            # Decay usefulness on the would-be victims instead.
            for t in range(start, self.num_tables):
                entry = self._tables[t][pred.indices[t]]
                entry.useful = max(0, entry.useful - 1)
            return
        # Prefer the shortest-history free slot, with a 1/4 chance of
        # skipping to the next candidate (Seznec's anti-ping-pong trick).
        choice = candidates[0]
        if len(candidates) > 1 and self._next_random() % 4 == 0:
            choice = candidates[1]
        entry = self._tables[choice][pred.indices[choice]]
        entry.tag = pred.tags[choice]
        entry.ctr = 0 if taken else -1
        entry.useful = 0

    def _graceful_useful_reset(self) -> None:
        # Alternate clearing the high/low bit of the 2-bit useful counters.
        clear_high = (self._branch_count // self._useful_reset_period) % 2 == 0
        mask = 0b01 if clear_high else 0b10
        for table in self._tables:
            for entry in table:
                entry.useful &= mask

    # ------------------------------------------------------------------ #

    def on_taken_control(self, pc: int, target: int) -> None:
        # Fold a path bit for unconditional taken control flow.
        self._history.push(bool((pc >> 2) & 1))
        # Keep pending-queue alignment: nothing enqueued for jumps.
        # (The extra history bit perturbs indices exactly as hardware would.)
        return None

    def storage_bits(self) -> int:
        """Approximate storage cost in bits (for documentation/tests)."""
        tagged = self.num_tables * (1 << self._log_entries) * (self._tag_bits + 3 + 2)
        bimodal = len(self._bimodal) * 2
        return tagged + bimodal


def _train_signed(ctr: int, taken: bool, bits: int = 3) -> int:
    top = (1 << (bits - 1)) - 1
    bottom = -(1 << (bits - 1))
    if taken:
        return min(top, ctr + 1)
    return max(bottom, ctr - 1)
