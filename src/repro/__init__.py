"""Post-Fabrication Microarchitecture (PFM) — MICRO 2021 reproduction.

A superscalar core coupled with an on-chip reconfigurable fabric through
three programmable Agents (Retire, Fetch, Load), enabling post-fabrication
deployment of application-specific microarchitecture components.

Public entry points:

* :func:`repro.core.simulate` — run a workload under a
  :class:`repro.core.SimConfig` (optionally with PFM attached).
* :mod:`repro.workloads` — the paper's regions of interest as kernels.
* :mod:`repro.pfm` — the agent interface and the custom components.
* ``python -m repro.sim`` — command-line simulation driver.
* ``python -m repro.experiments`` — regenerate the paper's tables/figures.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
