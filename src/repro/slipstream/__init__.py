"""Slipstream 2.0 comparator (Srinivasan et al., ISCA 2020).

A simplified model of the state-of-the-art branch pre-execution
architecture the paper compares against in Figure 2 and Section 1.1.
"""

from repro.slipstream.model import (
    SlipstreamOracle,
    make_astar_slipstream,
    make_bfs_slipstream,
)

__all__ = ["SlipstreamOracle", "make_astar_slipstream", "make_bfs_slipstream"]
