"""Slipstream 2.0 branch pre-execution model (Section 1.1 / Figure 2).

Slipstream runs a pruned *leading* thread ahead of the *trailing* thread;
the leading thread pre-executes hard branches by removing their
control-dependent regions and forwards outcomes.  For astar, Section 1.1
(following Srinivasan et al. §IV.A.1) identifies its two limitations:

1. Branch 2 (*maparp*) cannot be pre-executed because it is skipped-over
   when branch 1's CD region is pruned — it falls back to the core's own
   predictor here.
2. A non-negligible fraction of branch 1 (*waymap*) instances are
   pre-executed incorrectly because pruning the CD region removes the
   loop-carried store to ``waymap[index1].fillnum``: the leading thread
   runs with a stale view of the array, one run-ahead window behind.

The paper evaluates slipstream with two tailored optimizations (hardwired
pruning predictor, local-squash recovery instead of leading-thread
restarts); both are modelled — ``restart_penalty=0`` is the local-squash
variant, a positive value charges a leading-thread rollback per incorrect
pre-execution (the paper notes the speedup is "substantially lower with
restarts").

The model plugs into the core as a :class:`SlipstreamOracle`: it observes
the retired stream (tracking the visited-marking stores with a run-ahead
delay) and overrides predictions for the pre-executed branch population.
"""

from __future__ import annotations

from collections import deque

from repro.workloads.base import Workload
from repro.workloads.trace import DynInst


class SlipstreamOracle:
    """Pre-executed predictions for one population of hard branches.

    Args:
        branch_pcs: PCs of the pre-executed branches (branch 1 instances).
        store_pcs: PCs of the pruned loop-carried stores.
        load_pcs: PCs of the loads feeding the pre-executed branches; the
            model pairs each branch with its feeding load's address.
        lead_instructions: leading-thread run-ahead, in dynamic
            instructions — stores younger than this are invisible to the
            leading thread's pre-execution.
        restart_penalty: extra front-end stall cycles charged when a
            pre-execution is found incorrect (0 = local-squash recovery).
    """

    def __init__(
        self,
        branch_pcs: set[int],
        store_pcs: set[int],
        load_pcs: set[int],
        lead_instructions: int = 400,
        restart_penalty: int = 0,
    ):
        self.branch_pcs = frozenset(branch_pcs)
        self.store_pcs = frozenset(store_pcs)
        self.load_pcs = frozenset(load_pcs)
        self.lead = lead_instructions
        self.restart_penalty = restart_penalty
        # Addresses stored-to within the leading thread's blind window.
        self._recent_stores: deque[tuple[int, int]] = deque()  # (seq, addr)
        self._recent_set: dict[int, int] = {}  # addr -> count in window
        self._last_load_addr: int | None = None
        self._pending_restart = 0
        self.pre_executed = 0
        self.incorrect_pre_executions = 0

    # ------------------------------------------------------------------ #

    def observe(self, dyn: DynInst) -> int:
        """Track pruned stores; return extra stall cycles (restarts)."""
        if dyn.pc in self.store_pcs:
            self._recent_stores.append((dyn.seq, dyn.mem_addr))
            self._recent_set[dyn.mem_addr] = (
                self._recent_set.get(dyn.mem_addr, 0) + 1
            )
        while self._recent_stores and self._recent_stores[0][0] < dyn.seq - self.lead:
            _, addr = self._recent_stores.popleft()
            count = self._recent_set[addr] - 1
            if count:
                self._recent_set[addr] = count
            else:
                del self._recent_set[addr]
        if dyn.pc in self.load_pcs:
            self._last_load_addr = dyn.mem_addr
        penalty, self._pending_restart = self._pending_restart, 0
        return penalty

    def predict(self, dyn: DynInst) -> bool | None:
        """Pre-executed outcome for branch-1 instances; None otherwise."""
        if dyn.pc not in self.branch_pcs:
            return None
        self.pre_executed += 1
        actual = bool(dyn.taken)
        # The leading thread's view misses stores inside the blind window.
        # If the feeding load's address was stored-to there, pre-execution
        # computed the stale (not-visited) outcome.
        if self._last_load_addr is not None and self._last_load_addr in self._recent_set:
            predicted = False  # stale view: looks unvisited
        else:
            predicted = actual
        if predicted != actual:
            self.incorrect_pre_executions += 1
            self._pending_restart = self.restart_penalty
        return predicted


def make_astar_slipstream(
    workload: Workload,
    lead_instructions: int = 400,
    restart_penalty: int = 0,
) -> SlipstreamOracle:
    """Slipstream for astar: pre-execute the 8 waymap branches.

    The maparp branches are skipped-over (limitation 1) and keep using the
    core's predictor.
    """
    program = workload.program
    branch_pcs = set()
    store_pcs = set()
    load_pcs = set()
    for k in range(8):
        branch_pcs.update(program.pcs_with_comment(f"fst:waymap:{k}"))
        store_pcs.update(program.pcs_with_comment(f"waymap_store:{k}"))
        load_pcs.update(program.pcs_with_comment(f"waymap_load:{k}"))
    return SlipstreamOracle(
        branch_pcs,
        store_pcs,
        load_pcs,
        lead_instructions=lead_instructions,
        restart_penalty=restart_penalty,
    )


def make_bfs_slipstream(
    workload: Workload,
    lead_instructions: int = 400,
    restart_penalty: int = 0,
) -> SlipstreamOracle:
    """Slipstream for bfs: pre-execute the visited branch.

    The variable-trip-count neighbour loop branch is not a pruned-CD
    candidate and keeps using the core's predictor.
    """
    program = workload.program
    return SlipstreamOracle(
        set(program.pcs_with_comment("fst:visited")),
        set(program.pcs_with_comment("visited_store")),
        set(program.pcs_with_comment("prop_load")),
        lead_instructions=lead_instructions,
        restart_penalty=restart_penalty,
    )
