"""Functional execution: programs -> dynamic instruction streams.

The cycle model in :mod:`repro.core` is trace-driven: it consumes
:class:`DynInst` records produced here, in correct-path program order, and
assigns timing.  The executor also keeps the shared
:class:`~repro.workloads.mem.MemoryImage` up to date as the stream advances,
which is what Load-Agent-injected loads from custom components read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import Program
from repro.workloads.mem import MemoryImage


@dataclass(slots=True)
class DynInst:
    """One dynamic (correct-path) instruction with its architectural effects."""

    seq: int
    pc: int
    mnemonic: str
    op_class: OpClass
    dst: str | None
    srcs: tuple[str, ...]
    mem_addr: int | None
    store_value: float | None
    dst_value: float | None
    taken: bool | None
    next_pc: int
    comment: str

    @property
    def is_conditional_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE


class ExecutionError(RuntimeError):
    """Raised when the functional executor hits an undefined situation."""


class FunctionalExecutor:
    """Execute a :class:`~repro.isa.program.Program` architecturally.

    Produces the dynamic instruction stream one instruction at a time via
    :meth:`step` / :meth:`run`.  Register state lives in a plain dict; the
    ``zero`` register reads as 0 and ignores writes.
    """

    def __init__(
        self,
        program: Program,
        memory: MemoryImage,
        initial_regs: dict[str, float] | None = None,
        entry: str | None = None,
    ):
        self.program = program
        self.memory = memory
        self.regs: dict[str, float] = dict(initial_regs or {})
        self.pc = program.pc_of_label(entry) if entry else program.base_pc
        self.seq = 0
        self.halted = False

    # ------------------------------------------------------------------ #

    def _read(self, reg: str) -> float:
        if reg == "zero":
            return 0
        return self.regs.get(reg, 0)

    def _write(self, reg: str | None, value: float) -> None:
        if reg is not None and reg != "zero":
            self.regs[reg] = value

    def step(self) -> DynInst:
        """Execute one instruction and return its dynamic record."""
        if self.halted:
            raise ExecutionError("executor already halted")
        inst = self.program.at(self.pc)
        dyn = self._execute(inst)
        self.pc = dyn.next_pc
        self.seq += 1
        return dyn

    def run(self, max_instructions: int) -> Iterator[DynInst]:
        """Yield up to *max_instructions* dynamic instructions."""
        for _ in range(max_instructions):
            if self.halted:
                return
            yield self.step()

    # ------------------------------------------------------------------ #

    def _execute(self, inst: Instruction) -> DynInst:
        read = self._read
        mnem = inst.mnemonic
        srcs = inst.srcs
        imm = inst.imm
        dst_value: float | None = None
        mem_addr: int | None = None
        store_value: float | None = None
        taken: bool | None = None
        next_pc = inst.pc + 4
        op_class = inst.op_class

        if op_class is OpClass.INT_ALU or op_class in (
            OpClass.INT_MUL,
            OpClass.INT_DIV,
            OpClass.FP_ALU,
            OpClass.FP_MUL,
            OpClass.FP_DIV,
        ):
            dst_value = _ALU_OPS[mnem](read, srcs, imm)
            self._write(inst.dst, dst_value)
        elif op_class is OpClass.LOAD:
            mem_addr = int(read(srcs[0])) + imm
            dst_value = self.memory.load(mem_addr)
            self._write(inst.dst, dst_value)
        elif op_class is OpClass.STORE:
            mem_addr = int(read(srcs[0])) + imm
            store_value = read(srcs[1])
            self.memory.store(mem_addr, store_value)
        elif op_class is OpClass.BRANCH:
            taken = _BRANCH_OPS[mnem](read(srcs[0]), read(srcs[1]))
            if taken:
                next_pc = self.program.target_of(inst.pc)
        elif op_class is OpClass.JUMP:
            if mnem == "jalr":
                next_pc = int(read(srcs[0]))
            else:
                next_pc = self.program.target_of(inst.pc)
            if inst.dst is not None:
                dst_value = inst.pc + 4
                self._write(inst.dst, dst_value)
            taken = True
        elif op_class is OpClass.HALT:
            self.halted = True
            next_pc = inst.pc
        else:  # pragma: no cover - all classes handled above
            raise ExecutionError(f"unhandled op class {op_class}")

        return DynInst(
            seq=self.seq,
            pc=inst.pc,
            mnemonic=mnem,
            op_class=op_class,
            dst=inst.dst,
            srcs=srcs,
            mem_addr=mem_addr,
            store_value=store_value,
            dst_value=dst_value,
            taken=taken,
            next_pc=next_pc,
            comment=inst.comment,
        )


def _sra(value: int, shift: int) -> int:
    return value >> shift


_ALU_OPS = {
    "add": lambda r, s, i: int(r(s[0])) + int(r(s[1])),
    "sub": lambda r, s, i: int(r(s[0])) - int(r(s[1])),
    "and_": lambda r, s, i: int(r(s[0])) & int(r(s[1])),
    "or_": lambda r, s, i: int(r(s[0])) | int(r(s[1])),
    "xor": lambda r, s, i: int(r(s[0])) ^ int(r(s[1])),
    "sll": lambda r, s, i: int(r(s[0])) << (int(r(s[1])) & 63),
    "srl": lambda r, s, i: int(r(s[0])) >> (int(r(s[1])) & 63),
    "sra": lambda r, s, i: _sra(int(r(s[0])), int(r(s[1])) & 63),
    "slt": lambda r, s, i: int(int(r(s[0])) < int(r(s[1]))),
    "sltu": lambda r, s, i: int(abs(int(r(s[0]))) < abs(int(r(s[1])))),
    "addi": lambda r, s, i: int(r(s[0])) + i,
    "andi": lambda r, s, i: int(r(s[0])) & i,
    "ori": lambda r, s, i: int(r(s[0])) | i,
    "xori": lambda r, s, i: int(r(s[0])) ^ i,
    "slli": lambda r, s, i: int(r(s[0])) << (i & 63),
    "srli": lambda r, s, i: int(r(s[0])) >> (i & 63),
    "srai": lambda r, s, i: _sra(int(r(s[0])), i & 63),
    "slti": lambda r, s, i: int(int(r(s[0])) < i),
    "li": lambda r, s, i: i,
    "mv": lambda r, s, i: r(s[0]),
    "mul": lambda r, s, i: int(r(s[0])) * int(r(s[1])),
    "muli": lambda r, s, i: int(r(s[0])) * i,
    "div": lambda r, s, i: int(r(s[0])) // max(1, int(r(s[1]))),
    "rem": lambda r, s, i: int(r(s[0])) % max(1, int(r(s[1]))),
    "fadd": lambda r, s, i: r(s[0]) + r(s[1]),
    "fsub": lambda r, s, i: r(s[0]) - r(s[1]),
    "fmul": lambda r, s, i: r(s[0]) * r(s[1]),
    "fdiv": lambda r, s, i: r(s[0]) / (r(s[1]) or 1.0),
    "fmv": lambda r, s, i: r(s[0]),
    "fli": lambda r, s, i: float(i),
    "fcvt": lambda r, s, i: float(r(s[0])),
}

_BRANCH_OPS = {
    "beq": lambda a, b: a == b,
    "bne": lambda a, b: a != b,
    "blt": lambda a, b: a < b,
    "bge": lambda a, b: a >= b,
    "bltu": lambda a, b: abs(a) < abs(b),
    "bgeu": lambda a, b: abs(a) >= abs(b),
}
