"""libquantum's ROI: ``quantum_toffoli`` / ``quantum_sigma_x`` (Figure 15).

Both functions stream through the quantum register's node array with a
fixed stride, testing control-bit masks and conditionally flipping the
target bit.  The node-state load (annotated **B** in the paper) is the
delinquent load; the array far exceeds the cache hierarchy, so every new
line is a miss that the custom prefetch engine (Figure 16) removes with
an adaptively-distanced stride stream.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage

#: The quantum_reg_node struct is 16 bytes: {state, amplitude-ref}.
NODE_STRIDE = 16


@register_workload("libquantum")
def build_libquantum_workload(
    reg_size: int = 200_000,
    control1: int = 1 << 3,
    control2: int = 1 << 7,
    target: int = 1 << 11,
    seed: int = 3,
    component_factory=None,
) -> Workload:
    """Assemble toffoli+sigma_x sweeps over a DRAM-resident register."""
    memory = MemoryImage()
    rng = random.Random(seed)
    state_base = memory.allocate("reg_state", 2 * reg_size)
    # Initialize states so the control masks are usually set (biased,
    # predictable branches — the bottleneck is the loads, not control).
    for i in range(reg_size):
        state = control1 | control2 | rng.getrandbits(3)
        if rng.random() < 0.08:
            state &= ~control1
        memory.store(state_base + i * NODE_STRIDE, state)

    b = ProgramBuilder()
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # libquantum ROI")
    b.li("s1", control1)
    b.li("s2", control2)
    b.li("s3", target)
    b.li("s7", reg_size)

    # quantum_toffoli(control1, control2, target)
    b.label("toffoli")
    b.li("s4", state_base, comment="snoop:base:toffoli")
    b.li("s10", 0, comment="i = 0")
    b.label("t_loop")
    b.bge("s10", "s7", "t_done")
    b.slli("t1", "s10", 4)
    b.add("t1", "t1", "s4")
    b.ld("t2", base="t1", offset=0, comment="load B (delinquent)")
    b.and_("t3", "t2", "s1")
    b.beq("t3", "zero", "t_next", comment="control1 test")
    b.and_("t3", "t2", "s2")
    b.beq("t3", "zero", "t_next", comment="control2 test")
    b.xor("t2", "t2", "s3")
    b.sd("t2", base="t1", offset=0, comment="flip target")
    b.label("t_next")
    b.addi("s10", "s10", 1, comment="snoop:iter:toffoli")
    b.j("t_loop")
    b.label("t_done")

    # quantum_sigma_x(target): unconditional flip, same delinquent pattern
    b.label("sigma_x")
    b.li("s5", state_base, comment="snoop:base:sigma_x")
    b.li("s10", 0)
    b.label("s_loop")
    b.bge("s10", "s7", "s_done")
    b.slli("t1", "s10", 4)
    b.add("t1", "t1", "s5")
    b.ld("t2", base="t1", offset=0, comment="load B' (delinquent)")
    b.xor("t2", "t2", "s3")
    b.sd("t2", base="t1", offset=0)
    b.addi("s10", "s10", 1, comment="snoop:iter:sigma_x")
    b.j("s_loop")
    b.label("s_done")
    b.halt()

    program = b.build()

    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "libq_roi",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:base:toffoli")[0],
            SnoopKind.DEST_VALUE,
            "base:toffoli",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter:toffoli")[0],
            SnoopKind.DEST_VALUE,
            "iter:toffoli",
            droppable=True,
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:base:sigma_x")[0],
            SnoopKind.DEST_VALUE,
            "base:sigma_x",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter:sigma_x")[0],
            SnoopKind.DEST_VALUE,
            "iter:sigma_x",
            droppable=True,
        ),
    ]

    metadata = {
        "sites": [
            {"tag": "toffoli", "stride": NODE_STRIDE},
            {"tag": "sigma_x", "stride": NODE_STRIDE},
        ],
        "initial_distance": 8,
    }
    bitstream = make_bitstream(
        "libquantum-prefetcher",
        component=component_factory or "libquantum-prefetcher",
        rst_entries=rst_entries,
        metadata=metadata,
    )
    return Workload(
        name="libquantum",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"reg_size": reg_size},
    )
