"""Workload bundle: program + memory + PFM configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.program import Program
from repro.pfm.snoop import Bitstream
from repro.workloads.mem import MemoryImage
from repro.workloads.trace import FunctionalExecutor


@dataclass
class Workload:
    """Everything needed to simulate one use-case.

    Attributes:
        name: benchmark name (astar, bfs, libquantum, ...).
        program: the assembled kernel.
        memory: initialized data memory image.
        initial_regs: architectural register state at entry.
        entry: label to start execution at (program base if None).
        bitstream: PFM configuration for this workload's custom component,
            or None for plain-core workloads.
        metadata: free-form notes (grid size, graph, array sizes, ...).
        trace_key: content digest identifying this workload in the
            compiled-trace cache, stamped by the registry's
            ``build_workload``; None for hand-assembled workloads
            (those always execute functionally).
        build_ref: ``(registry name, overrides)`` recipe to rebuild a
            fresh copy, stamped alongside ``trace_key`` — trace
            compilation consumes a dedicated rebuild so this instance's
            memory image stays pristine for the simulation itself.
    """

    name: str
    program: Program
    memory: MemoryImage
    initial_regs: dict[str, float] = field(default_factory=dict)
    entry: str | None = None
    bitstream: Bitstream | None = None
    metadata: dict = field(default_factory=dict)
    trace_key: str | None = None
    build_ref: tuple[str, dict] | None = None

    def executor(self) -> FunctionalExecutor:
        """Fresh functional executor over this workload's state.

        Note: the memory image is mutated by execution; build a new
        workload (they are cheap) for every independent simulation run.
        """
        return FunctionalExecutor(
            self.program, self.memory, self.initial_regs, self.entry
        )
