"""astar's region of interest: ``wayobj::fill()`` / ``wayobj::makebound2()``.

A faithful kernel of Figure 6: ``fill`` bumps ``fillnum`` and repeatedly
calls ``makebound2`` with the input/output worklists swapping roles each
call.  ``makebound2`` walks the input worklist; for each ``index`` it
examines the eight neighbouring cells (``index1``), testing
``waymap[index1].fillnum != fillnum`` (the *waymap* branch) and
``maparp[index1] == 0`` (the *maparp* branch); cells passing both are
appended to the output worklist and marked visited by storing ``fillnum``
— the loop-carried memory dependency that defeats automated
pre-execution.  The nested-if template is unrolled eight times, giving the
paper's 16 difficult branches.

Inputs substitute a synthetic obstacle grid for the SPEC map (DESIGN.md
§3): what matters to the predictors is that worklist order is dynamic and
the visited/blocked patterns are input-dependent.
"""

from __future__ import annotations

import random

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import FSTEntry, RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import WORD_BYTES, MemoryImage

#: waymap entries are two-field structs {fillnum, num}: 16 bytes each.
WAYMAP_STRIDE = 2 * WORD_BYTES


def build_grid(
    width: int,
    height: int,
    obstacle_density: float,
    seed: int,
    pattern: str = "random",
) -> list[int]:
    """Obstacle map: 1 = blocked.  The border is always blocked so the
    eight neighbour offsets never leave the array.

    Patterns:
        random — independent per-cell obstacles at *obstacle_density*
            (speckle, like open terrain with scattered blockers).
        maze — wall rows/columns with door gaps (corridor maps); the
            wavefront threads through doors, giving runs of highly
            correlated branch outcomes instead of speckle noise.
    """
    if pattern not in ("random", "maze"):
        raise ValueError(f"unknown grid pattern {pattern!r}")
    rng = random.Random(seed)
    maparp = [0] * (width * height)
    for y in range(height):
        for x in range(width):
            border = x == 0 or y == 0 or x == width - 1 or y == height - 1
            if border or (
                pattern == "random" and rng.random() < obstacle_density
            ):
                maparp[y * width + x] = 1
    if pattern == "maze":
        for wall_y in range(4, height - 1, 5):
            doors = {rng.randrange(1, width - 1) for _ in range(width // 10 + 1)}
            for x in range(width):
                if x not in doors:
                    maparp[wall_y * width + x] = 1
        for wall_x in range(6, width - 1, 7):
            doors = {rng.randrange(1, height - 1) for _ in range(height // 10 + 1)}
            for y in range(height):
                if y not in doors:
                    maparp[y * width + wall_x] = 1
    return maparp


@register_workload("astar")
def build_astar_workload(
    grid_width: int = 320,
    grid_height: int = 320,
    obstacle_density: float = 0.28,
    seed: int = 1,
    fills: int = 1,
    pattern: str = "random",
    component_factory=None,
) -> Workload:
    """Assemble the astar ROI kernel plus its PFM bitstream.

    The pathfinding driver calls ``wayobj::fill()`` *fills* times with
    different start cells, as the game's repeated path queries do; each
    call bumps the ``fillnum`` sentinel, re-enters the ROI (the Retire
    Agent re-synchronizes the component), and the previous call's visited
    marks are invalidated by the new sentinel rather than cleared.

    *component_factory* defaults to the custom astar branch predictor
    (the bitstream is ignored when the core runs without PFM).
    """
    ncells = grid_width * grid_height
    memory = MemoryImage()
    waymap_base = memory.allocate("waymap", 2 * ncells)
    maparp_base = memory.store_array(
        "maparp", build_grid(grid_width, grid_height, obstacle_density, seed, pattern)
    )
    bound1_base = memory.allocate("bound1p", ncells)
    bound2_base = memory.allocate("bound2p", ncells)

    start = (grid_height // 2) * grid_width + grid_width // 2
    rng = random.Random(seed + 77)
    starts = [start]
    while len(starts) < fills:
        candidate = (
            rng.randrange(2, grid_height - 2) * grid_width
            + rng.randrange(2, grid_width - 2)
        )
        starts.append(candidate)
    memory.store_array("starts", starts)
    end_index = grid_width * (grid_height - 2) + grid_width - 2  # far corner

    b = ProgramBuilder()

    # ------------------------------------------------------------------ #
    # main: set up invariant bases (snooped once), then run fill().
    # ------------------------------------------------------------------ #
    b.li("s2", end_index)
    b.li("s1", 0, comment="step=0")
    b.li("a5", bound1_base)
    b.li("a6", bound2_base)
    b.li("s0", 7, comment="fillnum initial")
    b.li("gp", memory.base("starts"), comment="start-cell pointer")
    b.li("tp", fills, comment="remaining fill() calls")

    # Pathfinding driver: one fill() per path query.
    b.label("fill_outer")
    b.beq("tp", "zero", "all_done")
    b.ld("t0", base="gp", offset=0, comment="next start cell")
    b.sd("t0", base="a5", offset=0, comment="bound1p[0] = start")
    b.li("a4", 1, comment="initial worklist length")
    b.addi("gp", "gp", 8)
    b.addi("tp", "tp", -1)

    # wayobj::fill()
    b.label("fill")
    b.addi("s0", "s0", 1, comment="snoop:fillnum  # fillnum++ (ROI begin)")
    b.li("t5", 0, comment="flend=false")
    b.li("a3", 0, comment="flodd=false")
    b.label("fill_loop")
    b.beq("a4", "zero", "fill_done", comment="while boundl != 0")
    b.bne("t5", "zero", "fill_done", comment="&& flend == false")
    b.bne("a3", "zero", "odd_call")
    b.mv("a0", "a5", comment="even: in = bound1p")
    b.mv("a2", "a6", comment="even: out = bound2p")
    b.li("a3", 1)
    b.j("do_call")
    b.label("odd_call")
    b.mv("a0", "a6", comment="odd: in = bound2p")
    b.mv("a2", "a5", comment="odd: out = bound1p")
    b.li("a3", 0)
    b.label("do_call")
    b.mv("a1", "a4")
    b.jal("makebound2")
    b.mv("a4", "a0", comment="boundl = makebound2(...)")
    b.addi("s1", "s1", 1, comment="step++")
    b.j("fill_loop")
    b.label("fill_done")
    b.j("fill_outer")
    b.label("all_done")
    b.halt()

    # ------------------------------------------------------------------ #
    # wayobj::makebound2(in=a0, len=a1, out=a2) -> new length
    # ------------------------------------------------------------------ #
    b.label("makebound2")
    b.li("s3", grid_width, comment="snoop:yoffset  # yoffset = maply")
    b.li("s4", waymap_base, comment="snoop:waymap_base")
    b.li("s5", maparp_base, comment="snoop:maparp_base")
    b.mv("s6", "a0", comment="snoop:worklist_base  # input worklist arg")
    b.mv("s7", "a1")
    b.mv("s8", "a2")
    b.li("s9", 0, comment="bound2l = 0")
    b.li("s10", 0, comment="i = 0")

    b.label("mb2_loop")
    b.bge("s10", "s7", "mb2_done", comment="loop_back")
    b.slli("t1", "s10", 3)
    b.add("t1", "s6", "t1")
    b.ld("s11", base="t1", offset=0, comment="worklist_load  # index=bound1p[i]")

    # The nested-if template, repeated for the eight neighbours.
    # offsets: -yoffset-1, -yoffset, -yoffset+1, -1, +1, +yoffset-1,
    #          +yoffset, +yoffset+1 — computed with the snooped yoffset.
    neighbour_plans = [
        ("sub", -1),
        ("sub", 0),
        ("sub", 1),
        (None, -1),
        (None, 1),
        ("add", -1),
        ("add", 0),
        ("add", 1),
    ]
    for k, (row_op, delta) in enumerate(neighbour_plans):
        skip = f"skip_{k}"
        if row_op == "sub":
            b.sub("t0", "s11", "s3", comment=f"index1[{k}]")
        elif row_op == "add":
            b.add("t0", "s11", "s3", comment=f"index1[{k}]")
        else:
            b.mv("t0", "s11", comment=f"index1[{k}]")
        if delta:
            b.addi("t0", "t0", delta)
        # waymap[index1].fillnum load + branch
        b.slli("t1", "t0", 4, comment="waymap stride 16B")
        b.add("t1", "t1", "s4")
        b.ld("t2", base="t1", offset=0, comment=f"waymap_load:{k}")
        b.beq("t2", "s0", skip, comment=f"fst:waymap:{k}")
        # maparp[index1] load + branch
        b.slli("t4", "t0", 3)
        b.add("t4", "t4", "s5")
        b.ld("t3", base="t4", offset=0, comment=f"maparp_load:{k}")
        b.bne("t3", "zero", skip, comment=f"fst:maparp:{k}")
        # control-dependent region: append + mark visited
        b.slli("t6", "s9", 3)
        b.add("t6", "t6", "s8")
        b.sd("t0", base="t6", offset=0, comment="worklist_append")
        b.addi("s9", "s9", 1)
        b.sd("s0", base="t1", offset=0, comment=f"waymap_store:{k}")
        b.sd("s1", base="t1", offset=8, comment="waymap_num_store")
        b.bne("t0", "s2", skip, comment="endindex check")
        b.li("t5", 1, comment="flend = true")
        b.label(skip)

    b.addi("s10", "s10", 1, comment="snoop:iter_inc  # i++")
    b.j("mb2_loop")
    b.label("mb2_done")
    b.mv("a0", "s9")
    b.jalr("ra")

    program = b.build()

    rst_entries = [
        RSTEntry(program.pcs_with_comment("snoop:fillnum")[0], SnoopKind.ROI_BEGIN, "fillnum"),
        RSTEntry(program.pcs_with_comment("snoop:yoffset")[0], SnoopKind.DEST_VALUE, "yoffset"),
        RSTEntry(
            program.pcs_with_comment("snoop:worklist_base")[0],
            SnoopKind.DEST_VALUE,
            "worklist_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:waymap_base")[0],
            SnoopKind.DEST_VALUE,
            "waymap_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:maparp_base")[0],
            SnoopKind.DEST_VALUE,
            "maparp_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter_inc")[0],
            SnoopKind.DEST_VALUE,
            "iter_inc",
            droppable=True,  # absolute counter: later packets resupply it
        ),
    ]
    fst_entries = []
    for k in range(8):
        way_pc = program.pcs_with_comment(f"fst:waymap:{k}")[0]
        map_pc = program.pcs_with_comment(f"fst:maparp:{k}")[0]
        fst_entries.append(FSTEntry(way_pc, f"waymap:{k}"))
        fst_entries.append(FSTEntry(map_pc, f"maparp:{k}"))
        # The component's commit-side windows advance on retired branch
        # outcomes of the 16 difficult branches (pred_queue head H).
        rst_entries.append(
            RSTEntry(way_pc, SnoopKind.BRANCH_OUTCOME, f"waymap:{k}", droppable=True)
        )
        rst_entries.append(
            RSTEntry(map_pc, SnoopKind.BRANCH_OUTCOME, f"maparp:{k}", droppable=True)
        )
    # Visited-marking stores are observed so the commit-side index1_CAM
    # state can be reconciled (store value packets, §2.1).
    for k in range(8):
        store_pc = program.pcs_with_comment(f"waymap_store:{k}")[0]
        rst_entries.append(
            RSTEntry(store_pc, SnoopKind.STORE_VALUE, f"waymap_store:{k}", droppable=True)
        )

    metadata = {
        "grid_width": grid_width,
        "grid_height": grid_height,
        "waymap_stride": WAYMAP_STRIDE,
        "call_marker_pcs": [program.pcs_with_comment("snoop:worklist_base")[0]],
        "index_queue_entries": 8,
    }
    bitstream = make_bitstream(
        "astar-custom-bp",
        component=component_factory or "astar-custom-bp",
        rst_entries=rst_entries,
        fst_entries=fst_entries,
        metadata=metadata,
    )
    return Workload(
        name="astar",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"ncells": ncells, "start": start, "end_index": end_index},
    )


@register_workload("astar-alt")
def build_astar_alt_workload(
    table_entries: int = 16 * 1024,
    **kwargs,
) -> Workload:
    """astar with the table-mimicking *astar-alt* component (Section 5).

    Same kernel and grid; the configuration bitstream swaps in
    :class:`~repro.pfm.components.astar_alt.AstarAltPredictor` and snoops
    the additional retire-stream values its tables learn from: worklist
    loads (first-call seeding), worklist-append stores (authoritative
    output-worklist reconciliation), and the waymap/maparp load values
    (table corrections).
    """
    workload = build_astar_workload(component_factory="astar-alt", **kwargs)
    program = workload.program
    bits = workload.bitstream
    bits.name = "astar-alt"
    bits.metadata["table_entries"] = table_entries
    bits.rst_entries.append(
        RSTEntry(
            program.pcs_with_comment("worklist_load")[0],
            SnoopKind.DEST_VALUE,
            "worklist_load",
            droppable=True,
        )
    )
    for pc in program.pcs_with_comment("worklist_append"):
        # One append site per unrolled neighbour template (8 in all).
        bits.rst_entries.append(
            RSTEntry(pc, SnoopKind.STORE_VALUE, "worklist_append")
        )
    for k in range(8):
        bits.rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"maparp_load:{k}")[0],
                SnoopKind.DEST_VALUE,
                "maparp_load",
                droppable=True,
            )
        )
        bits.rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"waymap_load:{k}")[0],
                SnoopKind.DEST_VALUE,
                "waymap_load",
                droppable=True,
            )
        )
    workload.name = "astar-alt"
    return workload
