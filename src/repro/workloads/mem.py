"""Data memory image shared by the functional executor and the PFM fabric.

Memory is doubleword (8-byte) granular and lazily materialized: a named
region is just a reserved address range, and untouched words read as zero.
This keeps multi-megabyte benchmark arrays cheap — only words actually
written occupy storage — while still giving every access a real address
that the cache hierarchy maps to a 64-byte line.

The same image is read by Load-Agent-injected loads from custom components
(see :mod:`repro.pfm.load_agent`), which is how a component's run-ahead
loads observe the program's data structures exactly as the paper describes.
"""

from __future__ import annotations

WORD_BYTES = 8


class MemoryImage:
    """Lazily-materialized doubleword-addressable memory.

    Addresses are byte addresses and must be 8-byte aligned.  Regions are
    allocated from a bump pointer; region base addresses stand in for the
    program's heap/static layout.
    """

    def __init__(self, base: int = 0x1000_0000):
        self._words: dict[int, float] = {}
        self._bump = base
        self._regions: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    # allocation
    # ------------------------------------------------------------------ #

    def allocate(self, name: str, nwords: int, align: int = 64) -> int:
        """Reserve *nwords* doublewords under *name*; return the base address."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if nwords <= 0:
            raise ValueError("region must have at least one word")
        base = (self._bump + align - 1) // align * align
        self._bump = base + nwords * WORD_BYTES
        self._regions[name] = (base, nwords)
        return base

    def base(self, name: str) -> int:
        return self._regions[name][0]

    def size_words(self, name: str) -> int:
        return self._regions[name][1]

    def regions(self) -> dict[str, tuple[int, int]]:
        return dict(self._regions)

    def contains(self, name: str, addr: int) -> bool:
        base, nwords = self._regions[name]
        return base <= addr < base + nwords * WORD_BYTES

    # ------------------------------------------------------------------ #
    # access
    # ------------------------------------------------------------------ #

    def load(self, addr: int) -> float:
        """Read the doubleword at *addr* (0 if never written)."""
        if addr % WORD_BYTES:
            raise ValueError(f"misaligned load address {addr:#x}")
        return self._words.get(addr, 0)

    def store(self, addr: int, value: float) -> None:
        """Write *value* to the doubleword at *addr*."""
        if addr % WORD_BYTES:
            raise ValueError(f"misaligned store address {addr:#x}")
        self._words[addr] = value

    def load_index(self, name: str, index: int) -> float:
        """Read element *index* of region *name*."""
        return self.load(self.base(name) + index * WORD_BYTES)

    def store_index(self, name: str, index: int, value: float) -> None:
        """Write element *index* of region *name*."""
        self.store(self.base(name) + index * WORD_BYTES, value)

    def store_array(self, name: str, values) -> int:
        """Allocate (if needed) and fill region *name* with *values*."""
        values = list(values)
        if name not in self._regions:
            self.allocate(name, max(1, len(values)))
        base = self.base(name)
        for i, v in enumerate(values):
            self.store(base + i * WORD_BYTES, v)
        return base

    def touched_words(self) -> int:
        """Number of words actually materialized (for tests/diagnostics)."""
        return len(self._words)

    def iter_words(self):
        """Yield materialized ``(addr, value)`` pairs in address order.

        Deterministic iteration over the final memory state, used by the
        architectural digest (:mod:`repro.core.archstate`).
        """
        for addr in sorted(self._words):
            yield addr, self._words[addr]
