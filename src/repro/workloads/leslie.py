"""leslie3d's ROIs: several loop nests with delinquent loads (Section 4.3).

leslie has multiple regions of interest, each contributing significantly
to run time through load misses; the loads in each ROI sit two to four
loops deep.  FSMs were designed for three of the ROIs following the
bwaves strategy: one loop-nest counter group per ROI, each with its own
flat-iteration snoop and per-load coefficient vectors.

The kernel cycles through the three ROI sweeps (flux assembly, smoothing,
and an update sweep) repeatedly, as the solver's outer time loop does.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage

# ROI nest extents (inner dimensions; the outer sweep is unbounded).
R1_NJ, R1_NK = 24, 40  # flux: 2-deep
R2_NJ, R2_NK, R2_NL = 8, 16, 10  # smoothing: 3-deep
R3_NK = 512  # update: long 1-deep rows under the outer sweep


@register_workload("leslie")
def build_leslie_workload(
    outer_sweeps: int = 48,
    component_factory=None,
) -> Workload:
    memory = MemoryImage()
    r1_block = R1_NJ * R1_NK
    r2_block = R2_NJ * R2_NK * R2_NL
    r1_base = memory.allocate("flux", (outer_sweeps + 1) * r1_block)
    r1b_base = memory.allocate("flux_aux", (outer_sweeps + 1) * r1_block)
    r2_base = memory.allocate("smooth", (outer_sweeps + 1) * r2_block)
    r3_base = memory.allocate("update", (outer_sweeps + 1) * R3_NK * 8)
    out_base = memory.allocate("residual", (outer_sweeps + 1) * r2_block)

    b = ProgramBuilder()
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # leslie ROI")
    b.li("s1", r1_base, comment="snoop:base:r1a")
    b.li("s2", r1b_base, comment="snoop:base:r1b")
    b.li("s3", r2_base, comment="snoop:base:r2a")
    b.li("s4", r3_base, comment="snoop:base:r3a")
    b.li("s5", out_base)
    b.li("a7", outer_sweeps)
    b.li("a3", 0, comment="sweep t = 0")
    b.li("t5", 0, comment="r1 flat")
    b.li("t6", 0, comment="r2 flat")
    b.li("a4", 0, comment="r3 flat")

    b.label("time_loop")
    b.bge("a3", "a7", "done")

    # ROI 1: flux assembly, 2-deep (j, k); A and a transposed companion.
    b.li("s6", 0)
    b.label("r1_j")
    b.li("s7", 0)
    b.label("r1_k")
    b.slli("t1", "t5", 3)
    b.add("t1", "t1", "s1")
    b.fld("ft1", base="t1", offset=0, comment="r1 stream load")
    b.muli("t2", "s7", R1_NJ)
    b.add("t2", "t2", "s6")
    b.muli("t3", "a3", r1_block)
    b.add("t2", "t2", "t3")
    b.slli("t2", "t2", 3)
    b.add("t2", "t2", "s2")
    b.fld("ft2", base="t2", offset=0, comment="r1 transposed load")
    b.fadd("ft1", "ft1", "ft2")
    b.slli("t4", "t5", 3)
    b.add("t4", "t4", "s5")
    b.fsd("ft1", base="t4", offset=0)
    b.addi("t5", "t5", 1, comment="snoop:iter:r1")
    b.addi("s7", "s7", 1)
    b.slti("t0", "s7", R1_NK)
    b.bne("t0", "zero", "r1_k")
    b.addi("s6", "s6", 1)
    b.slti("t0", "s6", R1_NJ)
    b.bne("t0", "zero", "r1_j")

    # ROI 2: smoothing, 3-deep (j, k, l), contiguous stream.
    b.li("s6", 0)
    b.label("r2_j")
    b.li("s7", 0)
    b.label("r2_k")
    b.li("s8", 0)
    b.label("r2_l")
    b.slli("t1", "t6", 3)
    b.add("t1", "t1", "s3")
    b.fld("ft1", base="t1", offset=0, comment="r2 stream load")
    b.fmul("ft1", "ft1", "ft1")
    b.addi("t6", "t6", 1, comment="snoop:iter:r2")
    b.addi("s8", "s8", 1)
    b.slti("t0", "s8", R2_NL)
    b.bne("t0", "zero", "r2_l")
    b.addi("s7", "s7", 1)
    b.slti("t0", "s7", R2_NK)
    b.bne("t0", "zero", "r2_k")
    b.addi("s6", "s6", 1)
    b.slti("t0", "s6", R2_NJ)
    b.bne("t0", "zero", "r2_j")

    # ROI 3: update sweep, strided rows (stride 4 words defeats next-line
    # at distance).
    b.li("s7", 0)
    b.label("r3_k")
    b.slli("t1", "a4", 6, comment="stride 64B")
    b.add("t1", "t1", "s4")
    b.fld("ft1", base="t1", offset=0, comment="r3 strided load")
    b.fadd("ft1", "ft1", "ft1")
    b.addi("a4", "a4", 1, comment="snoop:iter:r3")
    b.addi("s7", "s7", 1)
    b.slti("t0", "s7", R3_NK)
    b.bne("t0", "zero", "r3_k")

    b.addi("a3", "a3", 1)
    b.j("time_loop")
    b.label("done")
    b.halt()

    program = b.build()

    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "leslie_roi",
        ),
    ]
    for tag in ("base:r1a", "base:r1b", "base:r2a", "base:r3a"):
        rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"snoop:{tag}")[0],
                SnoopKind.DEST_VALUE,
                tag,
            )
        )
    for tag in ("iter:r1", "iter:r2", "iter:r3"):
        rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"snoop:{tag}")[0],
                SnoopKind.DEST_VALUE,
                tag,
                droppable=True,
            )
        )

    metadata = {
        "groups": [
            {
                "extents": [1 << 30, R1_NJ, R1_NK],
                "sites": [
                    {"tag": "r1a", "coeffs": [R1_NJ * R1_NK * 8, R1_NK * 8, 8]},
                    {"tag": "r1b", "coeffs": [R1_NJ * R1_NK * 8, 8, R1_NJ * 8]},
                ],
            },
            {
                "extents": [1 << 30, R2_NJ, R2_NK, R2_NL],
                "sites": [
                    {
                        "tag": "r2a",
                        "coeffs": [
                            R2_NJ * R2_NK * R2_NL * 8,
                            R2_NK * R2_NL * 8,
                            R2_NL * 8,
                            8,
                        ],
                    },
                ],
            },
            {
                "extents": [1 << 30, R3_NK],
                "sites": [
                    {"tag": "r3a", "coeffs": [R3_NK * 64, 64]},
                ],
            },
        ],
        "initial_distance": 8,
    }
    bitstream = make_bitstream(
        "leslie-prefetcher",
        component=component_factory or "leslie-prefetcher",
        rst_entries=rst_entries,
        metadata=metadata,
    )
    return Workload(
        name="leslie",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"outer_sweeps": outer_sweeps},
    )
