"""milc's ROI: a cluster of libquantum-like strided streams (Section 4.3).

The SU(3) matrix loop reads the gauge-link arrays for the four lattice
directions; each direction's load is a simple stride (like libquantum),
so the custom prefetch engine is a four-stream variant of libquantum's
with the same adaptive distance control.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage

#: su3_matrix: 3x3 complex doubles = 144 bytes.
LINK_STRIDE = 144
DIRECTIONS = 4


@register_workload("milc")
def build_milc_workload(
    sites: int = 50_000,
    component_factory=None,
) -> Workload:
    """Per-site loop over the four direction links."""
    memory = MemoryImage()
    bases = [
        memory.allocate(f"links_{d}", sites * LINK_STRIDE // 8)
        for d in range(DIRECTIONS)
    ]
    out_base = memory.allocate("result", sites * 2)

    b = ProgramBuilder()
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # milc ROI")
    for d, base in enumerate(bases):
        b.li(f"s{d + 1}", base, comment=f"snoop:base:dir{d}")
    b.li("s8", out_base)
    b.li("s9", sites)
    b.li("s10", 0)

    b.label("loop")
    b.bge("s10", "s9", "done")
    b.muli("t1", "s10", LINK_STRIDE)
    b.fli("ft1", 1)
    for d in range(DIRECTIONS):
        b.add("t2", "t1", f"s{d + 1}")
        b.fld("ft2", base="t2", offset=0, comment=f"link load dir{d}")
        b.fld("ft3", base="t2", offset=64, comment=f"link load dir{d} row2")
        # One row of the su3 matrix-vector product: complex multiplies
        # and accumulates (the real loop body runs to hundreds of FLOPs,
        # which is what keeps the ROB from spanning many iterations).
        b.fmul("ft4", "ft2", "ft3", comment="re*re")
        b.fmul("ft5", "ft2", "ft1", comment="re*im")
        b.fmul("ft6", "ft3", "ft1", comment="im*re")
        b.fsub("ft4", "ft4", "ft5")
        b.fadd("ft5", "ft5", "ft6")
        b.fmul("ft4", "ft4", "ft4")
        b.fadd("ft5", "ft5", "ft4")
        b.fmul("ft6", "ft5", "ft2")
        b.fadd("ft6", "ft6", "ft3")
        b.fmul("ft7", "ft6", "ft5")
        b.fadd("ft7", "ft7", "ft4")
        b.fadd("ft1", "ft1", "ft7", comment="accumulate direction")
    b.slli("t3", "s10", 4)
    b.add("t3", "t3", "s8")
    b.fsd("ft1", base="t3", offset=0)
    b.addi("s10", "s10", 1, comment="snoop:iter:milc")
    b.j("loop")
    b.label("done")
    b.halt()

    program = b.build()

    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "milc_roi",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter:milc")[0],
            SnoopKind.DEST_VALUE,
            "iter:milc",
            droppable=True,
        ),
    ]
    for d in range(DIRECTIONS):
        rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"snoop:base:dir{d}")[0],
                SnoopKind.DEST_VALUE,
                f"base:dir{d}",
            )
        )

    metadata = {
        # Each direction's 144-byte link spans three cache lines; two
        # sub-sites per direction cover both loaded rows.
        "sites": [
            {
                "tag": f"dir{d}+{off}",
                "stride": LINK_STRIDE,
                "counter": "milc",
                "offset": off,
            }
            for d in range(DIRECTIONS)
            for off in (0, 64)
        ],
        "initial_distance": 8,
    }
    bitstream = make_bitstream(
        "milc-prefetcher",
        component=component_factory or "milc-prefetcher",
        rst_entries=rst_entries,
        metadata=metadata,
    )
    return Workload(
        name="milc",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"sites": sites},
    )
