"""Workloads: the paper's regions of interest as runnable kernels.

The paper evaluates SPEC 2006 benchmarks (astar, libquantum, bwaves, lbm,
milc, leslie) via SimPoint windows plus GAP BFS on SNAP graphs.  Those
binaries and inputs are not available here, so each region of interest is
re-implemented as a kernel against :mod:`repro.isa` and functionally
executed to produce the dynamic instruction stream the cycle model consumes
(substitution documented in DESIGN.md §3).

Each workload is packaged as a :class:`~repro.workloads.base.Workload`
bundle: the program, its initialized memory image, initial registers, and
the PFM snoop metadata (RST/FST program counters) that a real deployment
would derive from the binary shipped alongside the configuration bitstream.
"""

from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage, WORD_BYTES
from repro.workloads.trace import DynInst, FunctionalExecutor
from repro.workloads.tracecache import CompiledTrace, TraceCursor

__all__ = [
    "Workload",
    "MemoryImage",
    "WORD_BYTES",
    "DynInst",
    "FunctionalExecutor",
    "CompiledTrace",
    "TraceCursor",
]
