"""Dynamic-trace recording and replay.

Records a workload's correct-path dynamic stream into a compressed numpy
archive and replays it later — useful for sharing reproducible inputs,
regression-pinning a simulation, and separating (slow) functional
execution from timing experiments.

Replay is bit-identical to live execution for both baseline and PFM runs:
the replayer re-applies each store to a fresh
:class:`~repro.workloads.mem.MemoryImage` at the same per-instruction
granularity the functional executor would, so Load-Agent-injected
component loads observe exactly the same memory states.
"""

from __future__ import annotations

import numpy as np

from repro.isa.instructions import MNEMONIC_CLASS, OpClass
from repro.isa.registers import FP_REGISTERS, INT_REGISTERS
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage
from repro.workloads.trace import DynInst

_FORMAT_VERSION = 1
_MNEMONICS = tuple(sorted(MNEMONIC_CLASS))
_MNEMONIC_ID = {m: i for i, m in enumerate(_MNEMONICS)}
_REGISTERS = INT_REGISTERS + FP_REGISTERS
_REGISTER_ID = {r: i for i, r in enumerate(_REGISTERS)}
_NO_REG = -1
_NO_ADDR = -1


def record_trace(workload: Workload, max_instructions: int, path) -> int:
    """Run *workload* functionally and save its stream to *path* (.npz).

    Returns the number of instructions recorded.  The workload's initial
    memory contents that the stream *reads before writing* are captured
    implicitly: every load's value is part of the record.
    """
    executor = workload.executor()
    pcs, mnemonics, dsts, src0s, src1s = [], [], [], [], []
    addrs, store_values, dst_values, takens, next_pcs = [], [], [], [], []
    for dyn in executor.run(max_instructions):
        pcs.append(dyn.pc)
        mnemonics.append(_MNEMONIC_ID[dyn.mnemonic])
        dsts.append(_REGISTER_ID.get(dyn.dst, _NO_REG))
        src0s.append(_REGISTER_ID.get(dyn.srcs[0], _NO_REG) if dyn.srcs else _NO_REG)
        src1s.append(
            _REGISTER_ID.get(dyn.srcs[1], _NO_REG) if len(dyn.srcs) > 1 else _NO_REG
        )
        addrs.append(dyn.mem_addr if dyn.mem_addr is not None else _NO_ADDR)
        store_values.append(
            dyn.store_value if dyn.store_value is not None else np.nan
        )
        dst_values.append(dyn.dst_value if dyn.dst_value is not None else np.nan)
        takens.append(-1 if dyn.taken is None else int(dyn.taken))
        next_pcs.append(dyn.next_pc)

    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        name=np.bytes_(workload.name.encode()),
        pc=np.asarray(pcs, dtype=np.int64),
        mnemonic=np.asarray(mnemonics, dtype=np.int16),
        dst=np.asarray(dsts, dtype=np.int8),
        src0=np.asarray(src0s, dtype=np.int8),
        src1=np.asarray(src1s, dtype=np.int8),
        mem_addr=np.asarray(addrs, dtype=np.int64),
        store_value=np.asarray(store_values, dtype=np.float64),
        dst_value=np.asarray(dst_values, dtype=np.float64),
        taken=np.asarray(takens, dtype=np.int8),
        next_pc=np.asarray(next_pcs, dtype=np.int64),
    )
    return len(pcs)


class TraceReplayer:
    """Executor-compatible replayer over a recorded stream.

    Applies the recorded stores to *memory* as the stream advances, so a
    PFM component attached to the replay observes the same memory states
    the live run produced.
    """

    def __init__(self, arrays: dict, memory: MemoryImage):
        self._arrays = arrays
        self.memory = memory
        self.length = len(arrays["pc"])
        self.position = 0
        self.halted = False

    def run(self, max_instructions: int):
        arrays = self._arrays
        pc = arrays["pc"]
        mnemonic = arrays["mnemonic"]
        dst = arrays["dst"]
        src0 = arrays["src0"]
        src1 = arrays["src1"]
        mem_addr = arrays["mem_addr"]
        store_value = arrays["store_value"]
        dst_value = arrays["dst_value"]
        taken = arrays["taken"]
        next_pc = arrays["next_pc"]
        store = self.memory.store
        end = min(self.length, self.position + max_instructions)
        for i in range(self.position, end):
            mnem = _MNEMONICS[mnemonic[i]]
            srcs = ()
            if src0[i] != _NO_REG:
                srcs = (_REGISTERS[src0[i]],)
                if src1[i] != _NO_REG:
                    srcs = (_REGISTERS[src0[i]], _REGISTERS[src1[i]])
            address = int(mem_addr[i]) if mem_addr[i] != _NO_ADDR else None
            stored = None
            if not np.isnan(store_value[i]):
                stored = float(store_value[i])
                store(address, stored)
            dyn = DynInst(
                seq=i,
                pc=int(pc[i]),
                mnemonic=mnem,
                op_class=MNEMONIC_CLASS[mnem],
                dst=_REGISTERS[dst[i]] if dst[i] != _NO_REG else None,
                srcs=srcs,
                mem_addr=address,
                store_value=stored,
                dst_value=(
                    float(dst_value[i]) if not np.isnan(dst_value[i]) else None
                ),
                taken=bool(taken[i]) if taken[i] >= 0 else None,
                next_pc=int(next_pc[i]),
                comment="",
            )
            self.position = i + 1
            yield dyn
        if self.position >= self.length:
            self.halted = True


class ReplayWorkload(Workload):
    """A workload whose executor replays a recorded trace.

    Built from the *original* workload (for its program — the snoop
    tables key on PCs — and bitstream) plus the trace file.
    """

    def __init__(self, original: Workload, path):
        with np.load(path) as data:
            version = int(data["version"])
            if version != _FORMAT_VERSION:
                raise ValueError(
                    f"trace format v{version}; this build reads v{_FORMAT_VERSION}"
                )
            self._arrays = {key: data[key] for key in data.files}
        super().__init__(
            name=f"{original.name}-replay",
            program=original.program,
            memory=original.memory,
            initial_regs=dict(original.initial_regs),
            entry=original.entry,
            bitstream=original.bitstream,
            metadata=dict(original.metadata),
        )

    def executor(self):
        return TraceReplayer(self._arrays, self.memory)
