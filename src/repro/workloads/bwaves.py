"""bwaves' ROI: delinquent loads in a deep loop nest (Section 4.3).

The block-tridiagonal solver's innermost loads sit under five nested
loops, each load's address depending on a different subset of the
induction variables, so every load walks a *different* complex pattern.
The custom prefetcher is "a complex FSM that nevertheless surgically
follows the patterns": it replicates the loop-nest counters and computes
each load's next addresses from its coefficient vector.

The kernel here uses a four-deep nest (one outer sweep + a 3-deep block):
array A streams contiguously; array B walks 4 KB-apart planes (one access
per page per visit — hostile to VLDP's per-page delta histories).
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage

# Nest extents: outer sweep i is effectively unbounded within the window.
NJ, NK, NL = 16, 32, 6


@register_workload("bwaves")
def build_bwaves_workload(
    outer_sweeps: int = 64,
    component_factory=None,
) -> Workload:
    memory = MemoryImage()
    block = NJ * NK * NL  # flat iterations per outer sweep
    a_base = memory.allocate("A", outer_sweeps * block + block)
    b_base = memory.allocate("B", outer_sweeps * block + block)
    out_base = memory.allocate("OUT", outer_sweeps * block + block)

    b = ProgramBuilder()
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # bwaves ROI")
    b.li("s1", a_base, comment="snoop:base:A")
    b.li("s2", b_base, comment="snoop:base:B")
    b.li("s3", out_base)
    b.li("s4", outer_sweeps)
    b.li("s5", 0, comment="i = 0")
    b.li("s10", 0, comment="flat counter")

    b.label("i_loop")
    b.bge("s5", "s4", "done")
    b.li("s6", 0, comment="j = 0")
    b.label("j_loop")
    b.li("s7", 0, comment="k = 0")
    b.label("k_loop")
    b.li("s8", 0, comment="l = 0")
    b.label("l_loop")
    # A[(((i*NJ + j)*NK + k)*NL + l)]: contiguous stream == flat counter.
    b.slli("t1", "s10", 3)
    b.add("t1", "t1", "s1")
    b.fld("ft1", base="t1", offset=0, comment="delinquent A")
    # B[(((i*NL + l)*NK + k)*NJ + j)]: l-major plane walk, 4KB jumps.
    b.muli("t2", "s5", NL)
    b.add("t2", "t2", "s8")
    b.muli("t2", "t2", NK)
    b.add("t2", "t2", "s7")
    b.muli("t2", "t2", NJ)
    b.add("t2", "t2", "s6")
    b.slli("t2", "t2", 3)
    b.add("t2", "t2", "s2")
    b.fld("ft2", base="t2", offset=0, comment="delinquent B")
    b.fmul("ft1", "ft1", "ft2")
    b.slli("t3", "s10", 3)
    b.add("t3", "t3", "s3")
    b.fsd("ft1", base="t3", offset=0)
    b.addi("s10", "s10", 1, comment="snoop:iter:all  # flat counter")
    b.addi("s8", "s8", 1)
    b.slti("t5", "s8", NL)
    b.bne("t5", "zero", "l_loop", comment="l loop")
    b.addi("s7", "s7", 1)
    b.slti("t5", "s7", NK)
    b.bne("t5", "zero", "k_loop", comment="k loop")
    b.addi("s6", "s6", 1)
    b.slti("t5", "s6", NJ)
    b.bne("t5", "zero", "j_loop", comment="j loop")
    b.addi("s5", "s5", 1)
    b.j("i_loop")
    b.label("done")
    b.halt()

    program = b.build()

    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "bwaves_roi",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:base:A")[0],
            SnoopKind.DEST_VALUE,
            "base:A",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:base:B")[0],
            SnoopKind.DEST_VALUE,
            "base:B",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter:all")[0],
            SnoopKind.DEST_VALUE,
            "iter:all",
            droppable=True,
        ),
    ]

    metadata = {
        "groups": [
            {
                "extents": [1 << 30, NJ, NK, NL],
                "sites": [
                    # coeffs are bytes per (i, j, k, l) counter increment.
                    {"tag": "A", "coeffs": [NJ * NK * NL * 8, NK * NL * 8, NL * 8, 8]},
                    {"tag": "B", "coeffs": [NL * NK * NJ * 8, 8, NJ * 8, NK * NJ * 8]},
                ],
            }
        ],
        "initial_distance": 8,
    }
    bitstream = make_bitstream(
        "bwaves-prefetcher",
        component=component_factory or "bwaves-prefetcher",
        rst_entries=rst_entries,
        metadata=metadata,
    )
    return Workload(
        name="bwaves",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"extents": (outer_sweeps, NJ, NK, NL)},
    )
