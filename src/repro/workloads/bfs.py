"""GAP breadth-first search: the top-down step (Section 4.2, Figure 11).

``TDStep`` walks the current frontier; for each node U it loads
``offsets[U]``/``offsets[U+1]`` to find U's neighbours, then for each
neighbour V tests the *visited* property (GAP's parent array, negative =
unvisited).  Unvisited neighbours are claimed (parent store — the
loop-carried dependency) and appended to the next frontier.

Two hard branch populations defeat the baseline core: the neighbour-loop
trip count varies per node (loop predictor useless), and visited-ness is
data-dependent on the graph (TAGE useless); and the loads are
load-dependent loads that defeat conventional prefetchers.
"""

from __future__ import annotations

import functools

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import FSTEntry, RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.graphs import CSRGraph, powerlaw_graph, road_graph
from repro.workloads.mem import MemoryImage


def build_bfs_workload(
    graph: CSRGraph | None = None,
    graph_name: str = "roads",
    source: int = 0,
    component_factory=None,
    queue_entries: int = 64,
) -> Workload:
    """Assemble the BFS kernel over *graph* (default: the Roads graph)."""
    if graph is None:
        graph = road_graph() if graph_name == "roads" else powerlaw_graph()

    memory = MemoryImage()
    offsets_base = memory.store_array("offsets", graph.offsets)
    neighbors_base = memory.store_array(
        "neighbors", graph.neighbors if graph.neighbors else [0]
    )
    prop_base = memory.store_array("properties", [-1] * graph.num_nodes)
    frontier_a = memory.allocate("frontier_a", max(1, graph.num_nodes))
    frontier_b = memory.allocate("frontier_b", max(1, graph.num_nodes))

    memory.store_index("frontier_a", 0, source)
    memory.store_index("properties", source, source)  # parent[src] = src

    b = ProgramBuilder()

    # main: bases (snooped in the ROI preamble), then the level loop.
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # bfs_roi_begin")
    b.li("a5", frontier_a)
    b.li("a6", frontier_b)
    b.li("a4", 1, comment="frontier length")
    b.label("td_loop")
    b.beq("a4", "zero", "done", comment="level loop")
    b.mv("a0", "a5")
    b.mv("a1", "a4")
    b.mv("a2", "a6")
    b.jal("td_step")
    b.mv("a4", "a0")
    b.mv("t0", "a5", comment="swap frontiers")
    b.mv("a5", "a6")
    b.mv("a6", "t0")
    b.j("td_loop")
    b.label("done")
    b.halt()

    # TDStep(frontier=a0, len=a1, out=a2) -> new frontier length
    b.label("td_step")
    b.li("s4", offsets_base, comment="snoop:offsets_base")
    b.li("s5", neighbors_base, comment="snoop:neighbors_base")
    b.li("s6", prop_base, comment="snoop:prop_base")
    b.mv("s3", "a0", comment="snoop:frontier_base")
    b.mv("s7", "a1")
    b.mv("s8", "a2")
    b.li("s9", 0, comment="out length")
    b.li("s10", 0, comment="i = 0")

    b.label("outer")
    b.bge("s10", "s7", "outer_done", comment="outer loop branch")
    b.slli("t1", "s10", 3)
    b.add("t1", "t1", "s3")
    b.ld("s11", base="t1", offset=0, comment="frontier_load  # u = frontier[i]")
    b.slli("t1", "s11", 3)
    b.add("t1", "t1", "s4")
    b.ld("t2", base="t1", offset=0, comment="offsets_load  # a = offsets[u]")
    b.ld("t3", base="t1", offset=8, comment="offsets_load2  # b = offsets[u+1]")
    b.mv("t4", "t2", comment="j = a")

    b.label("inner_check")
    b.bge("t4", "t3", "inner_done", comment="fst:loop_exit")
    b.slli("t5", "t4", 3)
    b.add("t5", "t5", "s5")
    b.ld("t6", base="t5", offset=0, comment="neighbor_load  # v = neighbors[j]")
    b.addi("s1", "s1", 1, comment="edges_examined++ (GAP accounting)")
    b.slli("t5", "t6", 3)
    b.add("t5", "t5", "s6")
    b.ld("t0", base="t5", offset=0, comment="prop_load  # curr_val = parent[v]")
    b.mv("t2", "t0", comment="CAS expected value")
    b.bge("t0", "zero", "skip_visit", comment="fst:visited")
    # compare_and_swap(parent[v], curr_val, u) + local queue push_back
    b.ld("t0", base="t5", offset=0, comment="cas_reload")
    b.bne("t0", "t2", "skip_visit", comment="cas_fail (single-thread: never)")
    b.sd("s11", base="t5", offset=0, comment="visited_store  # parent[v] = u")
    b.slli("t0", "s9", 3)
    b.add("t0", "t0", "s8")
    b.sd("t6", base="t0", offset=0, comment="frontier_append")
    b.addi("s9", "s9", 1)
    b.label("skip_visit")
    b.addi("t4", "t4", 1, comment="snoop:inner_inc  # j++")
    b.j("inner_check")
    b.label("inner_done")
    b.addi("s10", "s10", 1, comment="snoop:iter_inc  # i++")
    b.j("outer")
    b.label("outer_done")
    b.mv("a0", "s9")
    b.jalr("ra")

    program = b.build()

    loop_exit_pc = program.pcs_with_comment("fst:loop_exit")[0]
    visited_pc = program.pcs_with_comment("fst:visited")[0]
    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "bfs_roi",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:offsets_base")[0],
            SnoopKind.DEST_VALUE,
            "offsets_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:neighbors_base")[0],
            SnoopKind.DEST_VALUE,
            "neighbors_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:prop_base")[0],
            SnoopKind.DEST_VALUE,
            "prop_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:frontier_base")[0],
            SnoopKind.DEST_VALUE,
            "frontier_base",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:inner_inc")[0],
            SnoopKind.DEST_VALUE,
            "inner_inc",
            droppable=True,
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter_inc")[0],
            SnoopKind.DEST_VALUE,
            "iter_inc",
            droppable=True,  # absolute counter: later packets resupply it
        ),
        # Commit-side bookkeeping: the neighbour-queue commit head and the
        # inference window reconcile against retired neighbour values,
        # branch outcomes, and visited stores — this larger observation
        # population is why bfs's RST fraction exceeds astar's (Table 3).
        RSTEntry(visited_pc, SnoopKind.BRANCH_OUTCOME, "visited", droppable=True),
        RSTEntry(loop_exit_pc, SnoopKind.BRANCH_OUTCOME, "loop_exit", droppable=True),
        RSTEntry(
            program.pcs_with_comment("neighbor_load")[0],
            SnoopKind.DEST_VALUE,
            "neighbor_ret",
            droppable=True,
        ),
        RSTEntry(
            program.pcs_with_comment("visited_store")[0],
            SnoopKind.STORE_VALUE,
            "visited_store",
            droppable=True,
        ),
    ]
    fst_entries = [
        FSTEntry(loop_exit_pc, "loop_exit"),
        FSTEntry(visited_pc, "visited"),
    ]

    metadata = {
        "queue_entries": queue_entries,
        "call_marker_pcs": [program.pcs_with_comment("snoop:frontier_base")[0]],
    }
    bitstream = make_bitstream(
        "bfs-custom",
        component=component_factory or "bfs-engine",
        rst_entries=rst_entries,
        fst_entries=fst_entries,
        metadata=metadata,
    )
    return Workload(
        name=f"bfs-{graph_name}",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={
            "graph_name": graph_name,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
            "source": source,
        },
    )


# ---------------------------------------------------------------------- #
# Registered graph-specific entry points.  The graphs are deterministic
# and read-only inputs (the kernel copies its mutable state into the
# workload's own memory image), so one cached instance serves every
# build — rebuilding the YouTube power-law graph dominates cold sweep
# start-up otherwise.
# ---------------------------------------------------------------------- #


@functools.lru_cache(maxsize=2)
def _roads_graph() -> CSRGraph:
    return road_graph()


@functools.lru_cache(maxsize=2)
def _youtube_graph() -> CSRGraph:
    return powerlaw_graph()


@register_workload("bfs-roads")
def build_bfs_roads_workload(**overrides) -> Workload:
    """BFS over the (cached) Roads road-network graph."""
    overrides.setdefault("graph_name", "roads")
    if "graph" not in overrides:
        overrides["graph"] = _roads_graph()
    return build_bfs_workload(**overrides)


@register_workload("bfs-youtube")
def build_bfs_youtube_workload(**overrides) -> Workload:
    """BFS over the (cached) YouTube power-law graph."""
    overrides.setdefault("graph_name", "youtube")
    if "graph" not in overrides:
        overrides["graph"] = _youtube_graph()
    return build_bfs_workload(**overrides)
