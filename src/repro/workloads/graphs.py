"""Synthetic input graphs in CSR form.

The paper uses roadNet-CA and com-Youtube from SNAP [Leskovec & Krevl].
Those datasets are not available offline, so we generate graphs with the
same qualitative structure (DESIGN.md §3):

* :func:`road_graph` — a 2D lattice with random edge deletions and a few
  long-range shortcuts: near-constant small degree and large diameter,
  like a road network.
* :func:`powerlaw_graph` — preferential attachment: heavy-tailed degree
  distribution and small diameter, like a social/web graph.

What the bfs use-case exercises — irregular frontier order, variable
per-node trip counts, and visited-flag reuse — depends only on these
structural properties, not on the exact datasets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class CSRGraph:
    """Compressed sparse row graph."""

    num_nodes: int
    offsets: list[int]  # len num_nodes + 1
    neighbors: list[int]

    @property
    def num_edges(self) -> int:
        return len(self.neighbors)

    def degree(self, u: int) -> int:
        return self.offsets[u + 1] - self.offsets[u]

    def neighbors_of(self, u: int) -> list[int]:
        return self.neighbors[self.offsets[u]:self.offsets[u + 1]]


def _to_csr(num_nodes: int, adjacency: list[set[int]]) -> CSRGraph:
    offsets = [0]
    neighbors: list[int] = []
    for u in range(num_nodes):
        neighbors.extend(sorted(adjacency[u]))
        offsets.append(len(neighbors))
    return CSRGraph(num_nodes=num_nodes, offsets=offsets, neighbors=neighbors)


def road_graph(
    side: int = 224,
    drop_fraction: float = 0.20,
    seed: int = 7,
    shuffle_fraction: float = 0.15,
) -> CSRGraph:
    """Road-network-like lattice: side*side nodes, degree mostly 2-4.

    A fraction of node ids is randomly relabelled: SNAP ids correlate only
    partially with geography, so a tunable share of neighbour/property
    accesses lose spatial locality — the load-dependent-load behaviour the
    bfs use-case depends on.
    """
    rng = random.Random(seed)
    n = side * side
    relabel = list(range(n))
    swaps = int(n * shuffle_fraction)
    for _ in range(swaps):
        i, j = rng.randrange(n), rng.randrange(n)
        relabel[i], relabel[j] = relabel[j], relabel[i]
    adjacency: list[set[int]] = [set() for _ in range(n)]

    def add(u: int, v: int) -> None:
        u, v = relabel[u], relabel[v]
        adjacency[u].add(v)
        adjacency[v].add(u)

    for y in range(side):
        for x in range(side):
            u = y * side + x
            if x + 1 < side and rng.random() >= drop_fraction:
                add(u, u + 1)
            if y + 1 < side and rng.random() >= drop_fraction:
                add(u, u + side)
    # A few long-range shortcuts (highways) keep the graph connected-ish
    # and give BFS an occasional jump, like real road networks.
    for _ in range(n // 200):
        add(rng.randrange(n), rng.randrange(n))
    return _to_csr(n, adjacency)


def powerlaw_graph(num_nodes: int = 20000, edges_per_node: int = 4, seed: int = 11) -> CSRGraph:
    """Preferential-attachment graph: heavy-tailed degrees (Youtube-like)."""
    rng = random.Random(seed)
    adjacency: list[set[int]] = [set() for _ in range(num_nodes)]
    # Repeated-endpoint trick: sampling from the flat endpoint list is
    # proportional to degree (Barabási–Albert).
    endpoints: list[int] = []
    seed_nodes = edges_per_node + 1
    for u in range(seed_nodes):
        for v in range(u + 1, seed_nodes):
            adjacency[u].add(v)
            adjacency[v].add(u)
            endpoints += [u, v]
    for u in range(seed_nodes, num_nodes):
        targets = set()
        while len(targets) < edges_per_node:
            targets.add(rng.choice(endpoints))
        for v in targets:
            adjacency[u].add(v)
            adjacency[v].add(u)
            endpoints += [u, v]
    return _to_csr(num_nodes, adjacency)


def reference_bfs(graph: CSRGraph, source: int) -> list[int]:
    """Parent array from a plain Python BFS (test oracle)."""
    parent = [-1] * graph.num_nodes
    parent[source] = source
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in graph.neighbors_of(u):
                if parent[v] < 0:
                    parent[v] = u
                    next_frontier.append(v)
        frontier = next_frontier
    return parent
