"""lbm's ROI: a cluster of delinquent streaming loads (Section 4.3).

The lattice-Boltzmann kernel reads several distribution-function arrays
per cell.  With the baseline prefetcher the cluster's loads see *uneven*
latency reduction, so the bottleneck shifts among them instead of
disappearing; the custom prefetcher pushes the whole cluster's prefetch
OPs *as a set* (or skips the set when IntQ-IS is full) — the MLP-aware
policy the paper calls out.
"""

from __future__ import annotations

from repro.isa.builder import ProgramBuilder
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.registry.components import make_bitstream
from repro.registry.workloads import register_workload
from repro.workloads.base import Workload
from repro.workloads.mem import MemoryImage

#: Per-cell stride: 10 distribution doubles = 80 bytes per array.
CELL_STRIDE = 80
CLUSTER = 5  # delinquent loads per iteration


@register_workload("lbm")
def build_lbm_workload(
    cells: int = 60_000,
    component_factory=None,
) -> Workload:
    """Stream-collide loop over *cells* lattice sites."""
    memory = MemoryImage()
    bases = []
    for c in range(CLUSTER):
        base = memory.allocate(f"dist_{c}", cells * CELL_STRIDE // 8)
        bases.append(base)
    out_base = memory.allocate("dist_out", cells * 2)

    b = ProgramBuilder()
    b.label("main")
    b.li("s0", 0, comment="snoop:roi_begin  # lbm ROI")
    for c, base in enumerate(bases):
        b.li(f"s{c + 1}", base, comment=f"snoop:base:f{c}")
    b.li("s8", out_base)
    b.li("s9", cells)
    b.li("s10", 0, comment="i = 0")
    b.fli("ft0", 0)

    b.label("loop")
    b.bge("s10", "s9", "done")
    b.muli("t1", "s10", CELL_STRIDE)
    b.fli("ft1", 0)
    b.fli("ft4", 1)
    for c in range(CLUSTER):
        b.add("t2", "t1", f"s{c + 1}")
        b.fld("ft2", base="t2", offset=0, comment=f"delinquent f{c}")
        # Per-distribution collision arithmetic (the real BGK operator is
        # ~10 FLOPs per distribution function).
        b.fmul("ft3", "ft2", "ft2", comment="u^2 term")
        b.fadd("ft5", "ft3", "ft4")
        b.fmul("ft5", "ft5", "ft2")
        b.fsub("ft5", "ft5", "ft3")
        b.fadd("ft1", "ft1", "ft5", comment="collide accumulate")
        b.fmul("ft4", "ft4", "ft5", comment="equilibrium chain")
    b.fmul("ft1", "ft1", "ft1", comment="collision operator")
    b.fadd("ft1", "ft1", "ft4")
    b.fmul("ft1", "ft1", "ft4")
    b.slli("t3", "s10", 4)
    b.add("t3", "t3", "s8")
    b.fsd("ft1", base="t3", offset=0, comment="store out cell")
    b.addi("s10", "s10", 1, comment="snoop:iter:lbm")
    b.j("loop")
    b.label("done")
    b.halt()

    program = b.build()

    rst_entries = [
        RSTEntry(
            program.pcs_with_comment("snoop:roi_begin")[0],
            SnoopKind.ROI_BEGIN,
            "lbm_roi",
        ),
        RSTEntry(
            program.pcs_with_comment("snoop:iter:lbm")[0],
            SnoopKind.DEST_VALUE,
            "iter:lbm",
            droppable=True,
        ),
    ]
    for c in range(CLUSTER):
        rst_entries.append(
            RSTEntry(
                program.pcs_with_comment(f"snoop:base:f{c}")[0],
                SnoopKind.DEST_VALUE,
                f"base:f{c}",
            )
        )

    metadata = {
        "sites": [
            {"tag": f"f{c}", "stride": CELL_STRIDE, "counter": "lbm"}
            for c in range(CLUSTER)
        ],
        "initial_distance": 8,
    }
    bitstream = make_bitstream(
        "lbm-prefetcher",
        component=component_factory or "lbm-prefetcher",
        rst_entries=rst_entries,
        metadata=metadata,
    )
    return Workload(
        name="lbm",
        program=program,
        memory=memory,
        bitstream=bitstream,
        metadata={"cells": cells, "cluster": CLUSTER},
    )
