"""Compiled-trace replay cache: execute each workload once, replay forever.

Every ``simulate()`` call is trace-driven: the functional executor
re-derives the workload's correct-path :class:`~repro.workloads.trace.DynInst`
stream, and the cycle engine assigns timing to it.  The stream, however,
depends only on the workload's *architectural* content (program, initial
memory, initial registers, entry point) — never on the core or PFM
configuration, because PFM components only hint (the paper's Sections
2.1–2.3 safety argument, pinned by ``SimStats.arch_digest``).  Sweep and
fault campaigns therefore replay the exact same stream dozens of times
per workload.

This module compiles the stream once into an immutable
:class:`CompiledTrace` — parallel per-instruction columns (pcs, op-class
codes, memory addresses, values, taken flags) over interned mnemonic /
register / source-tuple tables — and replays it through a zero-copy
:class:`TraceCursor`: the cursor indexes the shared columns directly,
re-applies each store to the live memory image (so Load-Agent-injected
loads observe exactly the state they would under functional execution)
and rebuilds the architectural register file as it advances, so the
:class:`~repro.core.archstate.ArchDigest` of a replayed run is
byte-identical to an executed one.

Cache identity is a *content* digest of the built workload (program text,
labels, initial memory words, initial registers, entry), not of the
builder arguments — a builder code change that alters the kernel
invalidates the cache automatically, and distinct override spellings that
build identical workloads share one compilation.  Traces persist under
``<cache-dir>/traces/`` (``$REPRO_CACHE_DIR`` or ``.repro-cache``) and
are memoized in-process so every SweepPool worker compiles each workload
at most once.  Corrupt, stale, or version-skewed files are silently
recompiled, never trusted.

Escape hatch: ``REPRO_NO_TRACE_CACHE=1`` disables the subsystem entirely
(every run functionally executes, the pre-cache behavior).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.isa.instructions import OpClass
from repro.workloads.trace import DynInst

if TYPE_CHECKING:
    from repro.workloads.base import Workload

#: Environment override for the on-disk cache location (shared with the
#: sweep engine's baseline cache; traces live in a ``traces/`` subdir).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default on-disk cache directory (relative to the invocation cwd).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Set to disable compiled-trace replay entirely (functional execution).
NO_TRACE_CACHE_ENV = "REPRO_NO_TRACE_CACHE"

#: Campaign windows reuse one compilation: requests at or above
#: :data:`FLOOR_THRESHOLD` compile to at least ``$REPRO_TRACE_FLOOR``
#: (default 40k, the CLI default window) so one cold compile serves every
#: later window of a sweep.  Tiny test windows compile exactly.
TRACE_FLOOR_ENV = "REPRO_TRACE_FLOOR"
DEFAULT_TRACE_FLOOR = 40_000
FLOOR_THRESHOLD = 10_000

#: Windows beyond this never compile (the columns would not fit memory
#: comfortably); such runs fall back to streaming functional execution.
TRACE_MAX_ENV = "REPRO_TRACE_MAX"
DEFAULT_TRACE_MAX = 2_000_000

#: Payload format version; bump on any layout change to shed stale files.
TRACE_VERSION = 1

_OPCLASSES: tuple[OpClass, ...] = tuple(OpClass)
_OPCODE_OF: dict[OpClass, int] = {op: i for i, op in enumerate(_OPCLASSES)}

#: In-process memoization: content key -> compiled trace.  Shared by all
#: simulate() calls in this process (SweepPool points, baseline cache
#: fills, benchmarks, and every worker thread of the resident service
#: daemon), so each process compiles a workload at most once.
_MEMO: dict[str, "CompiledTrace"] = {}

#: Serializes the compile-or-load slow path.  The service daemon runs
#: jobs on event-loop-owned worker threads over this one shared memo;
#: without the lock two concurrent first requests for the same workload
#: would both pay the functional-execution compile.  Memo *hits* stay
#: lock-free (single dict read under the GIL).
_COMPILE_LOCK = threading.Lock()

#: (registry name, canonical-overrides digest) -> content key, so
#: repeated builds of one sweep point hash the workload content once.
_KEY_MEMO: dict[tuple[str, str], str] = {}

#: Subsystem accounting, exposed for tests and the ``cache`` CLI.
STATS = {
    "compiles": 0,
    "memo_hits": 0,
    "disk_hits": 0,
    "replays": 0,
    "recoveries": 0,
}


def canonical_bytes(obj: Any) -> bytes:
    """Deterministic byte encoding of a declarative spec.

    JSON with sorted keys covers plain values; dataclasses flatten to
    dicts; anything else (e.g. a prebuilt graph passed as a builder
    override) falls back to a pickle digest — deterministic for the
    list/dataclass payloads the workload builders accept.
    """

    def _default(value: Any) -> Any:
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            return dataclasses.asdict(value)
        return {
            "__pickle_sha256__": hashlib.sha256(
                pickle.dumps(value, protocol=4)
            ).hexdigest()
        }

    return json.dumps(obj, sort_keys=True, default=_default).encode()


# --------------------------------------------------------------------- #
# cache identity
# --------------------------------------------------------------------- #


def workload_content_key(workload: "Workload") -> str:
    """Content digest of everything that determines the dynamic stream.

    Program instructions (with comments — they ride into the trace),
    label map, entry point, initial registers, and the initial memory
    words.  Bitstream and core/PFM configuration are deliberately
    excluded: hints never change the correct-path stream, so one trace
    serves baseline, PFM, and fault-injected runs alike.
    """
    h = hashlib.sha256()
    program = workload.program
    h.update(
        f"v{TRACE_VERSION};base={program.base_pc};entry={workload.entry}\n".encode()
    )
    lines = [
        f"{i.pc};{i.mnemonic};{i.dst};{i.srcs};{i.imm};{i.target};{i.comment}"
        for i in program.instructions
    ]
    h.update("\n".join(lines).encode())
    h.update(b"\n=labels=\n")
    for name in sorted(program.labels):
        h.update(f"{name}={program.labels[name]}\n".encode())
    h.update(b"=regs=\n")
    regs = workload.initial_regs
    for name in sorted(regs):
        h.update(f"{name}={regs[name]!r}\n".encode())
    h.update(b"=mem=\n")
    h.update(
        "\n".join(
            f"{addr}={value!r}" for addr, value in workload.memory.iter_words()
        ).encode()
    )
    return h.hexdigest()[:20]


def annotate(workload: "Workload", name: str, overrides: dict) -> None:
    """Stamp a registry-built workload with its trace-cache identity.

    Called by :func:`repro.registry.workloads.build_workload`.  The
    content key is memoized per ``(name, canonical-overrides)`` so sweep
    campaigns that rebuild the same point repeatedly hash the workload
    content only once per process.
    """
    workload.build_ref = (name, dict(overrides))
    try:
        overrides_digest = hashlib.sha256(
            canonical_bytes({"name": name, "overrides": overrides})
        ).hexdigest()
    except Exception:
        # Unpicklable override: still cacheable, just never memoized.
        workload.trace_key = workload_content_key(workload)
        return
    memo_key = (name, overrides_digest)
    key = _KEY_MEMO.get(memo_key)
    if key is None:
        key = workload_content_key(workload)
        _KEY_MEMO[memo_key] = key
    workload.trace_key = key


# --------------------------------------------------------------------- #
# the compiled form
# --------------------------------------------------------------------- #


class CompiledTrace:
    """Immutable compiled correct-path stream of one workload.

    Parallel per-instruction columns plus interned tables.  ``length`` is
    the number of compiled instructions; ``halted`` records whether the
    program halted at that point (a halted trace serves *any* window).
    """

    __slots__ = (
        "name", "key", "length", "halted",
        "pcs", "next_pcs", "op_codes", "mnemonic_idx", "dst_idx",
        "srcs_idx", "comment_idx", "mem_addrs", "store_values",
        "dst_values", "taken",
        "mnemonics", "registers", "src_tuples", "comments",
        "_cols", "_nd",
    )

    def __init__(self, name: str, key: str) -> None:
        self.name = name
        self.key = key
        self.length = 0
        self.halted = False
        self.pcs: list[int] = []
        self.next_pcs: list[int] = []
        self.op_codes: list[int] = []
        self.mnemonic_idx: list[int] = []
        self.dst_idx: list[int] = []
        self.srcs_idx: list[int] = []
        self.comment_idx: list[int] = []
        self.mem_addrs: list[int | None] = []
        self.store_values: list[float | None] = []
        self.dst_values: list[float | None] = []
        self.taken: list[bool | None] = []
        self.mnemonics: list[str] = []
        self.registers: list[str] = []
        self.src_tuples: list[tuple[str, ...]] = []
        self.comments: list[str] = []
        self._cols: tuple | None = None
        self._nd: dict[str, Any] | None = None

    # ------------------------------------------------------------------ #

    @classmethod
    def compile(
        cls, workload: "Workload", length: int, key: str, name: str
    ) -> "CompiledTrace":
        """Functionally execute a *fresh* workload into the compiled form.

        The workload's memory image is consumed (mutated to the
        ``length``-instruction state); callers must pass a dedicated
        fresh build, never one that will be simulated afterwards.
        """
        trace = cls(name, key)
        mn_table: dict[str, int] = {}
        reg_table: dict[str, int] = {}
        srcs_table: dict[tuple[str, ...], int] = {}
        cm_table: dict[str, int] = {}

        def intern(table: dict, value: Any) -> int:
            idx = table.get(value)
            if idx is None:
                idx = len(table)
                table[value] = idx
            return idx

        executor = workload.executor()
        pcs = trace.pcs
        next_pcs = trace.next_pcs
        op_codes = trace.op_codes
        mnemonic_idx = trace.mnemonic_idx
        dst_idx = trace.dst_idx
        srcs_idx = trace.srcs_idx
        comment_idx = trace.comment_idx
        mem_addrs = trace.mem_addrs
        store_values = trace.store_values
        dst_values = trace.dst_values
        taken = trace.taken
        opcode_of = _OPCODE_OF
        for dyn in executor.run(length):
            pcs.append(dyn.pc)
            next_pcs.append(dyn.next_pc)
            op_codes.append(opcode_of[dyn.op_class])
            mnemonic_idx.append(intern(mn_table, dyn.mnemonic))
            dst_idx.append(-1 if dyn.dst is None else intern(reg_table, dyn.dst))
            srcs_idx.append(intern(srcs_table, dyn.srcs))
            comment_idx.append(intern(cm_table, dyn.comment))
            mem_addrs.append(dyn.mem_addr)
            store_values.append(dyn.store_value)
            dst_values.append(dyn.dst_value)
            taken.append(dyn.taken)

        trace.length = len(pcs)
        trace.halted = executor.halted
        trace.mnemonics = list(mn_table)
        trace.registers = list(reg_table)
        trace.src_tuples = list(srcs_table)
        trace.comments = list(cm_table)
        return trace

    # ------------------------------------------------------------------ #

    def check_columns(self) -> None:
        """Validate column lengths against the header count.

        ``from_payload`` performs this check on every disk load, but a
        trace truncated *after* decode (a torn in-memory copy, a buggy
        builder mutating columns, or a hand-constructed trace in tests)
        used to replay silently with short columns and crash — or worse,
        wrap — deep inside the cursor.  Every replay entry point calls
        this instead, raising the same corruption error as the loader.
        """
        columns = (
            self.pcs, self.next_pcs, self.op_codes, self.mnemonic_idx,
            self.dst_idx, self.srcs_idx, self.comment_idx,
            self.mem_addrs, self.store_values, self.dst_values,
            self.taken,
        )
        if any(len(col) != self.length for col in columns):
            raise ValueError("trace column lengths disagree with header")

    def columns(self) -> tuple:
        """Decoded per-instruction columns (shared, built once).

        Interned index columns expand to columns of shared object
        references so the replay loop pays a single list index per field.
        """
        cols = self._cols
        if cols is None:
            self.check_columns()
            mnemonics = self.mnemonics
            registers = self.registers
            src_tuples = self.src_tuples
            comments = self.comments
            opclasses = _OPCLASSES
            cols = (
                self.pcs,
                [mnemonics[i] for i in self.mnemonic_idx],
                [opclasses[c] for c in self.op_codes],
                [None if i < 0 else registers[i] for i in self.dst_idx],
                [src_tuples[i] for i in self.srcs_idx],
                self.mem_addrs,
                self.store_values,
                self.dst_values,
                self.taken,
                self.next_pcs,
                [comments[i] for i in self.comment_idx],
            )
            self._cols = cols
        return cols

    def cursor(
        self, memory: Any, initial_regs: dict[str, float] | None
    ) -> "TraceCursor":
        """Zero-copy replay cursor over this trace for one simulation."""
        self.check_columns()
        STATS["replays"] += 1
        return TraceCursor(self, memory, initial_regs)

    def ndarrays(self) -> "dict[str, Any] | None":
        """Numeric columns as NumPy arrays (shared, built once).

        Feeds the vectorized backend's per-trace profile: op codes,
        dst-register indices, taken flags, next-pcs, and the iline column
        as dense integer arrays; store addresses/values as float arrays
        with NaN holes (``mem_addrs``/``store_values`` are None except on
        memory ops, and stores never carry NaN payloads in practice —
        the backend only consumes these where the op-code mask says a
        store exists, so the NaN encoding is a representation detail).
        Returns None when numpy is unavailable.
        """
        if self._nd is not None:
            return self._nd
        # Validate before the availability gate: a torn trace is corrupt
        # whether or not numpy is importable.
        self.check_columns()
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy baked into the image
            return None
        self._nd = {
            "op_codes": np.asarray(self.op_codes, dtype=np.int8),
            "dst_idx": np.asarray(self.dst_idx, dtype=np.int32),
            "srcs_idx": np.asarray(self.srcs_idx, dtype=np.int32),
            "pcs": np.asarray(self.pcs, dtype=np.int64),
            "next_pcs": np.asarray(self.next_pcs, dtype=np.int64),
            "taken": np.asarray(
                [bool(t) for t in self.taken], dtype=np.bool_
            ),
            "mem_addrs": np.asarray(
                [-1 if a is None else a for a in self.mem_addrs],
                dtype=np.int64,
            ),
        }
        return self._nd

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_payload(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "name": self.name,
            "key": self.key,
            "length": self.length,
            "halted": self.halted,
            "pcs": self.pcs,
            "next_pcs": self.next_pcs,
            "op_codes": self.op_codes,
            "mnemonic_idx": self.mnemonic_idx,
            "dst_idx": self.dst_idx,
            "srcs_idx": self.srcs_idx,
            "comment_idx": self.comment_idx,
            "mem_addrs": self.mem_addrs,
            "store_values": self.store_values,
            "dst_values": self.dst_values,
            "taken": self.taken,
            "mnemonics": self.mnemonics,
            "registers": self.registers,
            "src_tuples": self.src_tuples,
            "comments": self.comments,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CompiledTrace":
        if payload["version"] != TRACE_VERSION:
            raise ValueError(f"trace version {payload['version']} != {TRACE_VERSION}")
        trace = cls(payload["name"], payload["key"])
        trace.length = payload["length"]
        trace.halted = payload["halted"]
        for field in (
            "pcs", "next_pcs", "op_codes", "mnemonic_idx", "dst_idx",
            "srcs_idx", "comment_idx", "mem_addrs", "store_values",
            "dst_values", "taken", "mnemonics", "registers", "src_tuples",
            "comments",
        ):
            setattr(trace, field, payload[field])
        columns = (
            trace.pcs, trace.next_pcs, trace.op_codes, trace.mnemonic_idx,
            trace.dst_idx, trace.srcs_idx, trace.comment_idx,
            trace.mem_addrs, trace.store_values, trace.dst_values,
            trace.taken,
        )
        if any(len(col) != trace.length for col in columns):
            raise ValueError("trace column lengths disagree with header")
        return trace


class TraceCursor:
    """Replays a :class:`CompiledTrace` as a functional-executor stand-in.

    Quacks like :class:`~repro.workloads.trace.FunctionalExecutor` for
    the cycle engine: ``run(limit)`` yields :class:`DynInst` records in
    program order, ``regs`` accumulates the architectural register file,
    and ``memory`` is the live image, updated store-by-store exactly when
    functional execution would have updated it (Load-Agent-injected loads
    from custom components read it mid-run).
    """

    __slots__ = ("trace", "memory", "regs", "halted")

    def __init__(
        self,
        trace: CompiledTrace,
        memory: Any,
        initial_regs: dict[str, float] | None,
    ) -> None:
        self.trace = trace
        self.memory = memory
        self.regs: dict[str, float] = dict(initial_regs or {})
        self.halted = False

    def run(self, max_instructions: int) -> Iterator[DynInst]:
        """Yield up to *max_instructions* replayed dynamic instructions."""
        trace = self.trace
        n = trace.length if max_instructions > trace.length else max_instructions
        (
            pcs, mnemonics, ops, dsts, srcs, addrs, svals, dvals, takens,
            npcs, comments,
        ) = trace.columns()
        regs = self.regs
        store = self.memory.store
        make = DynInst
        store_op = OpClass.STORE
        for i in range(n):
            op = ops[i]
            dst = dsts[i]
            addr = addrs[i]
            sval = svals[i]
            dval = dvals[i]
            dyn = make(
                i, pcs[i], mnemonics[i], op, dst, srcs[i], addr, sval,
                dval, takens[i], npcs[i], comments[i],
            )
            if op is store_op:
                store(addr, sval)
            if dst is not None and dst != "zero":
                regs[dst] = dval
            yield dyn
        if n == trace.length and trace.halted:
            self.halted = True


# --------------------------------------------------------------------- #
# the store
# --------------------------------------------------------------------- #


def enabled() -> bool:
    return not os.environ.get(NO_TRACE_CACHE_ENV)


def trace_dir(base: str | os.PathLike | None = None) -> Path:
    """The on-disk trace directory under the shared cache layout."""
    if base is None:
        base = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    return Path(base) / "traces"


def _trace_path(name: str, key: str) -> Path:
    return trace_dir() / f"{name}--{key}.trace.pkl"


def _compile_length(need: int) -> int:
    floor = int(os.environ.get(TRACE_FLOOR_ENV, DEFAULT_TRACE_FLOOR))
    return max(need, floor) if need >= FLOOR_THRESHOLD else need


def _load_trace(path: Path, key: str) -> CompiledTrace | None:
    """Load and validate one trace file; None (never a raise) on any defect."""
    try:
        payload = pickle.loads(path.read_bytes())
        trace = CompiledTrace.from_payload(payload)
    except FileNotFoundError:
        return None
    except Exception:
        # Torn write, disk corruption, stale format: recompile below.
        STATS["recoveries"] += 1
        return None
    if trace.key != key:
        return None
    return trace


def _persist(path: Path, trace: CompiledTrace) -> None:
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_bytes(pickle.dumps(trace.to_payload(), protocol=4))
        tmp.replace(path)  # atomic: concurrent workers agree on content
    except OSError:
        pass  # read-only cache dir: stay in-memory only


def _rebuild(workload: "Workload") -> "Workload | None":
    ref = workload.build_ref
    if ref is None:
        return None
    # Imported lazily: the registry autoloads workload modules, which
    # import this module's decorators' neighbors.
    from repro.registry.workloads import WORKLOADS

    try:
        return WORKLOADS.get(ref[0])(**ref[1])
    except Exception:
        return None


def get_trace(workload: "Workload", window: int) -> CompiledTrace | None:
    """Compiled trace covering *window* instructions, or None.

    None means "functionally execute": the cache is disabled, the
    workload was not registry-built (no identity), the window is beyond
    the compile ceiling, or a fresh rebuild failed verification.
    """
    key = getattr(workload, "trace_key", None)
    if key is None or window <= 0 or not enabled():
        return None
    if window > int(os.environ.get(TRACE_MAX_ENV, DEFAULT_TRACE_MAX)):
        return None

    memo = _MEMO.get(key)
    if memo is not None and (memo.halted or memo.length >= window):
        STATS["memo_hits"] += 1
        return memo

    with _COMPILE_LOCK:
        # Re-check under the lock: a sibling worker thread may have
        # compiled (or disk-loaded) this workload while we waited.
        memo = _MEMO.get(key)
        if memo is not None and (memo.halted or memo.length >= window):
            STATS["memo_hits"] += 1
            return memo

        ref = workload.build_ref
        name = ref[0] if ref is not None else workload.name
        path = _trace_path(name, key)
        disk = _load_trace(path, key)
        if disk is not None and (disk.halted or disk.length >= window):
            STATS["disk_hits"] += 1
            _MEMO[key] = disk
            return disk

        # Compile (or extend a too-short trace to the new high-water mark).
        have = max(
            memo.length if memo is not None else 0,
            disk.length if disk is not None else 0,
        )
        fresh = _rebuild(workload)
        if fresh is None:
            return None
        if workload_content_key(fresh) != key:
            # Nondeterministic builder: replay would diverge; refuse to cache.
            return None
        trace = CompiledTrace.compile(
            fresh, _compile_length(max(window, have)), key=key, name=name
        )
        STATS["compiles"] += 1
        _MEMO[key] = trace
        _persist(path, trace)
        return trace


#: Callbacks fired by :func:`reset_memory_cache` so sibling caches keyed
#: on compiled traces (the numpy backend's per-trace replay profiles)
#: flush in lockstep with the trace memo.  Content-addressed caches stay
#: *correct* without this; the hook exists for benchmark/test hygiene.
_RESET_HOOKS: list = []


def register_reset_hook(hook) -> None:
    """Register *hook* () -> None to run on every reset_memory_cache()."""
    if hook not in _RESET_HOOKS:
        _RESET_HOOKS.append(hook)


def reset_memory_cache() -> None:
    """Drop all in-process state (tests and cold-path benchmarks)."""
    _MEMO.clear()
    _KEY_MEMO.clear()
    for counter in STATS:
        STATS[counter] = 0
    for hook in _RESET_HOOKS:
        hook()


# --------------------------------------------------------------------- #
# inspection (the ``cache`` CLI subcommand)
# --------------------------------------------------------------------- #


def trace_files(base: str | os.PathLike | None = None) -> list[dict]:
    """Metadata of every on-disk trace, sorted by filename.

    Each entry: path, size_bytes, valid, and (when loadable) workload
    name, key, length, halted.
    """
    directory = trace_dir(base)
    entries: list[dict] = []
    if not directory.is_dir():
        return entries
    for path in sorted(directory.glob("*.trace.pkl")):
        info: dict[str, Any] = {
            "path": path,
            "size_bytes": path.stat().st_size,
            "valid": False,
        }
        try:
            trace = CompiledTrace.from_payload(pickle.loads(path.read_bytes()))
        except Exception:
            entries.append(info)
            continue
        info.update(
            valid=True,
            workload=trace.name,
            key=trace.key,
            length=trace.length,
            halted=trace.halted,
        )
        entries.append(info)
    return entries


def clear_traces(base: str | os.PathLike | None = None) -> tuple[int, int]:
    """Delete every on-disk trace; return (files removed, bytes freed)."""
    removed = 0
    freed = 0
    directory = trace_dir(base)
    if not directory.is_dir():
        return removed, freed
    for pattern in ("*.trace.pkl", "*.tmp"):
        for path in directory.glob(pattern):
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            freed += size
    return removed, freed
