"""Builder DSL for assembling kernel programs.

Workload kernels (the paper's regions of interest) are written against this
builder.  Example::

    b = ProgramBuilder()
    b.label("loop")
    b.ld("t0", base="a0", offset=0, comment="index=bound1p[i]")
    b.addi("a0", "a0", 8)
    b.bne("t0", "zero", "loop")
    b.halt()
    program = b.build()

Every emit method accepts a ``comment`` keyword; comments act as searchable
annotations that the PFM configuration layer uses to locate snoop PCs
(standing in for the symbol/debug information a real toolchain would ship
with the configuration bitstream).
"""

from __future__ import annotations

from repro.isa.instructions import Instruction
from repro.isa.program import INSTRUCTION_BYTES, Program


class ProgramBuilder:
    """Incrementally assemble a :class:`~repro.isa.program.Program`."""

    def __init__(self, base_pc: int = 0x1000):
        self._base_pc = base_pc
        self._instructions: list[Instruction] = []
        self._labels: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #

    @property
    def next_pc(self) -> int:
        return self._base_pc + len(self._instructions) * INSTRUCTION_BYTES

    def label(self, name: str) -> str:
        """Attach *name* to the next emitted instruction's PC."""
        if name in self._labels:
            raise ValueError(f"duplicate label {name!r}")
        self._labels[name] = self.next_pc
        return name

    def _emit(self, inst: Instruction) -> int:
        pc = self.next_pc
        self._instructions.append(inst.with_pc(pc))
        return pc

    def build(self) -> Program:
        return Program(
            instructions=list(self._instructions),
            labels=dict(self._labels),
            base_pc=self._base_pc,
        )

    # ------------------------------------------------------------------ #
    # integer ALU
    # ------------------------------------------------------------------ #

    def _rrr(self, mnemonic: str, dst: str, s1: str, s2: str, comment: str) -> int:
        return self._emit(
            Instruction(mnemonic, dst=dst, srcs=(s1, s2), comment=comment)
        )

    def _rri(self, mnemonic: str, dst: str, s1: str, imm: int, comment: str) -> int:
        return self._emit(
            Instruction(mnemonic, dst=dst, srcs=(s1,), imm=imm, comment=comment)
        )

    def add(self, dst, s1, s2, comment=""):
        return self._rrr("add", dst, s1, s2, comment)

    def sub(self, dst, s1, s2, comment=""):
        return self._rrr("sub", dst, s1, s2, comment)

    def and_(self, dst, s1, s2, comment=""):
        return self._rrr("and_", dst, s1, s2, comment)

    def or_(self, dst, s1, s2, comment=""):
        return self._rrr("or_", dst, s1, s2, comment)

    def xor(self, dst, s1, s2, comment=""):
        return self._rrr("xor", dst, s1, s2, comment)

    def sll(self, dst, s1, s2, comment=""):
        return self._rrr("sll", dst, s1, s2, comment)

    def srl(self, dst, s1, s2, comment=""):
        return self._rrr("srl", dst, s1, s2, comment)

    def slt(self, dst, s1, s2, comment=""):
        return self._rrr("slt", dst, s1, s2, comment)

    def mul(self, dst, s1, s2, comment=""):
        return self._rrr("mul", dst, s1, s2, comment)

    def div(self, dst, s1, s2, comment=""):
        return self._rrr("div", dst, s1, s2, comment)

    def rem(self, dst, s1, s2, comment=""):
        return self._rrr("rem", dst, s1, s2, comment)

    def addi(self, dst, s1, imm, comment=""):
        return self._rri("addi", dst, s1, imm, comment)

    def andi(self, dst, s1, imm, comment=""):
        return self._rri("andi", dst, s1, imm, comment)

    def ori(self, dst, s1, imm, comment=""):
        return self._rri("ori", dst, s1, imm, comment)

    def xori(self, dst, s1, imm, comment=""):
        return self._rri("xori", dst, s1, imm, comment)

    def slli(self, dst, s1, imm, comment=""):
        return self._rri("slli", dst, s1, imm, comment)

    def srli(self, dst, s1, imm, comment=""):
        return self._rri("srli", dst, s1, imm, comment)

    def slti(self, dst, s1, imm, comment=""):
        return self._rri("slti", dst, s1, imm, comment)

    def muli(self, dst, s1, imm, comment=""):
        return self._rri("muli", dst, s1, imm, comment)

    def li(self, dst, imm, comment=""):
        return self._emit(Instruction("li", dst=dst, imm=imm, comment=comment))

    def mv(self, dst, src, comment=""):
        return self._emit(Instruction("mv", dst=dst, srcs=(src,), comment=comment))

    # ------------------------------------------------------------------ #
    # floating point
    # ------------------------------------------------------------------ #

    def fadd(self, dst, s1, s2, comment=""):
        return self._rrr("fadd", dst, s1, s2, comment)

    def fsub(self, dst, s1, s2, comment=""):
        return self._rrr("fsub", dst, s1, s2, comment)

    def fmul(self, dst, s1, s2, comment=""):
        return self._rrr("fmul", dst, s1, s2, comment)

    def fdiv(self, dst, s1, s2, comment=""):
        return self._rrr("fdiv", dst, s1, s2, comment)

    def fmv(self, dst, src, comment=""):
        return self._emit(Instruction("fmv", dst=dst, srcs=(src,), comment=comment))

    def fli(self, dst, imm, comment=""):
        return self._emit(Instruction("fli", dst=dst, imm=imm, comment=comment))

    def fcvt(self, dst, src, comment=""):
        return self._emit(Instruction("fcvt", dst=dst, srcs=(src,), comment=comment))

    # ------------------------------------------------------------------ #
    # memory (doubleword)
    # ------------------------------------------------------------------ #

    def ld(self, dst, base, offset=0, comment=""):
        return self._emit(
            Instruction("ld", dst=dst, srcs=(base,), imm=offset, comment=comment)
        )

    def fld(self, dst, base, offset=0, comment=""):
        return self._emit(
            Instruction("fld", dst=dst, srcs=(base,), imm=offset, comment=comment)
        )

    def sd(self, src, base, offset=0, comment=""):
        return self._emit(
            Instruction("sd", srcs=(base, src), imm=offset, comment=comment)
        )

    def fsd(self, src, base, offset=0, comment=""):
        return self._emit(
            Instruction("fsd", srcs=(base, src), imm=offset, comment=comment)
        )

    # ------------------------------------------------------------------ #
    # control
    # ------------------------------------------------------------------ #

    def _branch(self, mnemonic, s1, s2, target, comment):
        return self._emit(
            Instruction(mnemonic, srcs=(s1, s2), target=target, comment=comment)
        )

    def beq(self, s1, s2, target, comment=""):
        return self._branch("beq", s1, s2, target, comment)

    def bne(self, s1, s2, target, comment=""):
        return self._branch("bne", s1, s2, target, comment)

    def blt(self, s1, s2, target, comment=""):
        return self._branch("blt", s1, s2, target, comment)

    def bge(self, s1, s2, target, comment=""):
        return self._branch("bge", s1, s2, target, comment)

    def bltu(self, s1, s2, target, comment=""):
        return self._branch("bltu", s1, s2, target, comment)

    def bgeu(self, s1, s2, target, comment=""):
        return self._branch("bgeu", s1, s2, target, comment)

    def j(self, target, comment=""):
        return self._emit(Instruction("j", target=target, comment=comment))

    def jal(self, target, dst="ra", comment=""):
        return self._emit(
            Instruction("jal", dst=dst, target=target, comment=comment)
        )

    def jalr(self, src="ra", dst=None, comment=""):
        return self._emit(
            Instruction("jalr", dst=dst, srcs=(src,), comment=comment)
        )

    def halt(self, comment=""):
        return self._emit(Instruction("halt", comment=comment))
