"""Program container with label resolution.

A :class:`Program` is an ordered list of instructions laid out at 4-byte
spacing from a base address, plus a label -> PC map.  Branch/jump targets
written as label names in the builder are resolved here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.instructions import Instruction, OpClass

INSTRUCTION_BYTES = 4


@dataclass
class Program:
    """An assembled program.

    Attributes:
        instructions: instructions in layout order, each bound to its PC.
        labels: label name -> PC.
        base_pc: PC of the first instruction.
    """

    instructions: list[Instruction]
    labels: dict[str, int]
    base_pc: int = 0x1000

    def __post_init__(self) -> None:
        self._by_pc = {inst.pc: inst for inst in self.instructions}
        self._targets = {}
        for inst in self.instructions:
            if inst.target is not None:
                if inst.target not in self.labels:
                    raise ValueError(
                        f"unresolved label {inst.target!r} at pc={inst.pc:#x}"
                    )
                self._targets[inst.pc] = self.labels[inst.target]

    def __len__(self) -> int:
        return len(self.instructions)

    def at(self, pc: int) -> Instruction:
        """Return the instruction at *pc* (KeyError if none)."""
        return self._by_pc[pc]

    def has_pc(self, pc: int) -> bool:
        return pc in self._by_pc

    def target_of(self, pc: int) -> int:
        """Resolved branch/jump target PC of the instruction at *pc*."""
        return self._targets[pc]

    def pc_of_label(self, label: str) -> int:
        return self.labels[label]

    def next_pc(self, pc: int) -> int:
        """Fall-through successor of *pc*."""
        return pc + INSTRUCTION_BYTES

    def pcs_matching(self, predicate) -> list[int]:
        """PCs of instructions for which ``predicate(inst)`` is true.

        Used by the PFM configuration layer to build snoop tables from
        instruction annotations, mimicking how a real deployment would
        derive RST/FST contents from the binary's symbol information.
        """
        return [i.pc for i in self.instructions if predicate(i)]

    def pcs_with_comment(self, tag: str) -> list[int]:
        """PCs whose instruction comment contains *tag*."""
        return self.pcs_matching(lambda i: tag in i.comment)

    def conditional_branch_pcs(self) -> list[int]:
        return self.pcs_matching(lambda i: i.is_conditional_branch)

    def static_mix(self) -> dict[OpClass, int]:
        """Static instruction mix by operation class."""
        mix: dict[OpClass, int] = {}
        for inst in self.instructions:
            mix[inst.op_class] = mix.get(inst.op_class, 0) + 1
        return mix
