"""Mini RISC-V-like instruction set used by the PFM reproduction.

The paper evaluates on a RISC-V, execution-driven, cycle-level simulator.
This package provides the instruction-set layer of that substrate: register
names, instruction records, program containers with label resolution, and a
small builder DSL used to express the paper's regions of interest (astar's
``makebound2``, GAP BFS's top-down step, libquantum's ``quantum_toffoli``,
and the bwaves/lbm/milc/leslie loop nests) as runnable kernels.

The ISA is modelled at the semantic level (mnemonic + operands), not at the
bit-encoding level; the cycle model only needs operand dependences, operation
classes, memory addresses, and branch outcomes.
"""

from repro.isa.instructions import Instruction, OpClass
from repro.isa.program import Program
from repro.isa.builder import ProgramBuilder
from repro.isa.registers import (
    INT_REGISTERS,
    FP_REGISTERS,
    ZERO_REGISTER,
    is_fp_register,
    is_int_register,
)

__all__ = [
    "Instruction",
    "OpClass",
    "Program",
    "ProgramBuilder",
    "INT_REGISTERS",
    "FP_REGISTERS",
    "ZERO_REGISTER",
    "is_fp_register",
    "is_int_register",
]
