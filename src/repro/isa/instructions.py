"""Instruction records and operation classes.

Instructions carry only what the functional executor and the cycle model
need: a mnemonic, an operation class (which determines the execution lane
and latency in :mod:`repro.core`), register operands, an immediate, and a
branch/jump target label.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.registers import is_fp_register, is_int_register


class OpClass(enum.Enum):
    """Coarse operation classes, mapped to execution lanes by the core.

    The paper's core (Table 1) has 4 simple-ALU lanes, 2 load/store lanes,
    and 2 FP/complex-ALU lanes; ``INT_MUL``/``INT_DIV``/``FP_*`` issue to
    the FP/complex lanes.
    """

    INT_ALU = "int_alu"
    INT_MUL = "int_mul"
    INT_DIV = "int_div"
    FP_ALU = "fp_alu"
    FP_MUL = "fp_mul"
    FP_DIV = "fp_div"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    HALT = "halt"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)


# Mnemonic -> OpClass.  The builder validates mnemonics against this table.
MNEMONIC_CLASS: dict[str, OpClass] = {
    # integer ALU (register-register and register-immediate forms)
    "add": OpClass.INT_ALU, "addi": OpClass.INT_ALU,
    "sub": OpClass.INT_ALU,
    "and_": OpClass.INT_ALU, "andi": OpClass.INT_ALU,
    "or_": OpClass.INT_ALU, "ori": OpClass.INT_ALU,
    "xor": OpClass.INT_ALU, "xori": OpClass.INT_ALU,
    "sll": OpClass.INT_ALU, "slli": OpClass.INT_ALU,
    "srl": OpClass.INT_ALU, "srli": OpClass.INT_ALU,
    "sra": OpClass.INT_ALU, "srai": OpClass.INT_ALU,
    "slt": OpClass.INT_ALU, "slti": OpClass.INT_ALU,
    "sltu": OpClass.INT_ALU,
    "li": OpClass.INT_ALU, "mv": OpClass.INT_ALU,
    # integer multiply / divide
    "mul": OpClass.INT_MUL, "muli": OpClass.INT_MUL,
    "div": OpClass.INT_DIV, "rem": OpClass.INT_DIV,
    # floating point
    "fadd": OpClass.FP_ALU, "fsub": OpClass.FP_ALU,
    "fmul": OpClass.FP_MUL, "fdiv": OpClass.FP_DIV,
    "fmv": OpClass.FP_ALU, "fli": OpClass.FP_ALU,
    "fcvt": OpClass.FP_ALU,
    # memory (doubleword granularity; fld/fsd move FP data)
    "ld": OpClass.LOAD, "fld": OpClass.LOAD,
    "sd": OpClass.STORE, "fsd": OpClass.STORE,
    # control
    "beq": OpClass.BRANCH, "bne": OpClass.BRANCH,
    "blt": OpClass.BRANCH, "bge": OpClass.BRANCH,
    "bltu": OpClass.BRANCH, "bgeu": OpClass.BRANCH,
    "j": OpClass.JUMP, "jal": OpClass.JUMP, "jalr": OpClass.JUMP,
    "halt": OpClass.HALT,
}

CONDITIONAL_BRANCHES = frozenset(
    m for m, c in MNEMONIC_CLASS.items() if c is OpClass.BRANCH
)


@dataclass(frozen=True, slots=True)
class Instruction:
    """One static instruction.

    Attributes:
        mnemonic: operation name; must be a key of :data:`MNEMONIC_CLASS`.
        dst: destination register name, or None.
        srcs: source register names (base register first for memory ops,
            store-data register second for stores).
        imm: immediate operand (also the address offset for memory ops).
        target: label name for branch/jump targets; resolved to a PC by
            :class:`repro.isa.program.Program`.
        comment: free-form annotation carried through to traces, used by
            tests and by snoop-table construction helpers.
    """

    mnemonic: str
    dst: str | None = None
    srcs: tuple[str, ...] = ()
    imm: int = 0
    target: str | None = None
    comment: str = ""
    pc: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.mnemonic not in MNEMONIC_CLASS:
            raise ValueError(f"unknown mnemonic: {self.mnemonic!r}")
        for reg in self.srcs:
            if not (is_int_register(reg) or is_fp_register(reg)):
                raise ValueError(f"unknown source register: {reg!r}")
        if self.dst is not None and not (
            is_int_register(self.dst) or is_fp_register(self.dst)
        ):
            raise ValueError(f"unknown destination register: {self.dst!r}")

    @property
    def op_class(self) -> OpClass:
        return MNEMONIC_CLASS[self.mnemonic]

    @property
    def is_conditional_branch(self) -> bool:
        return self.mnemonic in CONDITIONAL_BRANCHES

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE

    def with_pc(self, pc: int) -> "Instruction":
        """Return a copy of this instruction bound to program counter *pc*."""
        return Instruction(
            mnemonic=self.mnemonic,
            dst=self.dst,
            srcs=self.srcs,
            imm=self.imm,
            target=self.target,
            comment=self.comment,
            pc=pc,
        )

    def __str__(self) -> str:
        parts = [self.mnemonic]
        if self.dst:
            parts.append(self.dst)
        parts.extend(self.srcs)
        if self.imm:
            parts.append(str(self.imm))
        if self.target:
            parts.append(f"-> {self.target}")
        text = " ".join(parts)
        if self.comment:
            text += f"  # {self.comment}"
        return text
