"""Architectural register names.

The register file follows RISC-V conventions: 32 integer registers with the
usual ABI aliases and 32 floating-point registers.  ``zero`` is hardwired to
zero — writes to it are discarded, reads always return 0 — which the
functional executor and the renamer both honour.
"""

from __future__ import annotations

# ABI names for the 32 integer registers, in x0..x31 order.
INT_REGISTERS: tuple[str, ...] = (
    "zero", "ra", "sp", "gp", "tp",
    "t0", "t1", "t2",
    "s0", "s1",
    "a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
    "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
    "t3", "t4", "t5", "t6",
)

# ABI names for the 32 floating-point registers, in f0..f31 order.
FP_REGISTERS: tuple[str, ...] = tuple(
    name
    for group in (
        [f"ft{i}" for i in range(8)],
        ["fs0", "fs1"],
        [f"fa{i}" for i in range(8)],
        [f"fs{i}" for i in range(2, 12)],
        [f"ft{i}" for i in range(8, 12)],
    )
    for name in group
)

ZERO_REGISTER = "zero"

_INT_SET = frozenset(INT_REGISTERS)
_FP_SET = frozenset(FP_REGISTERS)


def is_int_register(name: str) -> bool:
    """Return True if *name* is one of the 32 integer registers."""
    return name in _INT_SET


def is_fp_register(name: str) -> bool:
    """Return True if *name* is one of the 32 floating-point registers."""
    return name in _FP_SET


def register_index(name: str) -> int:
    """Map a register name to a dense index (ints 0-31, floats 32-63).

    The physical-register-file model in :mod:`repro.core` uses these dense
    indices for its rename map.
    """
    if name in _INT_SET:
        return INT_REGISTERS.index(name)
    if name in _FP_SET:
        return 32 + FP_REGISTERS.index(name)
    raise ValueError(f"unknown register: {name!r}")
