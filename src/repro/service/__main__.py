"""``python -m repro.service``: daemon and client verbs."""

import sys

from repro.service.cli import main

if __name__ == "__main__":
    sys.exit(main())
