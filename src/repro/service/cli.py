"""CLI verbs for the simulation service.

Reachable both as ``python -m repro.service <verb>`` and through the
experiments front door (``python -m repro.experiments serve|submit|...``
delegates here).  Verbs:

* ``serve``   — run the resident daemon (drains gracefully on SIGTERM)
* ``submit``  — admit a job; ``--wait`` polls it to completion
* ``status``  — one job's lifecycle state
* ``result``  — fetch a done job's deterministic result payload
* ``cancel``  — cancel a still-queued job
* ``stats``   — daemon introspection (uptime, queue, cache hit rates)
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import sys
from pathlib import Path

from repro.workloads.tracecache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR

#: Verbs the experiments __main__ forwards to this module.
SERVICE_VERBS = ("serve", "submit", "status", "result", "cancel", "stats")

#: Window used by ``submit --smoke`` (mirrors the sweep CLI's smoke run).
SMOKE_WINDOW = 2_000


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cache-dir",
        default=os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR),
        help=f"shared cache + service directory"
             f" (default ${CACHE_DIR_ENV} or {DEFAULT_CACHE_DIR})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Simulation-as-a-service: resident daemon and client.",
    )
    sub = parser.add_subparsers(dest="verb", required=True)

    serve = sub.add_parser("serve", help="run the resident daemon")
    _add_common(serve)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; published in endpoint.json)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=64,
        help="admission bound on queued jobs (default 64)",
    )
    serve.add_argument(
        "--inflight", type=int, default=1,
        help="concurrently running jobs (default 1)",
    )
    serve.add_argument(
        "--worker-budget", type=int, default=None,
        help="max worker processes one request may ask for"
             " (default: CPU count); larger requests are rejected",
    )
    serve.add_argument(
        "--hold", action="store_true",
        help="admit and journal jobs without dispatching them"
             " (maintenance / drain testing)",
    )
    serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="content-addressed result store directory (default"
             " <cache-dir>/store); give each daemon of a sharded fleet"
             " its own store and union them with 'shard-merge'",
    )

    submit = sub.add_parser("submit", help="admit a job to the daemon")
    _add_common(submit)
    submit.add_argument(
        "kind", help="request kind (see 'list': simulate, sweep, trace)"
    )
    submit.add_argument(
        "target", nargs="?", default=None,
        help="workload name (simulate/trace kinds)",
    )
    submit.add_argument("--window", type=int, default=None)
    submit.add_argument(
        "--smoke", action="store_true",
        help=f"use the smoke window ({SMOKE_WINDOW}) unless --window is set",
    )
    submit.add_argument(
        "--config", default=None,
        help="PFM configuration label (paper notation)",
    )
    submit.add_argument(
        "--workloads", default=None,
        help="comma list of workloads (sweep kind; default: all)",
    )
    submit.add_argument(
        "--configs", default=None,
        help="semicolon list of config labels (sweep kind; default grid)",
    )
    submit.add_argument(
        "--shard", metavar="I/N", default=None,
        help="run only shard I of N of the sweep grid into the daemon's"
             " result store (sweep kind; see 'shard-merge')",
    )
    submit.add_argument("--ring", type=int, default=None,
                        help="telemetry ring capacity (trace kind)")
    submit.add_argument("--sample-period", type=int, default=None,
                        help="sampler cadence in cycles (trace kind)")
    submit.add_argument("--priority", type=int, default=0,
                        help="higher runs first (default 0)")
    submit.add_argument("--jobs", type=int, default=1,
                        help="worker processes for this job (default 1)")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job finishes, then print/"
                             "write the result")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds (default 600)")
    submit.add_argument("--json", metavar="FILE", default=None,
                        help="with --wait: write the result payload to FILE")

    for verb, help_text in (
        ("status", "one job's lifecycle state"),
        ("result", "fetch a done job's result payload"),
        ("cancel", "cancel a still-queued job"),
    ):
        p = sub.add_parser(verb, help=help_text)
        _add_common(p)
        p.add_argument("job_id")
        if verb == "result":
            p.add_argument("--json", metavar="FILE", default=None,
                           help="write the result payload to FILE")

    stats = sub.add_parser("stats", help="daemon introspection snapshot")
    _add_common(stats)

    return parser


# --------------------------------------------------------------------- #
# serve
# --------------------------------------------------------------------- #


async def _serve(args) -> int:
    from repro.service.server import ServiceConfig, SimulationService

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        max_inflight=args.inflight,
        worker_budget=args.worker_budget,
        hold=args.hold,
        store_dir=args.store,
    )
    service = SimulationService(config)
    await service.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, service.request_shutdown)
        except NotImplementedError:  # pragma: no cover - non-posix loops
            pass
    print(
        f"repro service listening on {config.host}:{service.port}"
        f" (cache {args.cache_dir}, max_queue {config.max_queue},"
        f" inflight {config.max_inflight}"
        f"{', HOLD: not dispatching' if config.hold else ''})",
        flush=True,
    )
    await service.serve_until_shutdown()
    print("repro service drained and stopped", flush=True)
    return 0


# --------------------------------------------------------------------- #
# client verbs
# --------------------------------------------------------------------- #


def _build_request(args) -> tuple[str, dict]:
    """Translate submit flags into a wire request payload."""
    window = args.window
    if window is None and args.smoke:
        window = SMOKE_WINDOW
    request: dict = {}
    if window is not None:
        request["window"] = window
    if args.jobs != 1:
        request["jobs"] = args.jobs
    kind = args.kind
    if kind == "simulate":
        if not args.target:
            raise SystemExit("submit simulate needs a workload name")
        request["workload"] = args.target
        if args.config:
            request["config"] = args.config
    elif kind == "trace":
        if args.target:
            request["target"] = args.target
        if args.config:
            request["config"] = args.config
        if args.ring is not None:
            request["ring"] = args.ring
        if args.sample_period is not None:
            request["sample_period"] = args.sample_period
    elif kind == "sweep":
        if args.workloads:
            request["workloads"] = [
                part for part in args.workloads.replace(",", " ").split()
                if part
            ]
        if args.configs:
            request["configs"] = [
                part.strip() for part in args.configs.split(";") if part.strip()
            ]
        if args.shard:
            request["shard"] = args.shard  # "I/N"; validated server-side
    return kind, request


def _client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(cache_dir=args.cache_dir)


def _submit(args) -> int:
    from repro.service.client import ServiceError

    kind, request = _build_request(args)
    client = _client(args)
    try:
        admitted = client.submit(kind, request, priority=args.priority)
    except ServiceError as exc:
        print(f"rejected: {exc.reason}", file=sys.stderr)
        return 1
    job_id = admitted["job_id"]
    print(f"{job_id} queued (depth {admitted['queue_depth']})")
    if not args.wait:
        return 0
    status = client.wait(job_id, timeout=args.timeout)
    if status["state"] != "done":
        print(
            f"{job_id} {status['state']}:"
            f" {status.get('error', 'no error recorded')}",
            file=sys.stderr,
        )
        return 1
    data = client.result(job_id)
    if args.json:
        Path(args.json).write_bytes(data)
        print(f"{job_id} done; result written to {args.json}")
    else:
        sys.stdout.write(data.decode())
    return 0


def _status(args) -> int:
    print(json.dumps(_client(args).status(args.job_id), sort_keys=True,
                     indent=2))
    return 0


def _result(args) -> int:
    from repro.service.client import ServiceError

    try:
        data = _client(args).result(args.job_id)
    except ServiceError as exc:
        print(f"{args.job_id}: {exc.reason}", file=sys.stderr)
        return 1
    if args.json:
        Path(args.json).write_bytes(data)
        print(f"result written to {args.json}")
    else:
        sys.stdout.write(data.decode())
    return 0


def _cancel(args) -> int:
    from repro.service.client import ServiceError

    try:
        status = _client(args).cancel(args.job_id)
    except ServiceError as exc:
        print(f"{args.job_id}: {exc.reason}", file=sys.stderr)
        return 1
    print(f"{args.job_id} {status['state']}")
    return 0


def _stats(args) -> int:
    print(json.dumps(_client(args).stats(), sort_keys=True, indent=2))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verb == "serve":
        return asyncio.run(_serve(args))
    from repro.service.client import ServiceUnavailable

    handler = {
        "submit": _submit,
        "status": _status,
        "result": _result,
        "cancel": _cancel,
        "stats": _stats,
    }[args.verb]
    try:
        return handler(args)
    except ServiceUnavailable as exc:
        print(exc.reason, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
