"""Thin blocking client for the simulation daemon.

Pure stdlib (``http.client``) and zero daemon-side coupling: everything
it knows about the server is the wire schema in
:mod:`repro.service.models` and the endpoint file the daemon publishes
under ``<cache-dir>/service/endpoint.json``.  Results come back as the
exact bytes the daemon persisted — the client never re-serializes them —
so byte-for-byte comparisons against direct
:class:`~repro.experiments.pool.SweepPool` output hold end to end.
"""

from __future__ import annotations

import http.client
import json
import os
import time

from repro.service.models import TERMINAL_STATES
from repro.service.server import endpoint_path
from repro.workloads.tracecache import CACHE_DIR_ENV, DEFAULT_CACHE_DIR


class ServiceError(RuntimeError):
    """An HTTP-level failure; carries the status and the server's reason."""

    def __init__(self, status: int, reason: str):
        self.status = status
        self.reason = reason
        super().__init__(f"HTTP {status}: {reason}")


class ServiceUnavailable(ServiceError):
    """Could not reach a daemon (no endpoint file, refused connection)."""

    def __init__(self, reason: str):
        super().__init__(0, reason)


def discover_endpoint(
    cache_dir: str | os.PathLike | None = None,
) -> tuple[str, int]:
    """(host, port) from the daemon's published endpoint file."""
    if cache_dir is None:
        cache_dir = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
    path = endpoint_path(cache_dir)
    try:
        payload = json.loads(path.read_text())
        return payload["host"], int(payload["port"])
    except FileNotFoundError:
        raise ServiceUnavailable(
            f"no daemon endpoint at {path}; start one with"
            " 'python -m repro.experiments serve'"
        ) from None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        raise ServiceUnavailable(
            f"unreadable daemon endpoint file {path}"
        ) from None


class ServiceClient:
    """Talks to one daemon; raises :class:`ServiceError` on any non-2xx."""

    def __init__(
        self,
        host: str | None = None,
        port: int | None = None,
        cache_dir: str | os.PathLike | None = None,
        timeout: float = 60.0,
    ):
        if host is None or port is None:
            host, port = discover_endpoint(cache_dir)
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, bytes]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body, sort_keys=True).encode()
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        except (ConnectionError, OSError) as exc:
            raise ServiceUnavailable(
                f"cannot reach daemon at {self.host}:{self.port} ({exc})"
            ) from None
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: dict | None = None) -> dict:
        status, data = self._request(method, path, body)
        try:
            payload = json.loads(data)
        except json.JSONDecodeError:
            payload = {"error": data.decode(errors="replace")}
        if status >= 400:
            raise ServiceError(status, payload.get("error", "unknown error"))
        return payload

    # ------------------------------------------------------------------ #
    # verbs
    # ------------------------------------------------------------------ #

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def submit(self, kind: str, request: dict, priority: int = 0) -> dict:
        """Admit one job; returns ``{job_id, state, queue_depth}``."""
        return self._json(
            "POST",
            "/submit",
            {"kind": kind, "priority": priority, "request": request},
        )

    def status(self, job_id: str) -> dict:
        return self._json("GET", f"/status/{job_id}")

    def result(self, job_id: str) -> bytes:
        """The daemon's stored result payload, byte-exact."""
        status, data = self._request("GET", f"/result/{job_id}")
        if status >= 400:
            try:
                reason = json.loads(data).get("error", "unknown error")
            except json.JSONDecodeError:
                reason = data.decode(errors="replace")
            raise ServiceError(status, reason)
        return data

    def cancel(self, job_id: str) -> dict:
        return self._json("POST", f"/cancel/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 300.0, poll: float = 0.1
    ) -> dict:
        """Poll ``/status`` until the job is terminal; returns the final
        status payload (caller checks ``state``)."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(poll)

    def run(
        self,
        kind: str,
        request: dict,
        priority: int = 0,
        timeout: float = 300.0,
    ) -> bytes:
        """Submit, wait, fetch: the one-call convenience round trip."""
        job_id = self.submit(kind, request, priority)["job_id"]
        status = self.wait(job_id, timeout=timeout)
        if status["state"] != "done":
            raise ServiceError(
                409,
                f"job {job_id} finished {status['state']}:"
                f" {status.get('error', 'no error recorded')}",
            )
        return self.result(job_id)


def wait_for_endpoint(
    cache_dir: str | os.PathLike | None = None, timeout: float = 30.0
) -> tuple[str, int]:
    """Block until a daemon publishes its endpoint (CI / test helper)."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return discover_endpoint(cache_dir)
        except ServiceUnavailable:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceUnavailable",
    "discover_endpoint",
    "wait_for_endpoint",
]
