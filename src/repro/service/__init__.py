"""Simulation-as-a-service: a resident daemon over the sweep substrate.

Every CLI invocation of this reproduction pays interpreter startup,
registry autoload, and cold trace/baseline caches; at fleet scale those
costs dominate the simulations themselves.  This package keeps one
process resident — the same shell-vs-role split the paper applies to
hardware (a fixed shell, post-fabrication roles loaded into it): the
daemon is the shell, typed requests (``simulate``, ``sweep``, ``trace``)
are the roles, and the warm caches are the shared fabric.

Layers (one module each):

* :mod:`repro.service.models`   — typed request/job models + wire codec
* :mod:`repro.service.jobs`     — fsynced JSONL job journal, bounded
  priority queue, admission control
* :mod:`repro.service.handlers` — request kinds (registered in
  :data:`repro.registry.service.SERVICE_KINDS`) running through
  :class:`~repro.experiments.pool.SweepPool`
* :mod:`repro.service.executor` — the persistent warm backend (shared
  baseline memory cache + compiled-trace memo + registries)
* :mod:`repro.service.server`   — the asyncio daemon (HTTP front door,
  dispatcher, graceful SIGTERM drain)
* :mod:`repro.service.client`   — blocking stdlib client
* :mod:`repro.service.cli`      — ``serve``/``submit``/``status``/
  ``result``/``cancel``/``stats`` verbs

Determinism contract: a result fetched from the daemon is byte-identical
to running the same request directly through a ``SweepPool`` — the
daemon adds scheduling and caching, never content.
"""

from repro.service.client import (
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    discover_endpoint,
    wait_for_endpoint,
)
from repro.service.jobs import AdmissionError, JobQueue, JobStore
from repro.service.models import (
    JobRecord,
    RequestError,
    SimulateRequest,
    SweepRequest,
    TraceRequest,
)
from repro.service.server import (
    ENDPOINTS,
    ServiceConfig,
    SimulationService,
    endpoint_path,
    jobs_dir,
    service_dir,
)

__all__ = [
    "AdmissionError",
    "ENDPOINTS",
    "JobQueue",
    "JobRecord",
    "JobStore",
    "RequestError",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailable",
    "SimulateRequest",
    "SimulationService",
    "SweepRequest",
    "TraceRequest",
    "discover_endpoint",
    "endpoint_path",
    "jobs_dir",
    "service_dir",
    "wait_for_endpoint",
]
