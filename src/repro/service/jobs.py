"""Job persistence and queueing for the simulation service.

:class:`JobStore` journals every job state transition to an append-only
JSONL file — the same substrate as the sweep engine's checkpoints, with
the same crash discipline (flush + fsync per record, torn trailing
lines skipped on load) — and owns the per-job result files.  A killed
daemon restarts by replaying the journal: the last snapshot of each job
wins, jobs that were ``queued`` or ``running`` are re-enqueued, and
terminal jobs stay queryable.

:class:`JobQueue` is the in-memory bounded priority queue the dispatcher
pops from: higher ``priority`` first, FIFO (admission ``seq``) within a
priority level.  Admission control lives at the queue boundary —
:meth:`JobQueue.admit` raises :class:`AdmissionError` with a concrete
reason instead of letting the daemon buffer unboundedly.
"""

from __future__ import annotations

import heapq
import json
import os
from pathlib import Path

from repro.service.models import (
    RESUMABLE_STATES,
    JobRecord,
)

#: Journal and result files live under ``<cache-dir>/service/jobs/``.
JOURNAL_NAME = "journal.jsonl"


class AdmissionError(RuntimeError):
    """The service refused a request; ``reason`` says exactly why."""

    def __init__(self, reason: str):
        self.reason = reason
        super().__init__(reason)


def append_jsonl(path: Path, record: dict) -> None:
    """Crash-safe JSONL append: one fsynced line per record.

    The flush makes the line visible to other processes; the fsync makes
    it survive the machine (not just the process) dying.  A record is
    either fully on disk or it is a torn trailing line the loaders skip.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_jsonl(path: Path) -> list[dict]:
    """Every well-formed record in *path*; torn/foreign lines skipped."""
    records: list[dict] = []
    if not path.exists():
        return records
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn final line from a killed daemon
            if isinstance(record, dict):
                records.append(record)
    return records


class JobStore:
    """Durable job state under one directory (journal + result files)."""

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self.journal = self.directory / JOURNAL_NAME

    # ------------------------------------------------------------------ #
    # journal
    # ------------------------------------------------------------------ #

    def record(self, job: JobRecord) -> None:
        """Append the current snapshot of *job* to the journal."""
        append_jsonl(self.journal, job.to_wire())

    def load(self) -> dict[str, JobRecord]:
        """Replay the journal; the last well-formed snapshot of each job
        wins, malformed snapshots are skipped (recomputed, never trusted)."""
        jobs: dict[str, JobRecord] = {}
        for record in read_jsonl(self.journal):
            try:
                job = JobRecord.from_wire(record)
            except Exception:
                continue  # half-written or version-skewed snapshot
            jobs[job.id] = job
        return jobs

    def resumable(self) -> list[JobRecord]:
        """Jobs a restarting daemon must re-enqueue, in admission order."""
        jobs = [
            job
            for job in self.load().values()
            if job.state in RESUMABLE_STATES
        ]
        jobs.sort(key=lambda job: job.seq)
        return jobs

    def next_seq(self) -> int:
        """First unused admission sequence number (ids survive restarts)."""
        jobs = self.load()
        return max((job.seq for job in jobs.values()), default=0) + 1

    # ------------------------------------------------------------------ #
    # results
    # ------------------------------------------------------------------ #

    def result_path(self, job_id: str) -> Path:
        return self.directory / f"{job_id}.result.json"

    def checkpoint_path(self, job_id: str) -> Path:
        """Per-job SweepPool checkpoint (resume for multi-point jobs)."""
        return self.directory / "checkpoints" / f"{job_id}.jsonl"

    def write_result(self, job_id: str, text: str) -> None:
        """Atomically persist the deterministic result payload."""
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(text)
        tmp.replace(path)

    def read_result(self, job_id: str) -> bytes | None:
        path = self.result_path(job_id)
        try:
            return path.read_bytes()
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------ #
    # inspection / maintenance (the ``cache`` CLI)
    # ------------------------------------------------------------------ #

    def size(self) -> tuple[int, int]:
        """(file count, total bytes) of everything under the store."""
        files = 0
        total = 0
        if self.directory.is_dir():
            for entry in self.directory.rglob("*"):
                if entry.is_file():
                    files += 1
                    total += entry.stat().st_size
        return files, total

    def clear(self) -> tuple[int, int]:
        """Delete the journal, results, and checkpoints; return
        (files removed, bytes freed)."""
        removed = 0
        freed = 0
        if not self.directory.is_dir():
            return removed, freed
        for entry in sorted(
            self.directory.rglob("*"), key=lambda p: len(p.parts), reverse=True
        ):
            try:
                if entry.is_file():
                    size = entry.stat().st_size
                    entry.unlink()
                    removed += 1
                    freed += size
                elif entry.is_dir():
                    entry.rmdir()
            except OSError:
                continue
        return removed, freed


class JobQueue:
    """Bounded priority queue: higher priority first, FIFO within."""

    def __init__(self, max_depth: int):
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self._heap: list[tuple[int, int, JobRecord]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def admit(self, job: JobRecord) -> None:
        """Enqueue *job* or raise :class:`AdmissionError` (queue full)."""
        if len(self._heap) >= self.max_depth:
            raise AdmissionError(
                f"queue full: depth {len(self._heap)} at the"
                f" max_queue={self.max_depth} limit; retry later"
            )
        heapq.heappush(self._heap, (-job.priority, job.seq, job))

    def requeue(self, job: JobRecord) -> None:
        """Enqueue without the depth bound (journal-resumed jobs were
        already admitted once; a restart must never drop them)."""
        heapq.heappush(self._heap, (-job.priority, job.seq, job))

    def pop(self) -> JobRecord:
        """Highest-priority (then oldest) queued job."""
        return heapq.heappop(self._heap)[2]

    def remove(self, job_id: str) -> JobRecord | None:
        """Remove and return the queued job *job_id* (cancel), or None."""
        for index, (_, _, job) in enumerate(self._heap):
            if job.id == job_id:
                entry = self._heap[index]
                self._heap.remove(entry)
                heapq.heapify(self._heap)
                return job
        return None

    def snapshot(self) -> list[JobRecord]:
        """Queued jobs in dispatch order (does not drain the queue)."""
        return [entry[2] for entry in sorted(self._heap)]
