"""Typed request and job models for the simulation service.

Requests are plain dataclasses with an explicit wire codec
(``to_wire``/``from_wire``) and eager validation — a malformed payload
is rejected at submit time with a message naming the field, never half
way through a simulation.  Each request kind maps onto the existing
sweep substrate: ``simulate`` is one :class:`SweepPoint`, ``sweep`` is
the full-matrix grid from :mod:`repro.experiments.sweep`, and ``trace``
is the telemetry pair from :mod:`repro.experiments.trace`, so the
service's results are byte-identical to running the same points through
a :class:`~repro.experiments.pool.SweepPool` directly.

Jobs wrap one admitted request with lifecycle state.  The state machine
is linear with two terminal branches::

    queued -> running -> done | failed
    queued -> cancelled

Every transition is journaled by :class:`repro.service.jobs.JobStore`
(append-only JSONL, the same substrate as sweep checkpoints), so a
killed daemon resumes with full knowledge of what was queued.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, ClassVar

#: Default dynamic-instruction window for service requests (matches the
#: CLI default; kept here so the wire schema is self-contained).
DEFAULT_WINDOW = 40_000


class RequestError(ValueError):
    """A submitted payload failed validation (HTTP 400 at the front door)."""


def request_digest(kind: str, request: dict) -> str:
    """Content digest of a validated wire request, for coalescing.

    Two submits with the same digest ask for the same deterministic
    result, so the daemon runs one and fans the bytes out to both.
    ``jobs`` is excluded: worker count changes how a result is computed,
    never what it is (``tests/test_determinism.py``).  The input is the
    *validated* ``to_wire()`` payload, so spelling differences in the
    submitted JSON (defaults omitted vs explicit) cannot split a digest.
    """
    spec = {key: value for key, value in request.items() if key != "jobs"}
    blob = json.dumps({"kind": kind, "request": spec}, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()


# --------------------------------------------------------------------- #
# request models
# --------------------------------------------------------------------- #


def _require_int(payload: dict, key: str, default: int, minimum: int = 1) -> int:
    value = payload.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < minimum:
        raise RequestError(
            f"field {key!r} must be an integer >= {minimum}, got {value!r}"
        )
    return value


def _require_str(payload: dict, key: str, default: str | None) -> str | None:
    value = payload.get(key, default)
    if value is not None and not isinstance(value, str):
        raise RequestError(f"field {key!r} must be a string, got {value!r}")
    return value


def _require_shard(payload: dict) -> tuple[int, int] | None:
    value = payload.get("shard")
    if value is None:
        return None
    if isinstance(value, str):
        index_text, _, count_text = value.partition("/")
        try:
            value = [int(index_text), int(count_text)]
        except ValueError:
            raise RequestError(
                f"field 'shard' must be I/N or [index, count], got {value!r}"
            ) from None
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(not isinstance(v, int) or isinstance(v, bool) for v in value)
    ):
        raise RequestError(
            f"field 'shard' must be I/N or [index, count], got {value!r}"
        )
    index, count = value
    if count < 1 or not 1 <= index <= count:
        raise RequestError(
            f"field 'shard' must satisfy 1 <= index <= count, got {value!r}"
        )
    return index, count


def _require_names(payload: dict, key: str) -> tuple[str, ...]:
    value = payload.get(key, ())
    if isinstance(value, str):
        value = [part for part in value.replace(",", " ").split() if part]
    if not isinstance(value, (list, tuple)) or any(
        not isinstance(item, str) for item in value
    ):
        raise RequestError(
            f"field {key!r} must be a list of names (or a comma list), got {value!r}"
        )
    return tuple(value)


@dataclass
class SimulateRequest:
    """One simulation: a workload, a window, optionally a PFM config."""

    kind: ClassVar[str] = "simulate"

    workload: str
    window: int = DEFAULT_WINDOW
    config: str | None = None  # paper notation, e.g. "clk4_w4, delay4"
    overrides: dict = field(default_factory=dict)
    jobs: int = 1

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "workload": self.workload,
            "window": self.window,
            "config": self.config,
            "overrides": dict(self.overrides),
            "jobs": self.jobs,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "SimulateRequest":
        workload = _require_str(payload, "workload", None)
        if not workload:
            raise RequestError("simulate requests need a 'workload' name")
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, dict):
            raise RequestError(
                f"field 'overrides' must be an object, got {overrides!r}"
            )
        return cls(
            workload=workload,
            window=_require_int(payload, "window", DEFAULT_WINDOW),
            config=_require_str(payload, "config", None),
            overrides=dict(overrides),
            jobs=_require_int(payload, "jobs", 1),
        )


@dataclass
class SweepRequest:
    """A full sweep grid: workloads x PFM config labels, one window."""

    kind: ClassVar[str] = "sweep"

    window: int = DEFAULT_WINDOW
    workloads: tuple[str, ...] = ()  # empty = every registered workload
    configs: tuple[str, ...] = ()  # empty = the default SWEEP_CONFIGS grid
    jobs: int = 1
    shard: tuple[int, int] | None = None  # (index, count), 1-based

    def to_wire(self) -> dict:
        wire: dict[str, Any] = {
            "kind": self.kind,
            "window": self.window,
            "workloads": list(self.workloads),
            "configs": list(self.configs),
            "jobs": self.jobs,
        }
        if self.shard is not None:
            # Added only when set so pre-shard journal records (and their
            # coalescing digests) keep their exact shape.
            wire["shard"] = list(self.shard)
        return wire

    @classmethod
    def from_wire(cls, payload: dict) -> "SweepRequest":
        return cls(
            window=_require_int(payload, "window", DEFAULT_WINDOW),
            workloads=_require_names(payload, "workloads"),
            configs=_require_names(payload, "configs"),
            jobs=_require_int(payload, "jobs", 1),
            shard=_require_shard(payload),
        )


@dataclass
class TraceRequest:
    """A telemetry-traced run; the result is the metrics manifest."""

    kind: ClassVar[str] = "trace"

    target: str = "astar"
    window: int = DEFAULT_WINDOW
    config: str | None = None  # None = the trace experiment's default
    ring: int = 65_536
    sample_period: int = 64
    jobs: int = 1

    def to_wire(self) -> dict:
        return {
            "kind": self.kind,
            "target": self.target,
            "window": self.window,
            "config": self.config,
            "ring": self.ring,
            "sample_period": self.sample_period,
            "jobs": self.jobs,
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "TraceRequest":
        target = _require_str(payload, "target", "astar")
        assert target is not None
        return cls(
            target=target,
            window=_require_int(payload, "window", DEFAULT_WINDOW),
            config=_require_str(payload, "config", None),
            ring=_require_int(payload, "ring", 65_536),
            sample_period=_require_int(payload, "sample_period", 64, minimum=0),
            jobs=_require_int(payload, "jobs", 1),
        )


# --------------------------------------------------------------------- #
# job lifecycle
# --------------------------------------------------------------------- #

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a resuming daemon re-enqueues ("running" means the previous
#: daemon died mid-job; the work is re-run, results are deterministic).
RESUMABLE_STATES = (QUEUED, RUNNING)

TERMINAL_STATES = (DONE, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """One admitted request plus its lifecycle state.

    ``seq`` is the admission order (tie-break within a priority level,
    and the basis for job ids); ``request`` is the validated wire
    payload, kept in wire form so the journal round-trips bytes exactly.
    """

    id: str
    kind: str
    priority: int
    seq: int
    request: dict
    state: str = QUEUED
    error: str | None = None

    def to_wire(self) -> dict:
        record: dict[str, Any] = {
            "id": self.id,
            "kind": self.kind,
            "priority": self.priority,
            "seq": self.seq,
            "request": self.request,
            "state": self.state,
        }
        if self.error is not None:
            record["error"] = self.error
        return record

    @classmethod
    def from_wire(cls, payload: dict) -> "JobRecord":
        state = payload["state"]
        if state not in JOB_STATES:
            raise RequestError(f"unknown job state {state!r}")
        return cls(
            id=payload["id"],
            kind=payload["kind"],
            priority=payload["priority"],
            seq=payload["seq"],
            request=payload["request"],
            state=state,
            error=payload.get("error"),
        )

    def status_payload(self) -> dict:
        """The ``/status`` endpoint's JSON view of this job."""
        payload = self.to_wire()
        payload["terminal"] = self.state in TERMINAL_STATES
        return payload


def job_id_for(seq: int) -> str:
    return f"job-{seq:06d}"
