"""Request-kind handlers: wire payload -> SweepPool run -> result bytes.

Each handler is registered in :data:`repro.registry.service.SERVICE_KINDS`
and maps one request kind onto the *existing* execution path — the same
:class:`~repro.experiments.pool.SweepPoint` grids, the same
:class:`~repro.experiments.pool.SweepPool`, the same deterministic
serializers the CLI uses — so a result fetched from the daemon is
byte-identical to running the request directly.  Handlers return
``(text, meta)``: the result payload as its final JSON text, and a small
meta dict (point counts, per-backend counts) the daemon folds into its
``/stats`` counters.

Adding a request kind is: a model in :mod:`repro.service.models`, a
handler class here with ``@register_request_kind``, and nothing else —
the daemon, client, and CLI dispatch through the registry.
"""

from __future__ import annotations

import json

from repro.experiments.pool import SweepPool, stats_to_dict
from repro.experiments.sweep import payload_json, run_sweep, sweep_points
from repro.experiments.trace import run_trace, trace_points
from repro.experiments.trace import DEFAULT_TRACE_CONFIG
from repro.registry.service import register_request_kind
from repro.service.models import (
    RequestError,
    SimulateRequest,
    SweepRequest,
    TraceRequest,
)


def _check_workload(name: str) -> None:
    from repro.registry import WORKLOADS

    if name not in WORKLOADS:
        raise RequestError(WORKLOADS.unknown_message(name))


def _check_config(label: str | None) -> None:
    if label is None:
        return
    from repro.experiments.runner import parse_config_label

    try:
        parse_config_label(label)
    except ValueError as exc:
        raise RequestError(str(exc)) from None


def _backend_counts(stats_by_label: dict) -> dict[str, int]:
    """Per-backend run counts (provenance attr, 'python' when absent)."""
    counts: dict[str, int] = {}
    for stats in stats_by_label.values():
        backend = getattr(stats, "backend", "python")
        counts[backend] = counts.get(backend, 0) + 1
    return counts


def simulate_result_json(point, stats) -> str:
    """Deterministic payload for one simulated point (sorted keys)."""
    payload = {
        "kind": "simulate",
        "label": point.label,
        "workload": point.workload,
        "window": point.window,
        "key": point.key(),
        "ipc": stats.ipc,
        "stats": stats_to_dict(stats),
    }
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def trace_result_json(manifest: dict) -> str:
    """The metrics manifest exactly as the ``trace`` CLI writes it."""
    return json.dumps(manifest, sort_keys=True, indent=2) + "\n"


@register_request_kind("simulate")
class SimulateHandler:
    """One workload x window x optional PFM config -> flat stats JSON."""

    kind = "simulate"
    summary = "one run: workload, window, optional PFM config label"
    request_cls = SimulateRequest

    @staticmethod
    def validate(request: SimulateRequest) -> None:
        _check_workload(request.workload)
        _check_config(request.config)

    @staticmethod
    def points(request: SimulateRequest) -> list:
        from repro.experiments.pool import SweepPoint, baseline_point
        from repro.experiments.runner import parse_config_label

        if request.config is None:
            return [
                baseline_point(
                    request.workload, request.window, **request.overrides
                )
            ]
        return [
            SweepPoint(
                label=f"{request.workload} [{request.config}]",
                workload=request.workload,
                window=request.window,
                pfm=parse_config_label(request.config),
                overrides=dict(request.overrides),
            )
        ]

    @classmethod
    def run(
        cls, request: SimulateRequest, pool: SweepPool
    ) -> tuple[str, dict]:
        (point,) = cls.points(request)
        stats = pool.run([point])[point.label]
        meta = {
            "points": 1,
            "backends": _backend_counts({point.label: stats}),
        }
        return simulate_result_json(point, stats), meta


@register_request_kind("sweep")
class SweepHandler:
    """Workloads x configs grid -> the ``sweep --json`` payload."""

    kind = "sweep"
    summary = "full-matrix sweep: workloads x PFM configs, one window"
    request_cls = SweepRequest

    @classmethod
    def validate(cls, request: SweepRequest) -> None:
        workloads, configs = cls.grid(request)
        for name in workloads:
            _check_workload(name)
        for label in configs:
            _check_config(label)

    @staticmethod
    def grid(request: SweepRequest) -> tuple[tuple[str, ...], tuple[str, ...]]:
        from repro.experiments.sweep import SWEEP_CONFIGS, SWEEP_WORKLOADS

        workloads = request.workloads or tuple(SWEEP_WORKLOADS)
        configs = request.configs or tuple(SWEEP_CONFIGS)
        return workloads, configs

    @classmethod
    def points(cls, request: SweepRequest) -> list:
        workloads, configs = cls.grid(request)
        return sweep_points(request.window, workloads, configs)

    @classmethod
    def run(cls, request: SweepRequest, pool: SweepPool) -> tuple[str, dict]:
        workloads, configs = cls.grid(request)
        if request.shard is not None:
            # A shard job's product is its result store (the daemon's, or
            # --store); the payload is the shard summary.  Merge the
            # stores of N daemons with `repro.experiments shard-merge`.
            from repro.experiments.sweep import run_sweep_shard

            payload = run_sweep_shard(
                request.window, pool, request.shard, workloads, configs
            )
            return payload_json(payload), {"points": payload["points_selected"]}
        result, payload = run_sweep(request.window, pool, workloads, configs)
        meta = {"points": len(payload["points"])}
        return payload_json(payload), meta


@register_request_kind("trace")
class TraceHandler:
    """Telemetry-traced pair -> the metrics manifest JSON."""

    kind = "trace"
    summary = "telemetry-traced run; result is the metrics manifest"
    request_cls = TraceRequest

    @staticmethod
    def validate(request: TraceRequest) -> None:
        _check_workload(request.target)
        _check_config(request.config)

    @staticmethod
    def points(request: TraceRequest) -> list:
        return trace_points(
            request.target,
            request.window,
            request.config or DEFAULT_TRACE_CONFIG,
            request.ring,
            request.sample_period,
        )

    @classmethod
    def run(cls, request: TraceRequest, pool: SweepPool) -> tuple[str, dict]:
        from repro.telemetry.export import metrics_manifest

        result, traced, base = run_trace(
            request.target,
            request.window,
            pool,
            config=request.config or DEFAULT_TRACE_CONFIG,
            ring=request.ring,
            sample_period=request.sample_period,
        )
        manifest = metrics_manifest(traced, baseline=base)
        meta = {
            "points": 2,
            "backends": _backend_counts({"traced": traced, "base": base}),
        }
        return trace_result_json(manifest), meta
