"""The daemon's persistent execution backend: one warm pool, many jobs.

A cold CLI invocation pays interpreter startup, registry autoload, trace
compilation, and baseline simulation on every run.  The daemon pays them
once: this module owns the state that stays warm across requests —

* one shared **memory cache** (``{point-key: SimStats}``) threaded into
  every per-job :class:`SweepPool`, so a point computed for any request
  is served from memory to all later ones;
* one shared content-addressed **result store**
  (:class:`repro.store.ResultStore` under ``<cache-dir>/store/``),
  consulted before every simulation and published to after — it is the
  disk tier under the memory cache, survives restarts, and merges with
  stores from other hosts (``shard-merge``);
* the process-global **compiled-trace memo**
  (:mod:`repro.workloads.tracecache`), warmed by in-process (``jobs=1``)
  runs and re-used by every later replay;
* the **registries**, autoloaded once at daemon startup instead of once
  per CLI invocation.

Each job still gets its *own* pool object (its own checkpoint file, its
own ``last_run_info``) so concurrent jobs never interleave journal
writes — only the caches are shared, and those are append-only maps of
content-addressed results, safe under the GIL for the thread-per-job
execution model the daemon uses.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.core import SimStats
from repro.experiments.pool import SweepPool
from repro.registry.service import resolve_request_kind
from repro.service.jobs import JobStore
from repro.service.models import JobRecord
from repro.store import ResultStore
from repro.store import store_dir as result_store_dir
from repro.workloads.tracecache import STATS as TRACE_STATS


class ServiceBackend:
    """Runs admitted jobs through per-job pools over shared warm caches."""

    def __init__(
        self,
        cache_dir: str | os.PathLike | None,
        store: JobStore,
        worker_budget: int | None = None,
        store_dir: str | os.PathLike | None = None,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.store = store
        self.worker_budget = worker_budget or (os.cpu_count() or 1)
        #: Shared across every per-job pool: content key -> SimStats.
        self.shared_memory_cache: dict[str, SimStats] = {}
        if store_dir is None and self.cache_dir is not None:
            store_dir = result_store_dir(self.cache_dir)
        #: One content-addressed result store for the whole daemon; every
        #: per-job pool consults it before simulating and publishes into
        #: it, so results survive restarts and merge across a fleet.
        self.result_store: ResultStore | None = (
            ResultStore(store_dir) if store_dir is not None else None
        )
        #: Cumulative SweepPool accounting across all finished jobs.
        self.pool_totals: dict[str, int] = {
            "computed": 0, "resumed": 0, "cached": 0, "store_hits": 0,
            "failed": 0,
        }

    def warm_registries(self) -> None:
        """Autoload every registry once, before the first request."""
        from repro.registry import (
            backend_names,
            component_names,
            predictor_names,
            prefetcher_names,
            request_kind_names,
            workload_names,
        )

        workload_names()
        component_names()
        predictor_names()
        prefetcher_names()
        backend_names()
        request_kind_names()

    def make_pool(self, jobs: int, job_id: str) -> SweepPool:
        """A per-job pool wired into the shared warm caches."""
        pool = SweepPool(
            jobs=jobs,
            cache_dir=self.cache_dir,
            checkpoint=self.store.checkpoint_path(job_id),
            memoize_all=True,
            store=self.result_store,
        )
        # Content-addressed results are interchangeable between pools;
        # sharing the dict is what makes the second request warm.
        pool._memory_cache = self.shared_memory_cache
        return pool

    def run_job(self, job: JobRecord) -> tuple[str, dict]:
        """Execute one job (called from a worker thread); returns
        ``(result text, meta)`` from the kind's handler."""
        handler = resolve_request_kind(job.kind)
        request = handler.request_cls.from_wire(job.request)
        pool = self.make_pool(min(request.jobs, self.worker_budget), job.id)
        text, meta = handler.run(request, pool)
        info = pool.last_run_info or {}
        for key in self.pool_totals:
            self.pool_totals[key] += info.get(key, 0)
        return text, meta

    def cache_stats(self) -> dict:
        """Warm-cache effectiveness for the ``/stats`` endpoint."""
        trace = dict(TRACE_STATS)
        trace_lookups = (
            trace["memo_hits"] + trace["disk_hits"] + trace["compiles"]
        )
        pool = dict(self.pool_totals)
        pool_lookups = (
            pool["computed"] + pool["resumed"] + pool["cached"]
            + pool["store_hits"]
        )
        store = (
            dict(self.result_store.counters)
            if self.result_store is not None else {}
        )
        store_warm = store.get("hits", 0) + store.get("memo_hits", 0)
        store_lookups = store_warm + store.get("misses", 0)
        return {
            "baseline_memory_entries": len(self.shared_memory_cache),
            "pool": pool,
            "pool_warm_rate": (
                (pool["resumed"] + pool["cached"] + pool["store_hits"])
                / pool_lookups
                if pool_lookups else 0.0
            ),
            "store": store,
            "store_hit_rate": (
                store_warm / store_lookups if store_lookups else 0.0
            ),
            "store_entries": (
                len(self.result_store)
                if self.result_store is not None else 0
            ),
            "trace": trace,
            "trace_hit_rate": (
                (trace["memo_hits"] + trace["disk_hits"]) / trace_lookups
                if trace_lookups else 0.0
            ),
        }
