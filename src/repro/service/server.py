"""The resident simulation daemon: asyncio front door, warm backend.

One process, three layers:

* an **HTTP/1.1 front door** on a local socket (``asyncio`` streams; the
  protocol surface is small enough that no web framework is needed),
* a **bounded priority job queue** with admission control — a submit
  beyond ``max_queue`` depth, or asking for more worker processes than
  the daemon's budget, is rejected immediately with a reason instead of
  buffered,
* a **dispatcher** that runs up to ``max_inflight`` jobs concurrently,
  each in a worker thread over the shared-warm
  :class:`~repro.service.executor.ServiceBackend`.

Lifecycle: every job transition is journaled (fsynced JSONL) by
:class:`~repro.service.jobs.JobStore`; on SIGTERM/SIGINT the daemon
*drains* — stops admitting (503), starts no new jobs, finishes running
ones, and exits with queued jobs preserved in the journal, where the
next daemon re-enqueues them.  The chosen port is published in
``<cache-dir>/service/endpoint.json`` so clients need no configuration;
the file is removed on clean shutdown (its absence after exit is the
"shut down cleanly" signal CI asserts).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

from repro.registry.base import UnknownNameError
from repro.registry.service import request_kind_names, resolve_request_kind
from repro.service.executor import ServiceBackend
from repro.service.jobs import AdmissionError, JobQueue, JobStore
from repro.service.models import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    JobRecord,
    RequestError,
    job_id_for,
    request_digest,
)
from repro.telemetry import CounterBank
from repro.workloads.tracecache import DEFAULT_CACHE_DIR

#: The daemon's HTTP surface, enumerable by ``list`` alongside the
#: registries (kept in sync with :meth:`SimulationService._route`).
ENDPOINTS = (
    ("POST", "/submit", "admit a job: {kind, priority, request:{...}}"),
    ("GET", "/status/<job-id>", "job lifecycle state"),
    ("GET", "/result/<job-id>", "deterministic result payload (done jobs)"),
    ("POST", "/cancel/<job-id>", "cancel a still-queued job"),
    ("GET", "/stats", "uptime, queue, store/cache hit rates, coalescing"),
    ("GET", "/healthz", "liveness"),
)

ENDPOINT_FILE = "endpoint.json"

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    409: "Conflict", 429: "Too Many Requests", 503: "Service Unavailable",
}


@dataclass
class ServiceConfig:
    """Daemon knobs (all local-first defaults)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in endpoint.json
    cache_dir: str | os.PathLike = DEFAULT_CACHE_DIR
    max_queue: int = 64  # admission bound on queued jobs
    max_inflight: int = 1  # concurrently running jobs (worker threads)
    worker_budget: int | None = None  # per-request --jobs cap (None = cores)
    hold: bool = False  # admit + journal but do not dispatch (maintenance)
    store_dir: str | os.PathLike | None = None  # result store override

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")


def service_dir(cache_dir: str | os.PathLike) -> Path:
    return Path(cache_dir) / "service"


def jobs_dir(cache_dir: str | os.PathLike) -> Path:
    return service_dir(cache_dir) / "jobs"


def endpoint_path(cache_dir: str | os.PathLike) -> Path:
    return service_dir(cache_dir) / ENDPOINT_FILE


class SimulationService:
    """One daemon instance: queue, dispatcher, HTTP front door."""

    def __init__(self, config: ServiceConfig):
        self.config = config
        self.store = JobStore(jobs_dir(config.cache_dir))
        self.backend = ServiceBackend(
            config.cache_dir,
            self.store,
            config.worker_budget,
            store_dir=config.store_dir,
        )
        self.queue = JobQueue(config.max_queue)
        self.counters = CounterBank()
        self.jobs: dict[str, JobRecord] = {}
        #: Request coalescing: identical queued/running requests share one
        #: execution.  ``_primary_by_digest`` maps a live (queued or
        #: running) primary's request digest to its job id;
        #: ``_followers`` maps a primary to the coalesced jobs waiting on
        #: its bytes.  All three maps are mutated only under ``_work``.
        self._primary_by_digest: dict[str, str] = {}
        self._digest_by_job: dict[str, str] = {}
        self._followers: dict[str, list[str]] = {}
        self.port: int | None = None
        self._seq = 1
        self._hold = config.hold
        self._draining = False
        self._inflight = 0
        self._started = 0.0
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._running_tasks: set[asyncio.Task] = set()
        self._work: asyncio.Condition | None = None
        self._threads: ThreadPoolExecutor | None = None
        self._shutdown_event: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Warm the backend, resume journaled jobs, bind the socket."""
        self._work = asyncio.Condition()
        self._shutdown_event = asyncio.Event()
        self._threads = ThreadPoolExecutor(
            max_workers=self.config.max_inflight,
            thread_name_prefix="repro-service-job",
        )
        self.backend.warm_registries()

        self.jobs = self.store.load()
        self._seq = max((j.seq for j in self.jobs.values()), default=0) + 1
        resumed = 0
        for job in self.store.resumable():
            if job.state != QUEUED:  # interrupted mid-run: re-run it
                job.state = QUEUED
                job.error = None
                self.store.record(job)
            digest = request_digest(job.kind, job.request)
            primary_id = self._primary_by_digest.get(digest)
            if primary_id is not None:
                # Identical to an already-resumed job (including a
                # follower whose primary died with it): coalesce again.
                self._followers.setdefault(primary_id, []).append(job.id)
                self.counters.inc("jobs_coalesced")
            else:
                self.queue.requeue(job)
                self._primary_by_digest[digest] = job.id
                self._digest_by_job[job.id] = digest
            self.jobs[job.id] = job
            resumed += 1
        if resumed:
            self.counters.inc("jobs_resumed", resumed)

        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()
        self._write_endpoint_file()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    def _write_endpoint_file(self) -> None:
        path = endpoint_path(self.config.cache_dir)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(
                {
                    "host": self.config.host,
                    "port": self.port,
                    "pid": os.getpid(),
                },
                sort_keys=True,
            )
            + "\n"
        )
        tmp.replace(path)

    async def release(self) -> None:
        """Leave hold mode: start dispatching queued jobs."""
        assert self._work is not None
        async with self._work:
            self._hold = False
            self._work.notify_all()

    def request_shutdown(self) -> None:
        """Signal-handler entry: begin draining (idempotent, loop thread)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def shutdown(self) -> None:
        """Drain: no new jobs, finish running ones, keep queued journaled."""
        self._draining = True
        if self._work is not None:
            async with self._work:
                self._work.notify_all()
        if self._dispatcher is not None:
            await self._dispatcher
        if self._running_tasks:
            await asyncio.gather(*self._running_tasks, return_exceptions=True)
        if self._threads is not None:
            self._threads.shutdown(wait=True)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            endpoint_path(self.config.cache_dir).unlink()
        except FileNotFoundError:
            pass

    async def serve_until_shutdown(self) -> None:
        """Run until :meth:`request_shutdown` fires, then drain."""
        assert self._shutdown_event is not None
        await self._shutdown_event.wait()
        await self.shutdown()

    # ------------------------------------------------------------------ #
    # dispatcher
    # ------------------------------------------------------------------ #

    async def _dispatch_loop(self) -> None:
        assert self._work is not None
        while True:
            async with self._work:
                while (
                    not self._draining
                    and (
                        self._hold
                        or not len(self.queue)
                        or self._inflight >= self.config.max_inflight
                    )
                ):
                    await self._work.wait()
                if self._draining:
                    return
                job = self.queue.pop()
                self._inflight += 1
            task = asyncio.create_task(self._run_job(job))
            self._running_tasks.add(task)
            task.add_done_callback(self._running_tasks.discard)

    async def _run_job(self, job: JobRecord) -> None:
        job.state = RUNNING
        self.store.record(job)
        self.counters.inc("jobs_started")
        loop = asyncio.get_running_loop()
        text: str | None = None
        try:
            text, meta = await loop.run_in_executor(
                self._threads, self.backend.run_job, job
            )
        except Exception as exc:
            job.state = FAILED
            job.error = f"{type(exc).__name__}: {exc}"
            self.counters.inc("jobs_failed")
        else:
            self.store.write_result(job.id, text)
            job.state = DONE
            job.error = None
            self.counters.inc("jobs_done")
            self.counters.inc(f"jobs_kind_{job.kind}")
            self.counters.inc("points_total", int(meta.get("points", 0)))
            for backend, count in meta.get("backends", {}).items():
                self.counters.inc(f"runs_backend_{backend}", count)
        self.store.record(job)
        assert self._work is not None
        async with self._work:
            # Fan the primary's outcome out to every coalesced follower:
            # the identical result *bytes* on success (one simulation,
            # N results), the same error on failure.  Under the lock so
            # a concurrent cancel/submit sees digests and followers
            # change atomically with the primary finishing.
            digest = self._digest_by_job.pop(job.id, None)
            if digest is not None:
                if self._primary_by_digest.get(digest) == job.id:
                    del self._primary_by_digest[digest]
            for follower_id in self._followers.pop(job.id, []):
                follower = self.jobs.get(follower_id)
                if follower is None or follower.state != QUEUED:
                    continue
                if job.state == DONE and text is not None:
                    self.store.write_result(follower.id, text)
                    follower.state = DONE
                    follower.error = None
                    self.counters.inc("jobs_done")
                    self.counters.inc(f"jobs_kind_{follower.kind}")
                else:
                    follower.state = FAILED
                    follower.error = job.error or "coalesced primary failed"
                    self.counters.inc("jobs_failed")
                self.store.record(follower)
            self._inflight -= 1
            self._work.notify_all()

    # ------------------------------------------------------------------ #
    # HTTP front door
    # ------------------------------------------------------------------ #

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), 30.0)
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), 30.0)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length") or 0)
            body = await reader.readexactly(length) if length else b""
            status, payload = await self._route(method, path, body)
            if isinstance(payload, bytes):
                data = payload
            else:
                data = json.dumps(payload, sort_keys=True).encode() + b"\n"
            head = (
                f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(data)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + data)
            await writer.drain()
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError, ValueError):
            pass  # malformed or abandoned connection: drop it
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict | bytes]:
        if method == "GET" and path == "/healthz":
            return 200, {
                "ok": True,
                "state": "draining" if self._draining else "serving",
            }
        if method == "GET" and path == "/stats":
            return 200, self.stats_payload()
        if method == "POST" and path == "/submit":
            return await self._submit(body)
        if method == "GET" and path.startswith("/status/"):
            return self._status(path.removeprefix("/status/"))
        if method == "GET" and path.startswith("/result/"):
            return self._result(path.removeprefix("/result/"))
        if method == "POST" and path.startswith("/cancel/"):
            return await self._cancel(path.removeprefix("/cancel/"))
        return 404, {"error": f"no route for {method} {path}"}

    async def _submit(self, body: bytes) -> tuple[int, dict]:
        self.counters.inc("requests_submit")
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}

        kind = payload.get("kind")
        try:
            handler = resolve_request_kind(kind if isinstance(kind, str) else "")
        except UnknownNameError as exc:
            self.counters.inc("requests_rejected")
            return 400, {"error": str(exc)}

        priority = payload.get("priority", 0)
        if not isinstance(priority, int) or isinstance(priority, bool):
            return 400, {"error": f"priority must be an integer, got {priority!r}"}

        request_payload = payload.get("request", {})
        if not isinstance(request_payload, dict):
            return 400, {"error": "field 'request' must be an object"}
        try:
            request = handler.request_cls.from_wire(request_payload)
            handler.validate(request)
        except RequestError as exc:
            self.counters.inc("requests_rejected")
            return 400, {"error": str(exc)}

        if self._draining:
            self.counters.inc("requests_rejected")
            return 503, {
                "error": "service draining: finishing running jobs, not"
                " admitting new ones; resubmit to the next daemon"
            }
        if request.jobs > self.backend.worker_budget:
            self.counters.inc("requests_rejected")
            return 429, {
                "error": f"requested jobs={request.jobs} exceeds the"
                f" worker budget ({self.backend.worker_budget});"
                f" lower --jobs or raise --worker-budget"
            }

        assert self._work is not None
        async with self._work:
            digest = request_digest(handler.kind, request.to_wire())
            primary_id = self._primary_by_digest.get(digest)
            if primary_id is not None:
                # Identical request already queued or running: admit the
                # job as a *follower* — journaled and pollable like any
                # job, but never dispatched; it takes no queue slot and
                # receives the primary's result bytes when it finishes.
                job = JobRecord(
                    id=job_id_for(self._seq),
                    kind=handler.kind,
                    priority=priority,
                    seq=self._seq,
                    request=request.to_wire(),
                )
                self._seq += 1
                self.jobs[job.id] = job
                self.store.record(job)
                self._followers.setdefault(primary_id, []).append(job.id)
                self.counters.inc("jobs_admitted")
                self.counters.inc("jobs_coalesced")
                return 202, {
                    "job_id": job.id,
                    "state": QUEUED,
                    "queue_depth": len(self.queue),
                    "coalesced_with": primary_id,
                }
            job = JobRecord(
                id=job_id_for(self._seq),
                kind=handler.kind,
                priority=priority,
                seq=self._seq,
                request=request.to_wire(),
            )
            try:
                self.queue.admit(job)
            except AdmissionError as exc:
                self.counters.inc("requests_rejected")
                return 429, {"error": exc.reason}
            self._seq += 1
            self.jobs[job.id] = job
            self.store.record(job)
            self._primary_by_digest[digest] = job.id
            self._digest_by_job[job.id] = digest
            self.counters.inc("jobs_admitted")
            depth = len(self.queue)
            self._work.notify_all()
        return 202, {"job_id": job.id, "state": QUEUED, "queue_depth": depth}

    def _status(self, job_id: str) -> tuple[int, dict]:
        self.counters.inc("requests_status")
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        return 200, job.status_payload()

    def _result(self, job_id: str) -> tuple[int, dict | bytes]:
        self.counters.inc("requests_result")
        job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": f"unknown job {job_id!r}"}
        if job.state != DONE:
            return 409, {
                "error": f"job {job_id} is {job.state}, not done",
                "state": job.state,
                **({"job_error": job.error} if job.error else {}),
            }
        data = self.store.read_result(job_id)
        if data is None:
            return 404, {"error": f"result file for {job_id} is missing"}
        return 200, data

    async def _cancel(self, job_id: str) -> tuple[int, dict]:
        self.counters.inc("requests_cancel")
        assert self._work is not None
        async with self._work:
            job = self.jobs.get(job_id)
            if job is None:
                return 404, {"error": f"unknown job {job_id!r}"}
            if job.state == QUEUED:
                if self.queue.remove(job_id) is not None:
                    job.state = CANCELLED
                    self.store.record(job)
                    self.counters.inc("jobs_cancelled")
                    digest = self._digest_by_job.pop(job_id, None)
                    if digest is not None:
                        self._primary_by_digest.pop(digest, None)
                        self._promote_follower(job_id, digest)
                    return 200, job.status_payload()
                primary_id = self._primary_of_follower(job_id)
                if primary_id is not None:
                    # A coalesced follower: detach it from its primary
                    # (which keeps running for the other waiters).
                    self._followers[primary_id].remove(job_id)
                    job.state = CANCELLED
                    self.store.record(job)
                    self.counters.inc("jobs_cancelled")
                    return 200, job.status_payload()
            return 409, {
                "error": f"job {job_id} is {job.state};"
                " only queued jobs can be cancelled"
            }

    def _primary_of_follower(self, job_id: str) -> str | None:
        for primary_id, followers in self._followers.items():
            if job_id in followers:
                return primary_id
        return None

    def _promote_follower(self, primary_id: str, digest: str) -> None:
        """A queued primary was cancelled: its oldest follower inherits
        the run (and the remaining followers).  Called under ``_work``;
        uses ``requeue`` because followers were already admitted once —
        promotion must never bounce off a full queue."""
        followers = self._followers.pop(primary_id, [])
        if not followers:
            return
        new_primary = self.jobs[followers.pop(0)]
        self.queue.requeue(new_primary)
        self._primary_by_digest[digest] = new_primary.id
        self._digest_by_job[new_primary.id] = digest
        if followers:
            self._followers[new_primary.id] = followers
        self.counters.inc("jobs_promoted")
        assert self._work is not None
        self._work.notify_all()  # caller holds the lock; wake the dispatcher

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def stats_payload(self) -> dict:
        by_state = {state: 0 for state in JOB_STATES}
        for job in self.jobs.values():
            by_state[job.state] += 1
        return {
            "uptime_s": round(time.monotonic() - self._started, 3),
            "pid": os.getpid(),
            "queue": {
                "depth": len(self.queue),
                "max_depth": self.config.max_queue,
                "inflight": self._inflight,
                "max_inflight": self.config.max_inflight,
                "coalesced_waiting": sum(
                    len(f) for f in self._followers.values()
                ),
                "hold": self._hold,
                "draining": self._draining,
            },
            "jobs": by_state,
            "request_kinds": list(request_kind_names()),
            "counters": self.counters.snapshot(),
            "cache": self.backend.cache_stats(),
        }
