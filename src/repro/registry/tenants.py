"""The tenant-layout registry: layout name -> co-tenant bitstream builder.

A tenant layout synthesizes the configuration bitstream for a co-resident
fabric tenant (:mod:`repro.pfm.tenancy`) *from the primary tenant's
bitstream*: an observe-only introspection tenant, for example, mirrors
the primary's Retire Snoop Table so it sees the same retired stream
without programming any fetch-side overrides.  Layouts are referenced by
name through the ``--tenant name[:priority]`` CLI surface and
``TenantSpec.component``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.registry.base import Registry

if TYPE_CHECKING:
    from repro.pfm.snoop import Bitstream
    from repro.pfm.tenancy import TenantSpec

TenantLayout = Callable[["Bitstream", "TenantSpec"], "Bitstream"]

TENANT_LAYOUTS: Registry[TenantLayout] = Registry(
    "tenant layout",
    autoload=("repro.pfm.components.introspect",),
)


def register_tenant_layout(name: str) -> Callable[[TenantLayout], TenantLayout]:
    """Decorator: register a co-tenant bitstream builder under *name*."""
    return TENANT_LAYOUTS.register(name)


def resolve_tenant_layout(name: str) -> TenantLayout:
    return TENANT_LAYOUTS.get(name)


def tenant_layout_names() -> tuple[str, ...]:
    return TENANT_LAYOUTS.names()


def build_tenant_bitstream(
    spec: "TenantSpec", primary: "Bitstream"
) -> "Bitstream":
    """Synthesize the bitstream for one co-tenant slot.

    The layout named by ``spec.component`` is applied to the primary
    tenant's bitstream; unknown layout names raise the registry's
    :class:`~repro.registry.base.UnknownNameError` listing every valid
    layout.
    """
    return resolve_tenant_layout(spec.component)(primary, spec)
