"""Registry of service request kinds (the daemon's job vocabulary).

The simulation service (:mod:`repro.service`) accepts typed requests —
``simulate``, ``sweep``, ``trace`` — each backed by a handler that knows
how to parse the wire payload and run it through a :class:`SweepPool`.
Handlers register here exactly like workloads and components register in
their registries, so ``python -m repro.experiments list`` can enumerate
what the daemon will accept, and adding a new request kind is one
``@register_request_kind`` decorator in :mod:`repro.service.handlers`.
"""

from __future__ import annotations

from typing import Callable, Protocol

from repro.registry.base import Registry


class ServiceRequestKind(Protocol):
    """What a registered request handler must expose to be listable."""

    kind: str
    summary: str


#: Request-kind handlers, autoloaded from the service handler module.
SERVICE_KINDS: Registry[ServiceRequestKind] = Registry(
    "service request kind", autoload=("repro.service.handlers",)
)


def register_request_kind(
    name: str,
) -> Callable[[ServiceRequestKind], ServiceRequestKind]:
    """Decorator: register a request handler under *name*."""
    return SERVICE_KINDS.register(name)


def resolve_request_kind(name: str) -> ServiceRequestKind:
    """Handler registered under *name*, or :class:`UnknownNameError`."""
    return SERVICE_KINDS.get(name)


def request_kind_names() -> tuple[str, ...]:
    """All registered request kinds, in registration order."""
    return SERVICE_KINDS.names()
