"""Generic name-to-factory registry with decorator registration.

The paper's attachment story is that application-specific pieces are
*enumerable and swappable*: a configuration bitstream names a component,
a deployment names a workload, a core configuration names a predictor.
This module supplies the one mechanism all of those share — a mapping
from a stable string name to a factory, populated by decorators at
module import time and consulted by name everywhere else.

Registries autoload lazily: each lists the modules whose import
registers its entries, and imports them on first lookup or enumeration.
That keeps ``import repro.registry`` free of heavy transitive imports
while guaranteeing that ``names()`` is complete whenever it is called.

Unknown names raise :class:`UnknownNameError` (a ``ValueError``) that
lists every valid name and suggests close matches; duplicate
registrations raise :class:`DuplicateNameError` immediately at import.
"""

from __future__ import annotations

import difflib
import importlib
from typing import Callable, Generic, Iterator, TypeVar

T = TypeVar("T")


class RegistryError(ValueError):
    """Base class for registry failures (a ``ValueError`` for callers
    that predate the registry layer and catch the old error type)."""


class DuplicateNameError(RegistryError):
    """Two registrations claimed the same name in one registry."""


class UnknownNameError(RegistryError):
    """Lookup of a name nothing registered; carries suggestions."""


class Registry(Generic[T]):
    """An ordered ``name -> entry`` mapping with decorator registration.

    ``kind`` names what the registry holds ("workload", "component", ...)
    for error messages; ``autoload`` lists modules to import before the
    first lookup/enumeration (their import-time decorators populate the
    registry).  Iteration order is registration order, which for
    autoloaded registries is the ``autoload`` module order — stable, so
    enumerations (CLI ``list``, sweep grids) are deterministic.
    """

    def __init__(self, kind: str, autoload: tuple[str, ...] = ()) -> None:
        self.kind = kind
        self._autoload = tuple(autoload)
        self._loaded = not autoload
        self._entries: dict[str, T] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #

    def register(self, name: str) -> Callable[[T], T]:
        """Decorator: register the decorated object under *name*.

        Returns the object unchanged, so registration stacks with other
        decorators and leaves the module namespace untouched.
        """
        if not name or not isinstance(name, str):
            raise RegistryError(
                f"{self.kind} names must be non-empty strings, got {name!r}"
            )

        def decorate(obj: T) -> T:
            if name in self._entries:
                raise DuplicateNameError(
                    f"duplicate {self.kind} name {name!r}: already "
                    f"registered as {self._entries[name]!r}"
                )
            self._entries[name] = obj
            return obj

        return decorate

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #

    def _ensure_loaded(self) -> None:
        if self._loaded:
            return
        self._loaded = True  # set first: autoloaded modules may look up
        for module in self._autoload:
            importlib.import_module(module)

    def get(self, name: str) -> T:
        """Entry registered under *name*, or :class:`UnknownNameError`."""
        self._ensure_loaded()
        try:
            return self._entries[name]
        except KeyError:
            raise UnknownNameError(self.unknown_message(name)) from None

    def unknown_message(self, name: str) -> str:
        """The error text for a failed lookup: near-misses, then all names."""
        known = self.names()
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.6)
        hint = ""
        if suggestions:
            hint = "; did you mean " + " or ".join(
                repr(match) for match in suggestions
            ) + "?"
        return (
            f"unknown {self.kind} {name!r}{hint}"
            f" (valid: {', '.join(known)})"
        )

    def names(self) -> tuple[str, ...]:
        """All registered names, in registration order."""
        self._ensure_loaded()
        return tuple(self._entries)

    def items(self) -> tuple[tuple[str, T], ...]:
        self._ensure_loaded()
        return tuple(self._entries.items())

    def __contains__(self, name: str) -> bool:
        self._ensure_loaded()
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        self._ensure_loaded()
        return len(self._entries)

    def __repr__(self) -> str:
        status = "loaded" if self._loaded else "unloaded"
        return (
            f"<Registry {self.kind}: {len(self._entries)} entries"
            f" ({status})>"
        )
