"""The custom-component registry: component name -> factory.

A component factory is what a :class:`~repro.pfm.snoop.Bitstream`
carries — called with ``(RFTimings, MemoryImage, metadata)`` when the
fabric is programmed.  Registration happens in the
``repro.pfm.components`` modules; workload builders then reference
components *by name* through :func:`make_bitstream`, so swapping the
synthesized microarchitecture is a registry lookup, not an import edit —
the paper's post-fabrication story.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.registry.base import Registry

if TYPE_CHECKING:
    from repro.pfm.snoop import Bitstream, FSTEntry, RSTEntry

ComponentFactory = Callable[..., object]

COMPONENTS: Registry[ComponentFactory] = Registry(
    "component",
    autoload=(
        "repro.pfm.components.astar_bp",
        "repro.pfm.components.astar_alt",
        "repro.pfm.components.bfs_engine",
        "repro.pfm.components.prefetchers",
        "repro.pfm.components.template",
        "repro.pfm.components.introspect",
    ),
)


def register_component(
    name: str,
) -> Callable[[ComponentFactory], ComponentFactory]:
    """Decorator: register a component factory under *name*."""
    return COMPONENTS.register(name)


def resolve_component(spec: str | ComponentFactory) -> ComponentFactory:
    """A component factory from a registry name or a callable.

    Callables pass through untouched so tests and experiments can inject
    ad-hoc components without registering them first.
    """
    if callable(spec):
        return spec
    return COMPONENTS.get(spec)


def component_names() -> tuple[str, ...]:
    return COMPONENTS.names()


def make_bitstream(
    name: str,
    *,
    component: str | ComponentFactory,
    rst_entries: Iterable["RSTEntry"],
    fst_entries: Iterable["FSTEntry"] = (),
    metadata: Mapping[str, object] | None = None,
) -> "Bitstream":
    """Assemble a configuration bitstream around a registered component.

    This is the one construction path every workload uses: snoop-table
    entries plus a component reference (registry name or factory) plus
    the structural metadata the sensitivity sweeps override.
    """
    from repro.pfm.snoop import Bitstream

    return Bitstream(
        name=name,
        rst_entries=list(rst_entries),
        fst_entries=list(fst_entries),
        component_factory=resolve_component(component),
        metadata=dict(metadata or {}),
    )


def rebuild_component(
    bitstream: "Bitstream",
    timings,
    memory,
    overrides: Mapping[str, object] | None = None,
):
    """Re-synthesize a bitstream's component (reprogram / hot reload).

    The factory runs from scratch — no state survives.  That is both the
    Section 2.4 context-isolation guarantee and what makes a reload heal
    a corrupted configuration: the bitstream, not the dying instance, is
    the source of truth.  Used by ``PFMFabric.reprogram`` and the
    :class:`~repro.pfm.reconfig.ReconfigController` hot-swap path.
    """
    metadata = dict(bitstream.metadata)
    metadata.update(overrides or {})
    return bitstream.component_factory(timings, memory, metadata)
