"""The branch-predictor registry: predictor name -> constructor.

The core's own predictor (the one the Fetch Agent merely overrides on
FST hits, §2.2) is selected by :attr:`repro.core.params.CoreParams.
predictor`; the paper's baseline is TAGE-SC-L, and the simple reference
predictors ride along for ablations and tests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.registry.base import Registry

if TYPE_CHECKING:
    from repro.frontend.predictor import BranchPredictor

PredictorFactory = Callable[..., "BranchPredictor"]

PREDICTORS: Registry[PredictorFactory] = Registry(
    "predictor",
    autoload=(
        "repro.frontend.tagescl",
        "repro.frontend.simple",
    ),
)


def register_predictor(
    name: str,
) -> Callable[[PredictorFactory], PredictorFactory]:
    """Decorator: register a branch-predictor constructor under *name*."""
    return PREDICTORS.register(name)


def make_predictor(name: str, **kwargs: object) -> "BranchPredictor":
    """Construct the predictor registered under *name*."""
    return PREDICTORS.get(name)(**kwargs)


def predictor_names() -> tuple[str, ...]:
    return PREDICTORS.names()
