"""The hardware-prefetcher registry: prefetcher name -> constructor.

These are the *core-side* cache prefetchers the memory hierarchy trains
on its demand streams (next-N-line into L1D, VLDP into L2), selected by
:class:`~repro.memory.hierarchy.HierarchyParams` — distinct from the
application-specific prefetch *components* synthesized in RF, which live
in the component registry.
"""

from __future__ import annotations

from typing import Callable

from repro.registry.base import Registry

PrefetcherFactory = Callable[..., object]

PREFETCHERS: Registry[PrefetcherFactory] = Registry(
    "prefetcher",
    autoload=(
        "repro.memory.prefetch_nextline",
        "repro.memory.prefetch_vldp",
    ),
)


def register_prefetcher(
    name: str,
) -> Callable[[PrefetcherFactory], PrefetcherFactory]:
    """Decorator: register a prefetcher constructor under *name*."""
    return PREFETCHERS.register(name)


def make_prefetcher(name: str, **kwargs: object) -> object:
    """Construct the prefetcher registered under *name*."""
    return PREFETCHERS.get(name)(**kwargs)


def prefetcher_names() -> tuple[str, ...]:
    return PREFETCHERS.names()
