"""The workload registry: benchmark name -> fresh-workload builder.

Builders are registered by :func:`register_workload` decorators in the
``repro.workloads`` modules (the ``autoload`` list below); each call to
:func:`build_workload` constructs a *fresh* workload — graphs and grids
are seeded, so repeated builds have identical initial state, and the
memory image is mutated by execution, so runs must never share one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.registry.base import Registry

if TYPE_CHECKING:
    from repro.workloads.base import Workload

WorkloadBuilder = Callable[..., "Workload"]

#: Registration order here fixes the enumeration order everywhere
#: (sweep grids, golden-test ids, the CLI ``list`` output).
WORKLOADS: Registry[WorkloadBuilder] = Registry(
    "workload",
    autoload=(
        "repro.workloads.astar",
        "repro.workloads.bfs",
        "repro.workloads.libquantum",
        "repro.workloads.bwaves",
        "repro.workloads.lbm",
        "repro.workloads.milc",
        "repro.workloads.leslie",
    ),
)


def register_workload(name: str) -> Callable[[WorkloadBuilder], WorkloadBuilder]:
    """Decorator: register a workload builder under *name*."""
    return WORKLOADS.register(name)


def build_workload(name: str, **overrides: object) -> "Workload":
    """Fresh workload by benchmark name (builder kwargs as overrides).

    The built workload is stamped with its compiled-trace identity
    (:func:`repro.workloads.tracecache.annotate`) so ``simulate()`` can
    replay a cached correct-path stream instead of re-executing it.
    """
    from repro.workloads.tracecache import annotate

    workload = WORKLOADS.get(name)(**overrides)
    annotate(workload, name, dict(overrides))
    return workload


def workload_names() -> tuple[str, ...]:
    """All registered benchmark names, in registration order."""
    return WORKLOADS.names()
