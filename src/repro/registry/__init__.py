"""Pluggable registries for every post-fabrication attachment point.

The paper's premise is that application-specific pieces plug into fixed
interfaces after fabrication; this package is the software analogue:
adding a workload, a custom component, a branch predictor, or a cache
prefetcher is one ``@register_*`` decorator, and every consumer (the
``sim``/``sweep``/``faults``/``trace`` CLIs, the sweep pool's worker
processes, the golden harness) resolves names through here.

``python -m repro.experiments list`` enumerates everything registered.
"""

from repro.registry.backends import (
    BACKENDS,
    backend_names,
    make_backend,
    register_backend,
)
from repro.registry.base import (
    DuplicateNameError,
    Registry,
    RegistryError,
    UnknownNameError,
)
from repro.registry.components import (
    COMPONENTS,
    component_names,
    make_bitstream,
    register_component,
    resolve_component,
)
from repro.registry.predictors import (
    PREDICTORS,
    make_predictor,
    predictor_names,
    register_predictor,
)
from repro.registry.prefetchers import (
    PREFETCHERS,
    make_prefetcher,
    prefetcher_names,
    register_prefetcher,
)
from repro.registry.tenants import (
    TENANT_LAYOUTS,
    build_tenant_bitstream,
    register_tenant_layout,
    resolve_tenant_layout,
    tenant_layout_names,
)
from repro.registry.service import (
    SERVICE_KINDS,
    register_request_kind,
    request_kind_names,
    resolve_request_kind,
)
from repro.registry.workloads import (
    WORKLOADS,
    build_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "Registry",
    "RegistryError",
    "DuplicateNameError",
    "UnknownNameError",
    "WORKLOADS",
    "register_workload",
    "build_workload",
    "workload_names",
    "COMPONENTS",
    "register_component",
    "resolve_component",
    "component_names",
    "make_bitstream",
    "PREDICTORS",
    "register_predictor",
    "make_predictor",
    "predictor_names",
    "PREFETCHERS",
    "register_prefetcher",
    "make_prefetcher",
    "prefetcher_names",
    "BACKENDS",
    "register_backend",
    "make_backend",
    "backend_names",
    "SERVICE_KINDS",
    "register_request_kind",
    "resolve_request_kind",
    "request_kind_names",
    "TENANT_LAYOUTS",
    "register_tenant_layout",
    "resolve_tenant_layout",
    "tenant_layout_names",
    "build_tenant_bitstream",
]
