"""The execution-backend registry: backend name -> constructor.

The cycle engine's hot loop is swappable (ISSUE 6): the reference
``python`` backend walks every instruction through the four stage
objects, while the ``numpy`` backend replays a warm compiled trace in
vectorized chunks.  :attr:`repro.core.params.CoreParams.backend` selects
by name through this registry (``"auto"`` resolves via
:func:`repro.backends.resolve_backend`), so a third engine — a JIT, a
Rust extension — is one ``@register_backend`` decorator away.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.registry.base import Registry

if TYPE_CHECKING:
    from repro.backends.base import ExecutionBackend

BackendFactory = Callable[..., "ExecutionBackend"]

BACKENDS: Registry[BackendFactory] = Registry(
    "backend",
    autoload=(
        "repro.backends.python_backend",
        "repro.backends.numpy_backend",
    ),
)


def register_backend(
    name: str,
) -> Callable[[BackendFactory], BackendFactory]:
    """Decorator: register an execution-backend constructor under *name*."""
    return BACKENDS.register(name)


def make_backend(name: str, **kwargs: object) -> "ExecutionBackend":
    """Construct the execution backend registered under *name*."""
    return BACKENDS.get(name)(**kwargs)


def backend_names() -> tuple[str, ...]:
    return BACKENDS.names()
