"""Command-line simulation driver.

Examples::

    python -m repro.sim --workload astar --window 30000
    python -m repro.sim --workload astar --pfm "clk4_w4, delay4, portLS1"
    python -m repro.sim --workload bfs-roads --perfect-bp --perfect-dcache
    python -m repro.sim --workload libquantum --pfm clk4_w1 --report

``--pfm`` takes the paper's Section 3 notation; ``--compare`` also runs
the plain baseline and prints the speedup; ``--report`` adds the detailed
breakdown (per-level cache stats, stall cycles, agent activity, energy).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro.backends.base import ENV_VAR as BACKEND_ENV_VAR
from repro.core import CoreParams, SimConfig, SimStats, simulate
from repro.experiments.report import aligned_rows
from repro.experiments.runner import parse_config_label
from repro.power.core_energy import CoreEnergyModel
from repro.registry import build_workload, workload_names


def detailed_report(stats: SimStats) -> str:
    lines = [stats.summary(), ""]
    lines.append("memory hierarchy:")
    lines.extend(aligned_rows(
        [
            (
                level,
                f"accesses {level_stats['accesses']:>8.0f}"
                f"  misses {level_stats['misses']:>8.0f}"
                f"  miss rate {100 * level_stats['miss_rate']:5.1f}%",
            )
            for level, level_stats in (stats.memory_levels or {}).items()
        ],
        indent="  ",
        min_width=4,
    ))
    lines.append(f"  load hits by level: {stats.load_hits_by_level}")
    lines.append("")
    lines.append("front end:")
    lines.extend(aligned_rows(
        [
            ("I-cache stall cycles", str(stats.fetch_stall_icache_cycles)),
            ("BTB miss bubbles", str(stats.btb_miss_bubbles)),
            ("RAS mispredicts", str(stats.ras_mispredicts)),
            ("store forwards", str(stats.store_forwards)),
        ],
        indent="  ",
    ))
    if stats.agent_loads or stats.agent_prefetches:
        lines.append("")
        lines.append("load agent:")
        lines.extend(aligned_rows(
            [
                ("loads issued", str(stats.agent_loads)),
                ("prefetches issued", str(stats.agent_prefetches)),
                ("missed loads / replays",
                 f"{stats.agent_load_misses} / {stats.mlb_replays}"),
                ("PRF port delay cycles", str(stats.prf_port_delay_cycles)),
            ],
            indent="  ",
        ))
    energy = CoreEnergyModel().energy(stats)
    lines.append("")
    lines.append(
        f"core energy: {energy.total_nj / 1000:.1f} uJ "
        f"(dynamic {energy.dynamic_nj / 1000:.1f}, "
        f"speculation {energy.wasted_speculation_nj / 1000:.1f}, "
        f"static {energy.static_nj / 1000:.1f})"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim",
        description="Simulate a workload on the PFM substrate.",
    )
    parser.add_argument("--workload", choices=workload_names(), required=True)
    parser.add_argument("--window", type=int, default=40_000,
                        help="dynamic instructions to simulate")
    parser.add_argument("--pfm", metavar="CONFIG", default=None,
                        help='PFM parameters, e.g. "clk4_w4, delay4, portLS1"')
    parser.add_argument("--tenant", metavar="LAYOUT[:PRIO]", action="append",
                        default=[], dest="tenants",
                        help="co-resident fabric tenant (repeatable), e.g."
                             " introspect or branch-mirror:background;"
                             " requires --pfm")
    parser.add_argument("--perfect-bp", action="store_true",
                        help="idealize branch prediction")
    parser.add_argument("--perfect-dcache", action="store_true",
                        help="idealize the data cache")
    parser.add_argument("--backend", choices=("auto", "python", "numpy"),
                        default="auto",
                        help="execution backend (auto honours $REPRO_BACKEND"
                             " and picks numpy when importable; ineligible"
                             " runs fall back to python)")
    parser.add_argument("--compare", action="store_true",
                        help="also run the plain baseline and report speedup")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for --compare (treated and"
                             " baseline run concurrently when N > 1)")
    parser.add_argument("--report", action="store_true",
                        help="print the detailed breakdown")
    parser.add_argument("--profile", metavar="FILE", nargs="?",
                        const="sim-profile.pstats", default=None,
                        help="profile the run under cProfile and write a"
                             " pstats dump (default sim-profile.pstats;"
                             " inspect with python -m pstats FILE)")
    args = parser.parse_args(argv)

    pfm = parse_config_label(args.pfm) if args.pfm else None
    if args.tenants:
        if pfm is None:
            parser.error("--tenant requires --pfm (co-tenants share the"
                         " primary tenant's fabric)")
        from dataclasses import replace

        from repro.pfm.tenancy import parse_tenant_spec

        try:
            specs = tuple(parse_tenant_spec(t) for t in args.tenants)
        except ValueError as exc:
            parser.error(str(exc))
        pfm = replace(pfm, tenants=specs)
    if args.backend != "auto":
        # Also reaches SweepPool workers (auto-selecting runs consult
        # $REPRO_BACKEND; see repro.backends.resolve_backend).
        os.environ[BACKEND_ENV_VAR] = args.backend

    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()

    started = time.time()
    baseline = None
    if args.compare and args.jobs > 1:
        from repro.experiments.pool import SweepPoint, SweepPool

        treated_point = SweepPoint(
            label="treated",
            workload=args.workload,
            window=args.window,
            pfm=pfm,
            perfect_branch_prediction=args.perfect_bp,
            perfect_dcache=args.perfect_dcache,
        )
        points = [treated_point]
        if treated_point.is_baseline:
            baseline_point = treated_point  # comparing a baseline to itself
        else:
            baseline_point = SweepPoint(
                label="baseline", workload=args.workload, window=args.window
            )
            points.append(baseline_point)
        results = SweepPool(jobs=args.jobs).run(points)
        stats = results["treated"]
        baseline = results[baseline_point.label]
    else:
        config = SimConfig(
            core=CoreParams(backend=args.backend),
            max_instructions=args.window,
            pfm=pfm,
            perfect_branch_prediction=args.perfect_bp,
            perfect_dcache=args.perfect_dcache,
        )
        stats = simulate(build_workload(args.workload), config)
        if args.compare:
            baseline = simulate(
                build_workload(args.workload),
                SimConfig(
                    core=CoreParams(backend=args.backend),
                    max_instructions=args.window,
                ),
            )
    elapsed = time.time() - started
    if profiler is not None:
        profiler.disable()
        profiler.dump_stats(args.profile)

    print(f"workload {args.workload}, window {args.window} "
          f"({elapsed:.1f}s wall clock)")
    if profiler is not None:
        print(f"cProfile dump written to {args.profile}"
              f" (inspect with: python -m pstats {args.profile})")
    if pfm is not None:
        print(f"PFM: {pfm.label()}")
    print()
    print(detailed_report(stats) if args.report else stats.summary())

    if args.compare and baseline is not None:
        print()
        print(f"baseline IPC {baseline.ipc:.3f} -> {stats.ipc:.3f}: "
              f"{100 * stats.speedup_over(baseline):+.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
