"""Declarative fault plans.

A :class:`FaultPlan` is pure data: picklable (sweep points carry it into
worker processes), hashable into sweep-point config keys via
``dataclasses.asdict``, and seed-deterministic — the injector derives all
randomness from ``seed``, so a fixed plan yields byte-identical results
regardless of worker count or scheduling order.

Probabilities are per-packet event rates; ``0.0`` disables an injector.
The :data:`BUILTIN_PLANS` registry names one plan per failure family the
ISSUE's threat model calls out; the ``faults`` campaign sweeps all of
them, and the equivalence oracle must pass for every one.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FaultPlan:
    """Seed-deterministic corruption of the core/RF communication fabric."""

    name: str = "custom"
    seed: int = 0

    # ObsQ-R: Retire Agent -> component observation packets
    obs_drop: float = 0.0
    obs_dup: float = 0.0
    obs_corrupt: float = 0.0  # bit-flip dest/store value or branch outcome

    # IntQ-F: component -> Fetch Agent branch predictions
    pred_drop: float = 0.0  # lost in transit (stream misaligns)
    pred_garbage: float = 0.0  # direction replaced with a coin flip
    pred_stuck: str | None = None  # "taken" | "not_taken" | None

    # IntQ-IS: component -> Load Agent injected loads/prefetches
    load_drop: float = 0.0
    load_dup: float = 0.0
    load_corrupt: float = 0.0  # bit-flip the address (agent must sanitize)

    # ObsQ-EX: Load Agent -> component load returns
    ret_drop: float = 0.0
    ret_corrupt: float = 0.0  # bit-flip the returned value

    # squash / squash-done protocol
    squash_done_delay: int = 0  # extra core cycles on every squash-done
    squash_done_lose: float = 0.0  # probability squash-done never arrives

    # component liveness: frozen clkC from this RF cycle on ("dead
    # component": IntQ-F never refills, ObsQ-R never drains)
    dead_at_rf_cycle: int | None = None

    # MLB overflow pressure: shrink the Missed Load Buffer to this size
    mlb_entries_override: int | None = None

    # reconfiguration path (repro.pfm.reconfig): every bitstream reload
    # stalls this many extra core cycles, and the first N replacement
    # components arrive dead (frozen from the reload on) — recovery of
    # recovery.  A reload past the dead ones scrubs all injected faults
    # (the FPGA SEU-scrubbing model).
    reconfig_stall_cycles: int = 0
    reconfig_dead_reloads: int = 0

    def __post_init__(self) -> None:
        for field_name in (
            "obs_drop", "obs_dup", "obs_corrupt", "pred_drop",
            "pred_garbage", "load_drop", "load_dup", "load_corrupt",
            "ret_drop", "ret_corrupt", "squash_done_lose",
        ):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.pred_stuck not in (None, "taken", "not_taken"):
            raise ValueError(f"unknown pred_stuck {self.pred_stuck!r}")
        if self.mlb_entries_override is not None and self.mlb_entries_override < 1:
            raise ValueError("mlb_entries_override must be >= 1")
        if self.reconfig_stall_cycles < 0:
            raise ValueError("reconfig_stall_cycles must be >= 0")
        if self.reconfig_dead_reloads < 0:
            raise ValueError("reconfig_dead_reloads must be >= 0")


#: One built-in plan per failure family.  Every one of these must pass
#: the architectural-equivalence oracle (tests/test_faults.py).
BUILTIN_PLANS: dict[str, FaultPlan] = {
    plan.name: plan
    for plan in (
        FaultPlan(name="drop-obs", obs_drop=0.05),
        FaultPlan(name="dup-obs", obs_dup=0.05),
        FaultPlan(name="corrupt-obs", obs_corrupt=0.10),
        FaultPlan(name="drop-pred", pred_drop=0.05),
        FaultPlan(name="garbage-pred", pred_garbage=0.25),
        FaultPlan(name="stuck-taken", pred_stuck="taken"),
        FaultPlan(
            name="flaky-loads",
            load_drop=0.10,
            load_dup=0.05,
            load_corrupt=0.05,
            ret_drop=0.02,
            ret_corrupt=0.10,
        ),
        FaultPlan(
            name="lost-squash-done",
            squash_done_delay=32,
            squash_done_lose=0.5,
        ),
        FaultPlan(name="dead-component", dead_at_rf_cycle=1_000),
        FaultPlan(
            name="delayed-reconfig",
            dead_at_rf_cycle=1_000,
            reconfig_stall_cycles=512,
            reconfig_dead_reloads=1,
        ),
        FaultPlan(name="mlb-thrash", mlb_entries_override=2),
        FaultPlan(
            name="chaos",
            obs_drop=0.02,
            obs_dup=0.02,
            obs_corrupt=0.05,
            pred_drop=0.02,
            pred_garbage=0.10,
            load_drop=0.05,
            load_corrupt=0.02,
            ret_drop=0.01,
            ret_corrupt=0.05,
            squash_done_delay=8,
            squash_done_lose=0.1,
        ),
    )
}


def get_plan(name: str, seed: int = 0) -> FaultPlan:
    """Look up a built-in plan, optionally re-seeded."""
    try:
        plan = BUILTIN_PLANS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; known: {sorted(BUILTIN_PLANS)}"
        )
    if seed == plan.seed:
        return plan
    import dataclasses

    return dataclasses.replace(plan, seed=seed)
