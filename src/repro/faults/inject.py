"""Seed-deterministic fault injectors for the PFM fabric.

One :class:`FaultInjector` instance lives on a
:class:`~repro.pfm.fabric.PFMFabric` when its ``PFMParams.fault_plan`` is
set.  The fabric consults it at every queue boundary — observation pushes
(ObsQ-R), prediction pushes (IntQ-F), load-packet pushes (IntQ-IS), load
returns (ObsQ-EX) and the squash/squash-done handshake — so corruption
happens *in transit*, exactly where the paper's clock-domain crossings
sit, never inside architectural state.

Injectors only ever mutate copies of packets.  The shared
:class:`~repro.workloads.mem.MemoryImage` and the dynamic instruction
stream are untouchable by construction, which is what lets the
architectural-equivalence oracle demand bit-identical retired state.

All randomness flows from ``random.Random(f"{seed}:{name}")`` — a string
seed, hashed with SHA-512 internally, so decision streams are stable
across processes and Python invocations (no ``hash()`` salting).
"""

from __future__ import annotations

import dataclasses
import random

from repro.faults.plan import FaultPlan
from repro.pfm.packets import LoadPacket, LoadReturn, ObsPacket

#: Bits eligible for flipping in corrupted values/addresses.  Kept within
#: the low bits so corrupted quantities stay in a plausible numeric range
#: (the point is wrong hints, not Python overflow artifacts).
_FLIP_BITS = 20


class FaultInjector:
    """Applies one :class:`FaultPlan` at the fabric's queue boundaries."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(f"{plan.seed}:{plan.name}")
        self.counts: dict[str, int] = {}
        #: A bitstream reload past the plan's dead-on-arrival count scrubs
        #: the fault (FPGA SEU-scrubbing model): the injector goes quiet.
        self._healed = False
        self._reloads_seen = 0
        self._dead_from = plan.dead_at_rf_cycle

    # ------------------------------------------------------------------ #

    def _fire(self, probability: float, kind: str) -> bool:
        if probability <= 0.0:
            return False
        if self._rng.random() >= probability:
            return False
        self.counts[kind] = self.counts.get(kind, 0) + 1
        return True

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _flip_bit(self, value: float) -> float:
        corrupted = int(value) ^ (1 << self._rng.randrange(_FLIP_BITS))
        return float(corrupted) if isinstance(value, float) else corrupted

    # ------------------------------------------------------------------ #
    # component liveness
    # ------------------------------------------------------------------ #

    def component_frozen(self, rf_cycle: int) -> bool:
        """True once clkC is dead: the component never steps again.

        A bitstream reload moves (dead-on-arrival replacement) or clears
        (successful scrub) the freeze point; see :meth:`on_reconfig`.
        """
        dead_at = self._dead_from
        if dead_at is None or rf_cycle < dead_at:
            return False
        if "component_frozen" not in self.counts:
            self._count("component_frozen")
        return True

    def on_reconfig(self, rf_cycle: int) -> int:
        """One bitstream reload completed at RF cycle *rf_cycle*.

        Returns extra core cycles the reload itself stalls.  The first
        ``reconfig_dead_reloads`` replacement components arrive dead
        (frozen from the reload on — recovery of recovery); a reload past
        those scrubs every injected fault, after which the injector goes
        quiet for the rest of the run.
        """
        self._reloads_seen += 1
        stall = 0
        if self.plan.reconfig_stall_cycles:
            self._count("reconfig_stall")
            stall = self.plan.reconfig_stall_cycles
        if self._reloads_seen <= self.plan.reconfig_dead_reloads:
            self._count("reconfig_dead_on_arrival")
            self._dead_from = rf_cycle
        else:
            self._healed = True
            self._dead_from = None
        return stall

    def mlb_entries(self, default: int) -> int:
        if self.plan.mlb_entries_override is None:
            return default
        return self.plan.mlb_entries_override

    # ------------------------------------------------------------------ #
    # ObsQ-R: Retire Agent -> component
    # ------------------------------------------------------------------ #

    def on_obs(self, packet: ObsPacket) -> list[ObsPacket]:
        """Transform one observation packet into 0, 1, or 2 packets."""
        if self._healed:
            return [packet]
        if self._fire(self.plan.obs_drop, "obs_drop"):
            return []
        if self._fire(self.plan.obs_corrupt, "obs_corrupt"):
            if packet.value is not None:
                packet = dataclasses.replace(
                    packet, value=self._flip_bit(packet.value)
                )
            elif packet.taken is not None:
                packet = dataclasses.replace(packet, taken=not packet.taken)
        if self._fire(self.plan.obs_dup, "obs_dup"):
            return [packet, dataclasses.replace(packet)]
        return [packet]

    # ------------------------------------------------------------------ #
    # IntQ-F: component -> Fetch Agent
    # ------------------------------------------------------------------ #

    def on_pred(self, taken: bool) -> tuple[bool, bool]:
        """Return ``(delivered, direction)`` for one prediction packet."""
        if self._healed:
            return True, taken
        if self._fire(self.plan.pred_drop, "pred_drop"):
            return False, taken
        if self.plan.pred_stuck is not None:
            self._count("pred_stuck")
            return True, self.plan.pred_stuck == "taken"
        if self._fire(self.plan.pred_garbage, "pred_garbage"):
            return True, self._rng.random() < 0.5
        return True, taken

    # ------------------------------------------------------------------ #
    # IntQ-IS: component -> Load Agent
    # ------------------------------------------------------------------ #

    def on_load(self, packet: LoadPacket) -> list[LoadPacket]:
        if self._healed:
            return [packet]
        if self._fire(self.plan.load_drop, "load_drop"):
            return []
        if self._fire(self.plan.load_corrupt, "load_corrupt"):
            packet = dataclasses.replace(
                packet, address=int(self._flip_bit(packet.address))
            )
        if self._fire(self.plan.load_dup, "load_dup"):
            return [packet, dataclasses.replace(packet)]
        return [packet]

    # ------------------------------------------------------------------ #
    # ObsQ-EX: Load Agent -> component
    # ------------------------------------------------------------------ #

    def on_return(self, ret: LoadReturn) -> LoadReturn | None:
        if self._healed:
            return ret
        if self._fire(self.plan.ret_drop, "ret_drop"):
            return None
        if self._fire(self.plan.ret_corrupt, "ret_corrupt"):
            return dataclasses.replace(ret, value=self._flip_bit(ret.value))
        return ret

    # ------------------------------------------------------------------ #
    # squash / squash-done handshake
    # ------------------------------------------------------------------ #

    def squash_done(
        self, squash_time: int, normal_done: int, clk_ratio: int, watchdog
    ) -> int:
        """Possibly delay or lose the squash-done signal.

        A lost squash-done would stall the retire unit forever; the
        watchdog's squash timeout un-stalls it (or, unwatched, a long
        fixed penalty stands in for the eventual hardware reset).
        """
        if self._healed:
            return normal_done
        done = normal_done
        if self.plan.squash_done_delay:
            self._count("squash_done_delay")
            done += self.plan.squash_done_delay
        if self._fire(self.plan.squash_done_lose, "squash_done_lose"):
            if watchdog is not None and watchdog.params.squash_timeout_cycles:
                watchdog.squash_timeouts += 1
                return max(
                    done, squash_time + watchdog.params.squash_timeout_cycles
                )
            # No watchdog: model the un-handshaked recovery as an order of
            # magnitude of the normal protocol cost.
            return done + 10 * max(1, normal_done - squash_time)
        return done
