"""Seed-deterministic fault injectors for the PFM fabric.

One :class:`FaultInjector` instance lives on a
:class:`~repro.pfm.fabric.PFMFabric` when its ``PFMParams.fault_plan`` is
set.  The fabric consults it at every queue boundary — observation pushes
(ObsQ-R), prediction pushes (IntQ-F), load-packet pushes (IntQ-IS), load
returns (ObsQ-EX) and the squash/squash-done handshake — so corruption
happens *in transit*, exactly where the paper's clock-domain crossings
sit, never inside architectural state.

Injectors only ever mutate copies of packets.  The shared
:class:`~repro.workloads.mem.MemoryImage` and the dynamic instruction
stream are untouchable by construction, which is what lets the
architectural-equivalence oracle demand bit-identical retired state.

All randomness flows from ``random.Random(f"{seed}:{name}")`` — a string
seed, hashed with SHA-512 internally, so decision streams are stable
across processes and Python invocations (no ``hash()`` salting).
"""

from __future__ import annotations

import dataclasses
import random

from repro.faults.plan import FaultPlan
from repro.pfm.packets import LoadPacket, LoadReturn, ObsPacket

#: Bits eligible for flipping in corrupted values/addresses.  Kept within
#: the low bits so corrupted quantities stay in a plausible numeric range
#: (the point is wrong hints, not Python overflow artifacts).
_FLIP_BITS = 20


class FaultInjector:
    """Applies one :class:`FaultPlan` at the fabric's queue boundaries."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._rng = random.Random(f"{plan.seed}:{plan.name}")
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #

    def _fire(self, probability: float, kind: str) -> bool:
        if probability <= 0.0:
            return False
        if self._rng.random() >= probability:
            return False
        self.counts[kind] = self.counts.get(kind, 0) + 1
        return True

    def _count(self, kind: str) -> None:
        self.counts[kind] = self.counts.get(kind, 0) + 1

    def _flip_bit(self, value: float) -> float:
        corrupted = int(value) ^ (1 << self._rng.randrange(_FLIP_BITS))
        return float(corrupted) if isinstance(value, float) else corrupted

    # ------------------------------------------------------------------ #
    # component liveness
    # ------------------------------------------------------------------ #

    def component_frozen(self, rf_cycle: int) -> bool:
        """True once clkC is dead: the component never steps again."""
        dead_at = self.plan.dead_at_rf_cycle
        if dead_at is None or rf_cycle < dead_at:
            return False
        if "component_frozen" not in self.counts:
            self._count("component_frozen")
        return True

    def mlb_entries(self, default: int) -> int:
        if self.plan.mlb_entries_override is None:
            return default
        return self.plan.mlb_entries_override

    # ------------------------------------------------------------------ #
    # ObsQ-R: Retire Agent -> component
    # ------------------------------------------------------------------ #

    def on_obs(self, packet: ObsPacket) -> list[ObsPacket]:
        """Transform one observation packet into 0, 1, or 2 packets."""
        if self._fire(self.plan.obs_drop, "obs_drop"):
            return []
        if self._fire(self.plan.obs_corrupt, "obs_corrupt"):
            if packet.value is not None:
                packet = dataclasses.replace(
                    packet, value=self._flip_bit(packet.value)
                )
            elif packet.taken is not None:
                packet = dataclasses.replace(packet, taken=not packet.taken)
        if self._fire(self.plan.obs_dup, "obs_dup"):
            return [packet, dataclasses.replace(packet)]
        return [packet]

    # ------------------------------------------------------------------ #
    # IntQ-F: component -> Fetch Agent
    # ------------------------------------------------------------------ #

    def on_pred(self, taken: bool) -> tuple[bool, bool]:
        """Return ``(delivered, direction)`` for one prediction packet."""
        if self._fire(self.plan.pred_drop, "pred_drop"):
            return False, taken
        if self.plan.pred_stuck is not None:
            self._count("pred_stuck")
            return True, self.plan.pred_stuck == "taken"
        if self._fire(self.plan.pred_garbage, "pred_garbage"):
            return True, self._rng.random() < 0.5
        return True, taken

    # ------------------------------------------------------------------ #
    # IntQ-IS: component -> Load Agent
    # ------------------------------------------------------------------ #

    def on_load(self, packet: LoadPacket) -> list[LoadPacket]:
        if self._fire(self.plan.load_drop, "load_drop"):
            return []
        if self._fire(self.plan.load_corrupt, "load_corrupt"):
            packet = dataclasses.replace(
                packet, address=int(self._flip_bit(packet.address))
            )
        if self._fire(self.plan.load_dup, "load_dup"):
            return [packet, dataclasses.replace(packet)]
        return [packet]

    # ------------------------------------------------------------------ #
    # ObsQ-EX: Load Agent -> component
    # ------------------------------------------------------------------ #

    def on_return(self, ret: LoadReturn) -> LoadReturn | None:
        if self._fire(self.plan.ret_drop, "ret_drop"):
            return None
        if self._fire(self.plan.ret_corrupt, "ret_corrupt"):
            return dataclasses.replace(ret, value=self._flip_bit(ret.value))
        return ret

    # ------------------------------------------------------------------ #
    # squash / squash-done handshake
    # ------------------------------------------------------------------ #

    def squash_done(
        self, squash_time: int, normal_done: int, clk_ratio: int, watchdog
    ) -> int:
        """Possibly delay or lose the squash-done signal.

        A lost squash-done would stall the retire unit forever; the
        watchdog's squash timeout un-stalls it (or, unwatched, a long
        fixed penalty stands in for the eventual hardware reset).
        """
        done = normal_done
        if self.plan.squash_done_delay:
            self._count("squash_done_delay")
            done += self.plan.squash_done_delay
        if self._fire(self.plan.squash_done_lose, "squash_done_lose"):
            if watchdog is not None and watchdog.params.squash_timeout_cycles:
                watchdog.squash_timeouts += 1
                return max(
                    done, squash_time + watchdog.params.squash_timeout_cycles
                )
            # No watchdog: model the un-handshaked recovery as an order of
            # magnitude of the normal protocol cost.
            return done + 10 * max(1, normal_done - squash_time)
        return done
