"""Architectural-equivalence oracle.

The paper's central safety claim is that RF components are *hints only*:
any fault in the observe/intervene fabric may change timing but can never
change what the program computes.  The oracle checks that claim end to
end by comparing the :attr:`~repro.core.stats.SimStats.arch_digest` of a
faulted PFM run against the plain-core baseline on the same workload.

The digest (:mod:`repro.core.archstate`) folds the full retired
instruction stream — sequence numbers, PCs, destination and store values,
memory addresses, branch outcomes — plus the final register file and
memory image into one SHA-256.  Equal digests therefore mean equal
architectural behavior at every retired instruction, not merely equal
final state.  Timing counters (cycles, stalls, watchdog events) are
expected to differ and are deliberately not compared.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.stats import SimStats


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one equivalence check."""

    ok: bool
    reason: str
    baseline_digest: str
    faulted_digest: str

    def __bool__(self) -> bool:
        return self.ok


def check_equivalence(baseline: SimStats, faulted: SimStats) -> OracleVerdict:
    """Compare a faulted run against its fault-free baseline.

    Both runs must have executed the same workload for the same number of
    instructions; the digests then decide equivalence.
    """
    if not baseline.arch_digest or not faulted.arch_digest:
        return OracleVerdict(
            ok=False,
            reason="missing arch_digest (run predates digest support?)",
            baseline_digest=baseline.arch_digest,
            faulted_digest=faulted.arch_digest,
        )
    if baseline.instructions != faulted.instructions:
        return OracleVerdict(
            ok=False,
            reason=(
                "retired instruction counts differ: "
                f"{baseline.instructions} != {faulted.instructions}"
            ),
            baseline_digest=baseline.arch_digest,
            faulted_digest=faulted.arch_digest,
        )
    if baseline.arch_digest != faulted.arch_digest:
        return OracleVerdict(
            ok=False,
            reason="architectural digests differ: fault leaked into state",
            baseline_digest=baseline.arch_digest,
            faulted_digest=faulted.arch_digest,
        )
    return OracleVerdict(
        ok=True,
        reason="architecturally equivalent",
        baseline_digest=baseline.arch_digest,
        faulted_digest=faulted.arch_digest,
    )
