"""Fault-injection subsystem: plans, injectors, and the equivalence oracle.

The paper argues PFM components are *hints-only*: a buggy RF component
can cost performance but never corrupt architectural state (overrides are
verified, injected loads never write the PRF, observations are read-only).
This package stress-tests that claim.  A declarative, seed-deterministic
:class:`~repro.faults.plan.FaultPlan` corrupts the observe/intervene
fabric — dropped/duplicated/bit-corrupted packets on ObsQ-R, IntQ-F,
IntQ-IS and ObsQ-EX, stuck-at and garbage predictions, delayed or lost
squash-done, a frozen-clkC dead component, MLB overflow pressure — while
the architectural-equivalence oracle (:mod:`repro.faults.oracle`) asserts
the retired instruction stream and final architectural state stay
identical to the plain-core baseline, and the graceful-degradation
watchdog (:mod:`repro.core.watchdog`) keeps the core making progress.
"""

from repro.faults.plan import BUILTIN_PLANS, FaultPlan, get_plan
from repro.faults.inject import FaultInjector
from repro.faults.oracle import OracleVerdict, check_equivalence

__all__ = [
    "BUILTIN_PLANS",
    "FaultPlan",
    "FaultInjector",
    "OracleVerdict",
    "check_equivalence",
    "get_plan",
]
