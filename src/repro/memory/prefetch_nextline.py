"""Next-N-line L1D prefetcher (Table 1: next-N-line with N=2).

On every demand access to line X it requests lines X+1..X+N.  Issued
prefetches are returned to the hierarchy, which fetches them from wherever
they currently live and installs them in L1D.
"""

from __future__ import annotations

from repro.registry.prefetchers import register_prefetcher


@register_prefetcher("nextline")
class NextNLinePrefetcher:
    """Sequential next-line prefetcher."""

    def __init__(self, degree: int = 2):
        if degree < 0:
            raise ValueError("degree must be non-negative")
        self.degree = degree
        self.issued = 0

    def on_access(self, line: int, now: int) -> list[int]:
        """Lines to prefetch in response to a demand access to *line*."""
        targets = [line + i for i in range(1, self.degree + 1)]
        self.issued += len(targets)
        return targets
