"""Memory hierarchy substrate (Table 1 configuration).

32 KB 8-way L1I and L1D (3-cycle L1D load-to-use), 256 KB 8-way L2
(12 cycles), 8 MB 16-way L3 (42 cycles), 250-cycle DRAM; a next-2-line L1D
prefetcher and a VLDP [Shevgoor et al., MICRO-48] L2/L3 prefetcher.

Caches operate in the timestamp domain of the one-pass cycle model: each
resident line carries its fill time, so an access that races an in-flight
fill observes the remaining latency (MSHR hit-under-miss), and prefetch
timeliness — the property the paper's adaptive-prefetch-distance feedback
controls — is modelled rather than assumed.
"""

from repro.memory.cache import Cache, AccessResult
from repro.memory.hierarchy import HierarchyParams, MemoryHierarchy
from repro.memory.prefetch_nextline import NextNLinePrefetcher
from repro.memory.prefetch_vldp import VLDPPrefetcher
from repro.memory.tlb import TLB

__all__ = [
    "Cache",
    "AccessResult",
    "HierarchyParams",
    "MemoryHierarchy",
    "NextNLinePrefetcher",
    "VLDPPrefetcher",
    "TLB",
]
