"""TLB model.

Both demand loads/stores and Load-Agent-injected loads "go through
translation in the load/store execution lane" (Section 2.4), so agent
loads pay TLB-miss walks exactly like demand accesses.
"""

from __future__ import annotations

PAGE_BYTES = 4096
PAGE_SHIFT = 12


class TLB:
    """Fully-associative LRU TLB with a fixed page-walk latency."""

    def __init__(self, entries: int = 1024, walk_latency: int = 50):
        self._entries = entries
        self._walk_latency = walk_latency
        self._pages: dict[int, int] = {}  # page -> last_use
        self.accesses = 0
        self.misses = 0

    def translate(self, addr: int, now: int) -> int:
        """Translate; return extra latency (0 on hit, walk latency on miss)."""
        page = addr >> PAGE_SHIFT
        self.accesses += 1
        if page in self._pages:
            self._pages[page] = now
            return 0
        self.misses += 1
        if len(self._pages) >= self._entries:
            victim = min(self._pages, key=self._pages.get)
            del self._pages[victim]
        self._pages[page] = now
        return self._walk_latency

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0
