"""VLDP: Variable Length Delta Prefetcher [Shevgoor et al., MICRO-48 2015].

The paper's L2/L3 prefetcher (Table 1, 5.5 Kb budget).  Per-page delta
histories (DHB) feed a cascade of Delta Prediction Tables keyed by the
last 1, 2, and 3 deltas; the longest-history matching DPT wins.  An Offset
Prediction Table predicts the first delta of a freshly-touched page from
its first-access offset.  Sizes follow the small hardware budget.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.registry.prefetchers import register_prefetcher

LINES_PER_PAGE = 64  # 4 KB page / 64 B lines
PAGE_SHIFT_LINES = 6


class _DeltaTable:
    """One DPT level: delta-sequence key -> (predicted delta, accuracy)."""

    def __init__(self, entries: int):
        self._entries = entries
        self._table: OrderedDict[tuple, list] = OrderedDict()

    def predict(self, key: tuple) -> int | None:
        entry = self._table.get(key)
        if entry is None:
            return None
        self._table.move_to_end(key)
        return entry[0] if entry[1] >= 0 else None

    def train(self, key: tuple, actual_delta: int) -> None:
        entry = self._table.get(key)
        if entry is None:
            if len(self._table) >= self._entries:
                self._table.popitem(last=False)
            self._table[key] = [actual_delta, 0]
            return
        self._table.move_to_end(key)
        if entry[0] == actual_delta:
            entry[1] = min(3, entry[1] + 1)
        else:
            entry[1] -= 1
            if entry[1] < -1:
                entry[0] = actual_delta
                entry[1] = 0


@register_prefetcher("vldp")
class VLDPPrefetcher:
    """Multi-level delta prefetcher operating on L2 (L1-miss) streams."""

    def __init__(self, dhb_entries: int = 16, dpt_entries: int = 64, degree: int = 4):
        self.degree = degree
        # DHB: page -> [last_line_offset_global, deltas(list, newest last)]
        self._dhb: OrderedDict[int, list] = OrderedDict()
        self._dhb_entries = dhb_entries
        self._dpts = [_DeltaTable(dpt_entries) for _ in range(3)]
        self._opt: dict[int, int] = {}  # first offset -> first delta
        self.issued = 0

    def on_access(self, line: int, now: int) -> list[int]:
        """Train on the L2 access to *line*; return lines to prefetch."""
        page = line >> PAGE_SHIFT_LINES
        entry = self._dhb.get(page)

        if entry is None:
            if len(self._dhb) >= self._dhb_entries:
                self._dhb.popitem(last=False)
            self._dhb[page] = [line, []]
            offset = line & (LINES_PER_PAGE - 1)
            first_delta = self._opt.get(offset)
            if first_delta:
                target = line + first_delta
                self.issued += 1
                return [target]
            return []

        self._dhb.move_to_end(page)
        last_line, deltas = entry
        delta = line - last_line
        if delta == 0:
            return []
        entry[0] = line

        if not deltas:
            self._opt[last_line & (LINES_PER_PAGE - 1)] = delta
        # Train each DPT on its history-length key.
        for depth, dpt in enumerate(self._dpts, start=1):
            if len(deltas) >= depth:
                dpt.train(tuple(deltas[-depth:]), delta)
        deltas.append(delta)
        if len(deltas) > 4:
            del deltas[0]

        # Predict a chain of future deltas with the deepest matching DPT.
        targets: list[int] = []
        chain = list(deltas)
        current = line
        for _ in range(self.degree):
            predicted = self._predict(chain)
            if predicted is None:
                break
            current += predicted
            targets.append(current)
            chain.append(predicted)
            if len(chain) > 4:
                del chain[0]
        self.issued += len(targets)
        return targets

    def _predict(self, deltas: list[int]) -> int | None:
        for depth in (3, 2, 1):
            if len(deltas) >= depth:
                predicted = self._dpts[depth - 1].predict(tuple(deltas[-depth:]))
                if predicted is not None:
                    return predicted
        return None
