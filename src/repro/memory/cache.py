"""Set-associative cache with timestamped lines and LRU replacement.

Lines are tracked at 64-byte granularity.  Each resident line records its
fill time; a probe at time *t* against a line with ``fill_time > t`` is an
in-flight (MSHR) hit and observes the residual fill latency rather than a
fresh miss.  A bounded miss heap models MSHR occupancy: when all MSHRs are
busy, a new miss is delayed until the earliest outstanding fill returns.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

LINE_BYTES = 64
LINE_SHIFT = 6


@dataclass(slots=True)
class AccessResult:
    """Outcome of a cache probe."""

    hit: bool  # resident (even if the fill is still in flight)
    ready_time: int  # when the line's data is available at this level
    in_flight: bool  # hit on a line whose fill has not completed yet


class Cache:
    """One cache level.

    Args:
        name: for statistics ("L1D", "L2", ...).
        size_bytes / assoc: geometry; sets = size / (assoc * 64).
        mshrs: max outstanding misses; further misses queue behind the
            earliest outstanding fill.
    """

    def __init__(self, name: str, size_bytes: int, assoc: int, mshrs: int = 16):
        self.name = name
        self.assoc = assoc
        self.num_sets = size_bytes // (assoc * LINE_BYTES)
        if self.num_sets < 1 or self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{name}: sets must be a positive power of two")
        self._set_mask = self.num_sets - 1
        # set index -> {tag: [last_use, fill_time, was_prefetch]}
        self._sets: list[dict[int, list]] = [dict() for _ in range(self.num_sets)]
        self._mshr_limit = mshrs
        self._miss_heap: list[int] = []  # outstanding fill times
        self.accesses = 0
        self.misses = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0

    # ------------------------------------------------------------------ #

    def _locate(self, line: int) -> tuple[dict, int]:
        return self._sets[line & self._set_mask], line >> 0

    def probe(self, line: int, now: int, *, count: bool = True) -> AccessResult | None:
        """Look up *line* at time *now*; None on a true miss.

        Updates LRU and prefetch-usefulness state on hits.
        """
        ways, tag = self._locate(line)
        if count:
            self.accesses += 1
        entry = ways.get(tag)
        if entry is None:
            if count:
                self.misses += 1
            return None
        entry[0] = max(entry[0], now)
        if entry[2]:  # first demand touch of a prefetched line
            entry[2] = False
            self.prefetch_useful += 1
        if entry[1] > now:
            return AccessResult(hit=True, ready_time=entry[1], in_flight=True)
        return AccessResult(hit=True, ready_time=now, in_flight=False)

    def mshr_delay(self, now: int) -> int:
        """Extra delay a new miss suffers at *now* from full MSHRs."""
        heap = self._miss_heap
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) < self._mshr_limit:
            return 0
        return max(0, heap[0] - now)

    def register_miss(self, fill_time: int) -> None:
        heapq.heappush(self._miss_heap, fill_time)

    def insert(
        self,
        line: int,
        now: int,
        fill_time: int,
        prefetch: bool = False,
        low_priority: bool = False,
    ) -> None:
        """Install *line*, evicting LRU if the set is full.

        ``low_priority`` inserts at the LRU position (classic prefetch
        anti-pollution insertion): the line is the set's first eviction
        candidate until a demand access promotes it.
        """
        ways, tag = self._locate(line)
        if tag not in ways and len(ways) >= self.assoc:
            victim = min(ways, key=lambda t: ways[t][0])
            del ways[victim]
        use_time = now - (1 << 20) if low_priority else now
        ways[tag] = [use_time, fill_time, prefetch]
        if prefetch:
            self.prefetch_fills += 1

    def cap_fill(self, line: int, max_fill: int) -> None:
        """Clamp *line*'s in-flight fill time to *max_fill*.

        One-pass artifact repair: a prefetch processed earlier in program
        order can carry a *later* timestamp than a demand access to the
        same line; the demand would have issued the request first in real
        time, so its miss latency bounds the line's fill.
        """
        ways, tag = self._locate(line)
        entry = ways.get(tag)
        if entry is not None and entry[1] > max_fill:
            entry[1] = max_fill

    def contains(self, line: int) -> bool:
        ways, tag = self._locate(line)
        return tag in ways

    def flush(self) -> None:
        for ways in self._sets:
            ways.clear()
        self._miss_heap.clear()

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def stats(self) -> dict[str, float]:
        return {
            "accesses": self.accesses,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "prefetch_fills": self.prefetch_fills,
            "prefetch_useful": self.prefetch_useful,
        }
