"""The full memory hierarchy: L1I/L1D + L2 + L3 + DRAM with prefetchers.

Latencies follow Table 1 (load-to-use 3/12/42/250 cycles; the 1-cycle
address generation lives in the core, the remainder here).  Demand
accesses train the next-2-line L1D prefetcher; L1D misses (the L2 access
stream) train VLDP, which prefetches into L2.
"""

from __future__ import annotations

import heapq

from dataclasses import dataclass, field

from repro.memory.cache import Cache, LINE_SHIFT
from repro.memory.tlb import TLB
from repro.registry.prefetchers import make_prefetcher


@dataclass
class HierarchyParams:
    """Table 1 memory configuration."""

    l1i_size: int = 32 * 1024
    l1i_assoc: int = 8
    l1d_size: int = 32 * 1024
    l1d_assoc: int = 8
    l2_size: int = 256 * 1024
    l2_assoc: int = 8
    l3_size: int = 8 * 1024 * 1024
    l3_assoc: int = 16
    # Load-to-use latencies (cycle 1 of a load is address generation,
    # modelled in the core; the hierarchy contributes latency - 1).
    l1_latency: int = 3
    l2_latency: int = 12
    l3_latency: int = 42
    dram_latency: int = 250
    l1d_mshrs: int = 16
    l2_mshrs: int = 32
    l3_mshrs: int = 64
    # DRAM channel service rate: one 64B line every N cycles (bandwidth).
    dram_service_interval: int = 2
    nextline_degree: int = 2
    vldp_degree: int = 4
    #: Prefetcher selections, resolved by name through the prefetcher
    #: registry (:mod:`repro.registry`).
    l1_prefetcher: str = "nextline"
    l2_prefetcher: str = "vldp"
    enable_l1_prefetcher: bool = True
    enable_vldp: bool = True
    perfect_dcache: bool = False
    tlb_entries: int = 1024
    tlb_walk_latency: int = 50


@dataclass
class HierarchyStats:
    demand_loads: int = 0
    demand_stores: int = 0
    agent_loads: int = 0
    agent_prefetches: int = 0
    ifetches: int = 0
    dram_accesses: int = 0


class MemoryHierarchy:
    """Timestamp-domain cache hierarchy shared by core and Load Agent."""

    def __init__(self, params: HierarchyParams | None = None):
        self.params = params or HierarchyParams()
        p = self.params
        self.l1i = Cache("L1I", p.l1i_size, p.l1i_assoc, mshrs=8)
        self.l1d = Cache("L1D", p.l1d_size, p.l1d_assoc, mshrs=p.l1d_mshrs)
        self.l2 = Cache("L2", p.l2_size, p.l2_assoc, mshrs=p.l2_mshrs)
        self.l3 = Cache("L3", p.l3_size, p.l3_assoc, mshrs=p.l3_mshrs)
        self.tlb = TLB(p.tlb_entries, p.tlb_walk_latency)
        self.nextline = make_prefetcher(
            p.l1_prefetcher, degree=p.nextline_degree
        )
        self.vldp = make_prefetcher(p.l2_prefetcher, degree=p.vldp_degree)
        self.stats = HierarchyStats()
        # Dedicated outstanding-prefetch buffer for Load-Agent prefetch
        # OPs: they neither consume demand MSHRs nor stall behind them;
        # when the buffer is full new prefetches are dropped.
        self._agent_pf_fills: list[int] = []
        self._agent_pf_limit = 64
        self.agent_prefetch_drops = 0
        self._dram_next_slot = 0

    # ------------------------------------------------------------------ #
    # data side
    # ------------------------------------------------------------------ #

    def data_access(
        self,
        addr: int,
        now: int,
        *,
        is_store: bool = False,
        from_agent: bool = False,
        is_prefetch: bool = False,
    ) -> tuple[int, str]:
        """Access the data hierarchy; return ``(data_ready_time, level)``.

        *level* names where the access was satisfied ("L1D", "L2", "L3",
        "DRAM") for statistics.  Agent prefetches install lines but their
        ready time is only used for MLB/queue occupancy modelling.
        """
        p = self.params
        if is_prefetch:
            self.stats.agent_prefetches += 1
        elif from_agent:
            self.stats.agent_loads += 1
        elif is_store:
            self.stats.demand_stores += 1
        else:
            self.stats.demand_loads += 1

        if p.perfect_dcache and not from_agent and not is_prefetch:
            return now + p.l1_latency - 1, "L1D"

        now += self.tlb.translate(addr, now)
        line = addr >> LINE_SHIFT

        result = self.l1d.probe(line, now)
        if result is not None:
            if result.in_flight:
                # A fresh demand miss at *now* would complete within the
                # DRAM latency; an in-flight fill requested "later" (a
                # one-pass processing-order artifact) cannot be slower
                # than that (see Cache.cap_fill).
                cap = now + p.dram_latency - 1
                if not is_prefetch and result.ready_time > cap:
                    self.l1d.cap_fill(line, cap)
                    ready = cap + 1
                else:
                    ready = result.ready_time + 1
            else:
                ready = now + p.l1_latency - 1
            level = "L1D"
        elif is_prefetch and self._prefetch_saturated(now):
            # Prefetch request queue full: drop rather than queue a fill
            # that would land later than a demand miss would.
            self.agent_prefetch_drops += 1
            return now, "DROP"
        else:
            ready, level = self._fill_from_l2(line, now, prefetch=is_prefetch)
            if is_prefetch:
                heapq.heappush(self._agent_pf_fills, ready)

        if p.enable_l1_prefetcher and not is_prefetch and not from_agent:
            for target in self.nextline.on_access(line, now):
                self.prefetch_into_l1d(target, now)
        return ready, level

    def _prefetch_saturated(self, now: int) -> bool:
        """True when the agent-prefetch request queue is full at *now*."""
        heap = self._agent_pf_fills
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        return len(heap) >= self._agent_pf_limit

    def _fill_from_l2(self, line: int, now: int, *, prefetch: bool) -> tuple[int, str]:
        """L1D miss path: fetch *line* from L2/L3/DRAM, fill L1D.

        Prefetches bypass the L1D demand MSHRs (they sit in a separate
        prefetch request queue in hardware); L2/L3 MSHRs still bound total
        outstanding traffic.
        """
        p = self.params
        if not prefetch:
            now += self.l1d.mshr_delay(now)

        result = self.l2.probe(line, now)
        if result is not None:
            ready = (
                result.ready_time + 1
                if result.in_flight
                else now + p.l2_latency - 1
            )
            level = "L2"
        else:
            ready, level = self._fill_from_l3(line, now)
            self.l2.insert(line, now, ready)
        if p.enable_vldp and not prefetch:
            # VLDP trains on the demand L1-miss stream only; training it on
            # agent run-ahead accesses would double-prefetch every line.
            for target in self.vldp.on_access(line, now):
                self.prefetch_into_l2(target, now)

        if not prefetch:
            self.l1d.register_miss(ready)
        # Agent prefetch fills insert at LRU priority so far-ahead streams
        # cannot thrash demand-near lines; first demand touch promotes.
        self.l1d.insert(line, now, ready, prefetch=prefetch, low_priority=prefetch)
        return ready, level

    def _fill_from_l3(self, line: int, now: int) -> tuple[int, str]:
        p = self.params
        result = self.l3.probe(line, now)
        if result is not None:
            if result.in_flight:
                return result.ready_time + 1, "L3"
            return now + p.l3_latency - 1, "L3"
        ready = self._dram_access(now)
        self.stats.dram_accesses += 1
        self.l3.insert(line, now, ready)
        return ready, "DRAM"

    def _dram_access(self, now: int) -> int:
        """Issue one line fetch to the DRAM channel.

        Fixed access latency plus a fixed per-line service interval — the
        channel serves at most one line per interval, so saturation shows
        up as graceful queuing delay for demand and prefetch alike.
        """
        slot = max(now, self._dram_next_slot)
        self._dram_next_slot = slot + self.params.dram_service_interval
        return slot + self.params.dram_latency - 1

    # ------------------------------------------------------------------ #
    # prefetch fills
    # ------------------------------------------------------------------ #

    def prefetch_into_l1d(self, line: int, now: int) -> None:
        """Hardware-prefetcher fill into L1D (no demand statistics)."""
        if self.l1d.contains(line):
            return
        result = self.l2.probe(line, now, count=False)
        if result is not None:
            ready = max(result.ready_time, now) + self.params.l2_latency - 1
        else:
            ready, _ = self._fill_from_l3(line, now)
            self.l2.insert(line, now, ready)
        self.l1d.insert(line, now, ready, prefetch=True)

    def prefetch_into_l2(self, line: int, now: int) -> None:
        """VLDP fill into L2."""
        if self.l2.contains(line):
            return
        ready, _ = self._fill_from_l3(line, now)
        self.l2.insert(line, now, ready, prefetch=True)

    # ------------------------------------------------------------------ #
    # instruction side
    # ------------------------------------------------------------------ #

    def inst_access(self, pc: int, now: int) -> int:
        """Fetch the line holding *pc*; return its ready time."""
        self.stats.ifetches += 1
        line = pc >> LINE_SHIFT
        result = self.l1i.probe(line, now)
        if result is not None:
            return result.ready_time if result.in_flight else now
        l2_result = self.l2.probe(line, now)
        if l2_result is not None:
            base = l2_result.ready_time if l2_result.in_flight else now
            ready = base + self.params.l2_latency - 1
        else:
            ready, _ = self._fill_from_l3(line, now)
            self.l2.insert(line, now, ready)
        self.l1i.insert(line, now, ready)
        return ready

    # ------------------------------------------------------------------ #

    def level_stats(self) -> dict[str, dict[str, float]]:
        return {
            cache.name: cache.stats()
            for cache in (self.l1i, self.l1d, self.l2, self.l3)
        }
