"""Telemetry configuration.

Kept free of any ``repro.core`` import so :class:`TelemetryParams` can be
embedded in :class:`~repro.core.params.SimConfig` (and pickled inside
:class:`~repro.experiments.pool.SweepPoint`) without layering cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Event groups a hub can record.  ``stage`` is the per-instruction
#: fetch/dispatch/issue/complete/retire record, ``squash`` the pipeline
#: squash events, ``queue`` the fabric queue push/pop/drop stream,
#: ``agent`` the Fetch/Load/Retire Agent events (FST/RST hits, IntQ-F
#: stalls, MLB fill/replay, squash-sync), and ``sample`` the periodic
#: occupancy/progress counters.
EVENT_GROUPS = ("stage", "squash", "queue", "agent", "sample")


@dataclass
class TelemetryParams:
    """Configuration of one run's telemetry hub.

    ``ring_capacity`` bounds the event buffer: once full, later events
    are counted as dropped instead of evicting earlier ones (the head of
    the window stays intact and timestamps stay monotonic).
    ``sample_period`` is the sampler cadence in core cycles; 0 disables
    the samplers even when the ``sample`` group is enabled.
    """

    ring_capacity: int = 65_536
    sample_period: int = 64
    groups: tuple[str, ...] = EVENT_GROUPS

    def __post_init__(self) -> None:
        if self.ring_capacity < 1:
            raise ValueError("ring_capacity must be >= 1")
        if self.sample_period < 0:
            raise ValueError("sample_period must be >= 0")
        self.groups = tuple(self.groups)
        unknown = [g for g in self.groups if g not in EVENT_GROUPS]
        if unknown:
            raise ValueError(
                f"unknown telemetry group(s) {unknown}; known: {EVENT_GROUPS}"
            )
