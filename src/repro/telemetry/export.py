"""Exporters: Perfetto/Chrome trace-event JSON, CSV, metrics manifest.

All exporters consume the JSON-safe snapshot produced by
:meth:`~repro.telemetry.hub.TelemetryHub.snapshot` (the form stored in
``SimStats.telemetry``), not live hub objects, so they work identically
on in-process runs, sweep-pool worker results, and reloaded checkpoint
payloads.  Serialization is deterministic — sorted keys, stable event
order — so traces are byte-identical across ``--jobs`` values.

The Perfetto layout:

* pid 1, "core pipeline" — per-stage slice tracks (F/D/I/C/R, four
  round-robin slots each so simultaneously in-flight instructions render
  side by side) plus squash instants.
* pid 2, "pfm fabric" — occupancy counter tracks (``occ:ObsQ-R``,
  ``occ:IntQ-F``, ``occ:IntQ-IS``, ``occ:ObsQ-EX``, ``occ:MLB``), the
  cumulative ``prf_port_delay`` and ``clkC`` progress counters, and
  agent instants (FST/RST hits, IntQ-F stalls, MLB fill/replay,
  squash-sync).

Core cycles map 1:1 to trace microseconds.  Load the file at
https://ui.perfetto.dev (or chrome://tracing).
"""

from __future__ import annotations

import io
import json

#: Stage slice tracks: (mark, human name, base tid).
_STAGES = (
    ("F", "fetch", 10),
    ("D", "dispatch", 20),
    ("I", "issue", 30),
    ("C", "complete", 40),
    ("R", "retire", 50),
)

#: Round-robin slots per stage track, so overlapping in-flight
#: instructions land on sibling threads instead of nesting.
_SLOTS = 4

#: Instant-event threads under the fabric process.
_AGENT_TIDS = {"fetch": 61, "load": 62, "retire": 63, "fabric": 64}
_DROP_TID = 60
_SQUASH_TID = 1


def _metadata(pid: int, name: str, tid: int | None = None) -> dict:
    event = {
        "ph": "M",
        "pid": pid,
        "ts": 0,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _stage_slices(event: dict) -> list[dict]:
    slot = event["seq"] % _SLOTS
    bounds = (
        event["fetch"],
        event["dispatch"],
        event["issue"],
        event["complete"],
        event["retire"],
        event["retire"] + 1,  # retire occupies its slot for one cycle
    )
    slices = []
    for (mark, _, base_tid), start, end in zip(_STAGES, bounds, bounds[1:]):
        slices.append(
            {
                "ph": "X",
                "pid": 1,
                "tid": base_tid + slot,
                "ts": start,
                "dur": max(end - start, 0),
                "name": event["label"],
                "args": {
                    "seq": event["seq"],
                    "pc": f"{event['pc']:#x}",
                    "stage": mark,
                },
            }
        )
    return slices


def _counter(name: str, ts: int, value: int) -> dict:
    return {
        "ph": "C",
        "pid": 2,
        "ts": ts,
        "name": name,
        "args": {"value": value},
    }


def _instant(name: str, ts: int, tid: int, pid: int, value: int | None = None) -> dict:
    event = {"ph": "i", "s": "t", "pid": pid, "tid": tid, "ts": ts, "name": name}
    if value is not None:
        event["args"] = {"value": value}
    return event


def perfetto_trace(snapshot: dict) -> dict:
    """Build the trace-event document (as a dict) from a hub snapshot."""
    events: list[dict] = [
        _metadata(1, "core pipeline"),
        _metadata(2, "pfm fabric"),
        _metadata(1, "squash", tid=_SQUASH_TID),
        _metadata(2, "queue drops", tid=_DROP_TID),
    ]
    for mark, stage_name, base_tid in _STAGES:
        for slot in range(_SLOTS):
            events.append(
                _metadata(1, f"{mark} {stage_name} #{slot}", tid=base_tid + slot)
            )
    for agent, tid in sorted(_AGENT_TIDS.items()):
        events.append(_metadata(2, f"agent:{agent}", tid=tid))

    body: list[dict] = []
    for event in snapshot.get("events", ()):
        kind = event["kind"]
        if kind == "stage":
            body.extend(_stage_slices(event))
        elif kind == "squash":
            body.append(
                _instant(
                    f"squash:{event['reason']}", event["ts"], _SQUASH_TID, pid=1
                )
            )
        elif kind == "queue":
            body.append(
                _counter(f"occ:{event['queue']}", event["ts"], event["occupancy"])
            )
            if event["op"] == "drop":
                body.append(
                    _instant(
                        f"drop:{event['queue']}", event["ts"], _DROP_TID, pid=2
                    )
                )
        elif kind == "agent":
            body.append(
                _instant(
                    event["event"],
                    event["ts"],
                    _AGENT_TIDS.get(event["agent"], _DROP_TID),
                    pid=2,
                    value=event["value"],
                )
            )
        elif kind == "sample":
            body.append(_counter(event["track"], event["ts"], event["value"]))
    # Stable timestamp order (metadata stays first at ts 0).
    body.sort(key=lambda e: e["ts"])
    events.extend(body)
    return {
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.telemetry",
            "dropped_events": snapshot.get("dropped", 0),
            "ring_capacity": snapshot.get("ring_capacity", 0),
        },
        "traceEvents": events,
    }


def perfetto_json(snapshot: dict) -> str:
    """Deterministic Perfetto/Chrome trace-event JSON for a snapshot."""
    return (
        json.dumps(
            perfetto_trace(snapshot), sort_keys=True, separators=(",", ":")
        )
        + "\n"
    )


_CSV_COLUMNS = (
    "kind",
    "ts",
    "name",
    "op",
    "value",
    "seq",
    "pc",
    "fetch",
    "dispatch",
    "issue",
    "complete",
    "retire",
)


def events_csv(snapshot: dict) -> str:
    """Flat CSV of the event stream (one row per event, stable columns)."""
    out = io.StringIO()
    out.write(",".join(_CSV_COLUMNS) + "\n")
    for event in snapshot.get("events", ()):
        kind = event["kind"]
        row = dict.fromkeys(_CSV_COLUMNS, "")
        row["kind"] = kind
        if kind == "stage":
            row.update(
                ts=event["fetch"],
                name=event["label"],
                value=event["retire"] - event["fetch"],
                seq=event["seq"],
                pc=f"{event['pc']:#x}",
                fetch=event["fetch"],
                dispatch=event["dispatch"],
                issue=event["issue"],
                complete=event["complete"],
                retire=event["retire"],
            )
        elif kind == "squash":
            row.update(ts=event["ts"], name=event["reason"])
        elif kind == "queue":
            row.update(
                ts=event["ts"],
                name=event["queue"],
                op=event["op"],
                value=event["occupancy"],
            )
        elif kind == "agent":
            row.update(
                ts=event["ts"],
                name=f"{event['agent']}.{event['event']}",
                value=event["value"],
            )
        elif kind == "sample":
            row.update(ts=event["ts"], name=event["track"], value=event["value"])
        text = ",".join(str(row[column]) for column in _CSV_COLUMNS)
        out.write(text.replace("\n", " ") + "\n")
    return out.getvalue()


#: Snapshot summary keys copied into the manifest (events excluded — the
#: manifest is the metrics view; the event stream is Perfetto/CSV's job).
_SNAPSHOT_SUMMARY_KEYS = (
    "ring_capacity",
    "sample_period",
    "groups",
    "captured",
    "dropped",
    "counts",
    "tracks",
)


def metrics_manifest(stats, baseline=None) -> dict:
    """Per-run metrics manifest folded from :class:`SimStats`.

    Uses ``SimStats.to_dict()`` (flat, stable key order) rather than
    plucking attributes one call at a time; with *baseline* the manifest
    also carries the baseline metrics and the speedup.
    """
    manifest: dict = {
        "schema": "repro-telemetry-manifest/1",
        "metrics": stats.to_dict(),
    }
    snapshot = getattr(stats, "telemetry", None)
    if snapshot:
        manifest["telemetry"] = {
            key: snapshot.get(key) for key in _SNAPSHOT_SUMMARY_KEYS
        }
    if baseline is not None:
        manifest["baseline"] = baseline.to_dict()
        manifest["speedup_pct"] = 100.0 * stats.speedup_over(baseline)
    return manifest
