"""Bounded event sink with drop accounting.

The buffer is head-anchored: it keeps the first ``capacity`` events and
counts everything after that as dropped, rather than evicting earlier
entries.  A trace of the window's start with a known truncation point
beats a trace with a hole in the middle — exporters stay monotonic and
the drop count tells the analyst exactly how much was shed (the same
contract the fabric's ObsQ-R gives droppable observation packets).
"""

from __future__ import annotations


class RingBufferSink:
    """Fixed-capacity event buffer; excess emissions are counted, not kept."""

    __slots__ = ("capacity", "events", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.events: list = []
        self.dropped = 0

    def emit(self, event) -> None:
        if len(self.events) < self.capacity:
            self.events.append(event)
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self.events)
