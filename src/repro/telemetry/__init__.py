"""Programmable introspection for the reproduction itself.

The paper's premise is *observing a live pipeline* — the Retire/Fetch/
Load Agents snoop retired instructions, fetch bundles, and load lanes.
This package gives the reproduction the same shape of observability over
its own simulation: typed events emitted from probe attach points in the
core pipeline, the PFM fabric queues, and all three agents, collected by
a bounded ring-buffer sink, optionally augmented with periodic occupancy
samplers, and exported as Chrome/Perfetto trace-event JSON, CSV, or a
flat metrics manifest.

The design follows the IPU / FireGuard pattern (see PAPERS.md):
programmable probes at microarchitectural boundaries feed a decoupled
analysis engine.  Probes are attribute checks (``if hub is not None``)
at the attach points, so a run with no sink attached pays nothing beyond
a pointer test — telemetry is strictly observe-only and never perturbs
timing or architectural state (``SimStats.arch_digest`` is bit-identical
with probes on or off).

Usage::

    from repro.core import SimConfig, simulate
    from repro.telemetry import TelemetryParams

    stats = simulate(workload, SimConfig(telemetry=TelemetryParams()))
    snapshot = stats.telemetry          # events + counters + drop counts
    perfetto_json(snapshot)             # load at https://ui.perfetto.dev
"""

from repro.telemetry.counters import CounterBank
from repro.telemetry.events import (
    AgentEvent,
    QueueEvent,
    SampleEvent,
    SquashEvent,
    StageEvent,
)
from repro.telemetry.export import events_csv, metrics_manifest, perfetto_json
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.params import EVENT_GROUPS, TelemetryParams
from repro.telemetry.sink import RingBufferSink

__all__ = [
    "AgentEvent",
    "CounterBank",
    "EVENT_GROUPS",
    "QueueEvent",
    "RingBufferSink",
    "SampleEvent",
    "SquashEvent",
    "StageEvent",
    "TelemetryHub",
    "TelemetryParams",
    "events_csv",
    "metrics_manifest",
    "perfetto_json",
]
