"""The telemetry hub: the probe-facing event bus.

One hub instance serves one simulation run.  Probe attach points (the
core pipeline loop, :class:`~repro.pfm.queues.TimedQueue` endpoints, the
fabric, and the three agents) hold an optional reference to the hub and
guard every emission with a ``None`` check, so a run with no hub pays a
single pointer test per attach point.  The hub itself applies the
configured group filter, forwards surviving events to the ring-buffer
sink, and drives the periodic sampler bank off retire progress.
"""

from __future__ import annotations

from repro.telemetry.events import (
    AgentEvent,
    QueueEvent,
    SampleEvent,
    SquashEvent,
    StageEvent,
    format_inst,
)
from repro.telemetry.params import TelemetryParams
from repro.telemetry.samplers import SamplerBank
from repro.telemetry.sink import RingBufferSink


class TelemetryHub:
    """Typed event bus over one bounded sink plus a sampler bank."""

    def __init__(self, params: TelemetryParams):
        self.params = params
        self.sink = RingBufferSink(params.ring_capacity)
        groups = frozenset(params.groups)
        self._stage = "stage" in groups
        self._squash = "squash" in groups
        self._queue = "queue" in groups
        self._agent = "agent" in groups
        sample_period = params.sample_period if "sample" in groups else 0
        self.samplers = SamplerBank(sample_period)
        #: Emission totals per event kind, counted *before* the sink's
        #: capacity check — ``sum(counts.values()) - len(sink)`` equals
        #: ``sink.dropped`` by construction.
        self.counts: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # probe-facing emitters
    # ------------------------------------------------------------------ #

    def _emit(self, event) -> None:
        counts = self.counts
        counts[event.kind] = counts.get(event.kind, 0) + 1
        self.sink.emit(event)

    def stage(
        self,
        dyn,
        fetch: int,
        dispatch: int,
        issue: int,
        complete: int,
        retire: int,
    ) -> None:
        """Record one retired instruction's five stage timestamps."""
        if self._stage:
            self._emit(
                StageEvent(
                    seq=dyn.seq,
                    pc=dyn.pc,
                    label=format_inst(dyn),
                    fetch=fetch,
                    dispatch=dispatch,
                    issue=issue,
                    complete=complete,
                    retire=retire,
                )
            )

    def squash(self, ts: int, reason: str) -> None:
        if self._squash:
            self._emit(SquashEvent(ts=ts, reason=reason))

    def queue(self, ts: int, queue: str, op: str, occupancy: int) -> None:
        if self._queue:
            self._emit(QueueEvent(ts=ts, queue=queue, op=op, occupancy=occupancy))

    def agent(self, ts: int, agent: str, event: str, value: int = 0) -> None:
        if self._agent:
            self._emit(AgentEvent(ts=ts, agent=agent, event=event, value=value))

    def maybe_sample(self, now: int) -> None:
        """Fire the sampler bank if a cadence boundary has been crossed."""
        if self.samplers.due(now):
            for track, value in self.samplers.collect(now):
                self._emit(SampleEvent(ts=now, track=track, value=value))

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach_fabric(self, fabric) -> None:
        """Attach probes and samplers to a built :class:`PFMFabric`.

        Wires every fabric slot: slot 0 (the primary tenant) keeps the
        historical track names, co-tenant slot *i* gets an ``@i`` suffix
        (``occ:ObsQ-R@1``, ``clkC@1``, ...) so per-slot occupancy is
        attributable in traces.
        """
        samplers = self.samplers
        for slot in fabric.slots:
            if self._queue:
                for q in (slot.obs_q, slot.intq_is, slot.retq):
                    q.probe = self
            if self._agent or self._queue:
                slot.probe = self
                slot.fetch_agent.probe = self
                slot.load_agent.probe = self
                slot.retire_agent.probe = self
            tag = "" if slot.index == 0 else f"@{slot.index}"
            samplers.register(
                f"occ:ObsQ-R{tag}", lambda now, s=slot: s.obs_q.occupancy
            )
            samplers.register(
                f"occ:IntQ-F{tag}",
                lambda now, s=slot: s.fetch_agent.occupancy_at(now),
            )
            samplers.register(
                f"occ:IntQ-IS{tag}", lambda now, s=slot: s.intq_is.occupancy
            )
            samplers.register(
                f"occ:ObsQ-EX{tag}", lambda now, s=slot: s.retq.occupancy
            )
            samplers.register(
                f"occ:MLB{tag}", lambda now, s=slot: s.load_agent.mlb_occupancy
            )
            samplers.register(
                f"prf_port_delay{tag}",
                lambda now, s=slot: s.retire_agent.port_delay_cycles,
            )
            samplers.register(f"clkC{tag}", lambda now, s=slot: s.rf_cycle)
            if slot.reconfig is not None:
                samplers.register(
                    f"reconfigs{tag}", lambda now, s=slot: s.reconfig.reconfigs
                )
        if len(fabric.slots) > 1:
            samplers.register(
                "sched:stalls", lambda now: fabric.scheduler.stall_cycles
            )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-safe summary of everything the hub captured.

        This is what lands in ``SimStats.telemetry`` — plain dicts and
        lists only, so it survives the sweep pool's pickling, checkpoint
        JSONL, and ``--json`` serialization without loss.
        """
        return {
            "ring_capacity": self.sink.capacity,
            "sample_period": self.samplers.period,
            "groups": list(self.params.groups),
            "captured": len(self.sink),
            "dropped": self.sink.dropped,
            "counts": dict(sorted(self.counts.items())),
            "tracks": list(self.samplers.tracks),
            "events": [event.as_dict() for event in self.sink.events],
        }
