"""Periodic counter samplers.

The cycle model is one-pass in the timestamp domain — there is no global
per-cycle loop to hang a sampler off — so sampling piggybacks on retire
progress: the hub polls the bank at every retired instruction and the
bank fires once per crossed ``period`` boundary on the core-cycle grid.
Readings are taken at the retire time that crossed the boundary, which
keeps them deterministic (a pure function of the instruction stream).
"""

from __future__ import annotations

from typing import Callable


class SamplerBank:
    """Named counter tracks read on a fixed core-cycle cadence."""

    def __init__(self, period: int):
        self.period = period
        self._next = period
        self._tracks: list[tuple[str, Callable[[int], int]]] = []

    def register(self, track: str, read: Callable[[int], int]) -> None:
        """Add a counter track; *read* maps a core time to the value."""
        self._tracks.append((track, read))

    @property
    def tracks(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self._tracks)

    def due(self, now: int) -> bool:
        return bool(self._tracks) and self.period > 0 and now >= self._next

    def collect(self, now: int) -> list[tuple[str, int]]:
        """Read every track at *now* and advance past the crossed boundary."""
        readings = [(track, int(read(now))) for track, read in self._tracks]
        self._next = (now // self.period + 1) * self.period
        return readings
