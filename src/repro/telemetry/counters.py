"""Monotonic named counters for long-lived processes (the service daemon).

The event/ring machinery in this package observes *one simulation*; a
resident daemon needs the complementary view — process-lifetime counts
(requests admitted/rejected, jobs per terminal state, per-backend run
counts) that survive across simulations and are cheap enough to bump on
every request.  :class:`CounterBank` is that: a flat ``name -> int``
bank with atomic-enough increments (single bytecode dict ops under the
GIL), a sorted snapshot for the ``/stats`` endpoint, and no behavior —
it never feeds back into simulation state.
"""

from __future__ import annotations

from collections import defaultdict


class CounterBank:
    """A flat bank of monotonically increasing named counters."""

    def __init__(self) -> None:
        self._counts: dict[str, int] = defaultdict(int)

    def inc(self, name: str, amount: int = 1) -> None:
        """Add *amount* (default 1) to counter *name*, creating it at 0."""
        if amount < 0:
            raise ValueError(f"counters are monotonic; got {amount} for {name!r}")
        self._counts[name] += amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def merge(self, counts: dict[str, int]) -> None:
        """Bulk-increment from a ``name -> amount`` mapping."""
        for name, amount in counts.items():
            self.inc(name, amount)

    def snapshot(self) -> dict[str, int]:
        """Stable (key-sorted) copy, JSON-ready for ``/stats``."""
        return {name: self._counts[name] for name in sorted(self._counts)}

    def reset(self) -> None:
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def __repr__(self) -> str:
        return f"<CounterBank {len(self._counts)} counters>"
