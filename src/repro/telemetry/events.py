"""Typed telemetry events.

Each event is a slotted dataclass with a class-level ``kind`` tag and a
``ts`` (core-cycle timestamp) the exporters sort on.  ``as_dict`` returns
a JSON-safe mapping — the form events take inside
``SimStats.telemetry`` snapshots, checkpoint files, and ``--json``
payloads, so two runs of the same point serialize byte-identically
regardless of worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.isa.instructions import OpClass


@dataclass(slots=True)
class StageEvent:
    """Per-instruction stage timestamps (fetch through retire)."""

    kind: ClassVar[str] = "stage"

    seq: int
    pc: int
    label: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int

    @property
    def ts(self) -> int:
        return self.fetch

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "seq": self.seq,
            "pc": self.pc,
            "label": self.label,
            "fetch": self.fetch,
            "dispatch": self.dispatch,
            "issue": self.issue,
            "complete": self.complete,
            "retire": self.retire,
        }


@dataclass(slots=True)
class SquashEvent:
    """Pipeline squash resolving at ``ts`` (branch, disambiguation, ROI)."""

    kind: ClassVar[str] = "squash"

    ts: int
    reason: str

    def as_dict(self) -> dict:
        return {"kind": self.kind, "ts": self.ts, "reason": self.reason}


@dataclass(slots=True)
class QueueEvent:
    """Fabric queue endpoint event: push, pop, or full-drop.

    ``occupancy`` is the entry count immediately after the operation, so
    the stream doubles as a dense occupancy counter track.
    """

    kind: ClassVar[str] = "queue"

    ts: int
    queue: str
    op: str  # "push" | "pop" | "drop"
    occupancy: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ts": self.ts,
            "queue": self.queue,
            "op": self.op,
            "occupancy": self.occupancy,
        }


@dataclass(slots=True)
class AgentEvent:
    """Fetch/Load/Retire Agent event (FST/RST hit, stall, MLB activity)."""

    kind: ClassVar[str] = "agent"

    ts: int
    agent: str  # "fetch" | "load" | "retire" | "fabric"
    event: str  # "fst_hit", "rst_hit", "intqf_stall", "mlb_fill", ...
    value: int = 0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ts": self.ts,
            "agent": self.agent,
            "event": self.event,
            "value": self.value,
        }


@dataclass(slots=True)
class SampleEvent:
    """Periodic sampler reading of one counter track."""

    kind: ClassVar[str] = "sample"

    ts: int
    track: str
    value: int

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "ts": self.ts,
            "track": self.track,
            "value": self.value,
        }


def format_inst(dyn) -> str:
    """Render a :class:`~repro.workloads.trace.DynInst` as display text."""
    parts = [dyn.mnemonic]
    if dyn.dst:
        parts.append(dyn.dst)
    parts.extend(dyn.srcs)
    text = " ".join(parts)
    if dyn.op_class is OpClass.BRANCH:
        text += " (T)" if dyn.taken else " (NT)"
    return text
