"""Event-based core energy model (McPAT substitute).

Per-event energies are in picojoules, chosen to be representative of a
high-performance core in a 22 nm-class process; static power in watts.
Figure 18 only needs the *relative* energy of a PFM run against the
baseline run, which depends on (1) reduced misspeculation activity from
better prediction accuracy and (2) reduced static energy from shorter
runtime — the two attributions the paper makes — so absolute calibration
matters less than capturing those terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.params import CoreParams
from repro.core.stats import SimStats

# Per-event energies (pJ).
ENERGY_PJ = {
    "fetch": 18.0,  # I-cache read + predictor access + decode slice
    "rename_dispatch": 9.0,
    "issue": 6.0,  # select + wakeup slice
    "prf_read": 4.5,
    "prf_write": 5.5,
    "l1d_access": 22.0,
    "l1i_access": 20.0,
    "l2_access": 55.0,
    "l3_access": 240.0,
    "dram_access": 3200.0,
    "branch_update": 8.0,
}

#: Core static power in watts (leakage + clock tree) at nominal frequency.
CORE_STATIC_W = 1.9
CORE_FREQ_HZ = 2.0e9


@dataclass
class EnergyBreakdown:
    """Energy in nanojoules by source."""

    dynamic_nj: float = 0.0
    wasted_speculation_nj: float = 0.0
    static_nj: float = 0.0
    rf_dynamic_nj: float = 0.0
    rf_static_nj: float = 0.0
    detail: dict = field(default_factory=dict)

    @property
    def core_nj(self) -> float:
        return self.dynamic_nj + self.wasted_speculation_nj + self.static_nj

    @property
    def total_nj(self) -> float:
        return self.core_nj + self.rf_dynamic_nj + self.rf_static_nj

    def normalized_to(self, baseline: "EnergyBreakdown") -> float:
        if baseline.total_nj == 0:
            return 0.0
        return self.total_nj / baseline.total_nj


class CoreEnergyModel:
    """Turn a run's statistics into an energy estimate."""

    def __init__(self, core_params: CoreParams | None = None):
        self.core_params = core_params or CoreParams()

    def energy(
        self,
        stats: SimStats,
        rf_dynamic_w: float = 0.0,
        rf_static_w: float = 0.0,
        rf_freq_hz: float = 500e6,
    ) -> EnergyBreakdown:
        """Energy of one run; RF power terms add the component's share.

        The RF runs for the same wall-clock time as the core (it is on the
        same chip); its dynamic power applies while the ROI is active —
        approximated as the whole run, which is how the windows are set up.
        """
        e = ENERGY_PJ
        p = self.core_params
        detail = {}
        detail["fetch"] = stats.instructions * e["fetch"]
        detail["rename"] = stats.instructions * e["rename_dispatch"]
        detail["issue"] = stats.issued_ops * e["issue"]
        detail["prf"] = (
            stats.prf_reads * e["prf_read"] + stats.prf_writes * e["prf_write"]
        )
        detail["branch"] = stats.conditional_branches * e["branch_update"]

        levels = stats.memory_levels or {}
        for name, key in (("L1I", "l1i_access"), ("L1D", "l1d_access"),
                          ("L2", "l2_access"), ("L3", "l3_access")):
            accesses = levels.get(name, {}).get("accesses", 0)
            detail[name] = accesses * e[key]
        dram = levels.get("L3", {}).get("misses", 0)
        detail["DRAM"] = dram * e["dram_access"]

        dynamic_nj = sum(detail.values()) / 1000.0

        # Wasted speculation: each squash throws away roughly a front-end's
        # worth of in-flight work (fetch+rename energy for width x depth
        # instructions) — the activity McPAT attributes to wrong-path
        # execution in an execute-at-execute model.
        wasted_per_squash = (
            p.fetch_width
            * p.front_depth
            * (e["fetch"] + e["rename_dispatch"] + e["issue"])
        )
        wasted_nj = stats.pipeline_squashes * wasted_per_squash / 1000.0

        runtime_s = stats.cycles / CORE_FREQ_HZ
        static_nj = CORE_STATIC_W * runtime_s * 1e9
        rf_dynamic_nj = rf_dynamic_w * runtime_s * 1e9
        rf_static_nj = rf_static_w * runtime_s * 1e9

        return EnergyBreakdown(
            dynamic_nj=dynamic_nj,
            wasted_speculation_nj=wasted_nj,
            static_nj=static_nj,
            rf_dynamic_nj=rf_dynamic_nj,
            rf_static_nj=rf_static_nj,
            detail=detail,
        )
