"""Structural FPGA cost estimator (Table 4 substitute).

The paper synthesizes the custom components to a Xilinx Virtex
UltraScale+ xcvu3p and reports LUTs, FFs, BRAMs, DSPs, frequency, and
power.  Vivado is not available here, so this estimator maps each
component's structural inventory (see ``CustomComponent.structure``) to
resources with coefficients calibrated so the paper's Table 4 rows are
approximated:

* FFs ≈ queue/CAM storage bits plus pipeline registers (width-scaled).
* LUTs ≈ CAM match logic (per bit), datapath adders/comparators (per
  64-bit unit), and FSM decoding.
* BRAM when a table exceeds the distributed-RAM threshold (36 Kb blocks).
* DSPs for explicit multipliers.
* Frequency degrades with logic volume and BRAM routing pressure.
* Dynamic power scales with active resources and frequency; static power
  is device-dominated (~861 mW for the xcvu3p at this size).
"""

from __future__ import annotations

from dataclasses import dataclass

BRAM_BITS = 36 * 1024
BRAM_THRESHOLD_BITS = 16 * 1024
DEVICE_STATIC_MW = 861.0


@dataclass(frozen=True)
class FPGAEstimate:
    """One Table 4 row."""

    design: str
    lut: int
    ff: int
    bram: float
    dsp: int
    freq_mhz: int
    dyn_logic_mw: float
    dyn_io_mw: float
    static_mw: float

    def row(self) -> str:
        return (
            f"{self.design:<14} {self.lut:>6} {self.ff:>6} {self.bram:>6.1f}"
            f" {self.dsp:>4} {self.freq_mhz:>6} {self.dyn_logic_mw:>8.0f}"
            f" {self.dyn_io_mw:>6.0f} {self.static_mw:>8.0f}"
        )


#: Structural inventory for astar-alt (Kumar et al., CAL 2020): two 32 KB
#: prediction tables mimicking waymap/maparp plus two 512-entry worklists,
#: implemented in Block RAM.  The microarchitecture itself is the
#: EXACT-inspired alternative the paper's Section 5 measures but does not
#: detail; only its cost model is represented here.
ASTAR_ALT_STRUCTURE = {
    "queue_bits": 420,  # pointers/control (worklists live in BRAM)
    "cam_bits": 0,
    "comparators": 6,
    "adders": 6,
    "multipliers": 0,
    "fsm_states": 10,
    # Two 32KB prediction tables plus two 512-entry worklists, in BRAM.
    "table_bits": 2 * 32 * 1024 * 8 + 2 * 512 * 20,
    "width": 1,
}


class FPGAModel:
    """Map structural inventories to xcvu3p resource estimates."""

    # Calibrated coefficients (see module docstring).
    LUT_PER_CAM_BIT = 3.2
    LUT_PER_UNIT = 18.0  # per 64-bit adder/comparator
    LUT_PER_FSM_STATE = 8.0
    LUT_PER_QUEUE_BIT = 0.25  # mux/steering around distributed queues
    LUT_PER_BRAM = 30.0  # block addressing/decode
    FF_PER_STORAGE_BIT = 0.85
    FF_PIPELINE_PER_WIDTH = 150.0
    DYN_MW_PER_KLUT = 28.0
    DYN_MW_PER_KFF = 12.0
    DYN_MW_PER_BRAM = 3.0
    DYN_MW_PER_DSP = 6.5
    IO_MW_BASE = 42.0
    IO_MW_PER_WIDTH = 74.0

    def estimate(self, design: str, structure: dict) -> FPGAEstimate:
        queue_bits = structure.get("queue_bits", 0)
        cam_bits = structure.get("cam_bits", 0)
        units = structure.get("comparators", 0) + structure.get("adders", 0)
        fsm_states = structure.get("fsm_states", 0)
        table_bits = structure.get("table_bits", 0)
        width = max(1, structure.get("width", 1))
        dsp = structure.get("multipliers", 0)

        bram = 0.0
        distributed_table_bits = table_bits
        if table_bits > BRAM_THRESHOLD_BITS:
            bram = round(table_bits / BRAM_BITS * 2) / 2  # half-block steps
            distributed_table_bits = 0

        lut = int(
            cam_bits * self.LUT_PER_CAM_BIT
            + units * self.LUT_PER_UNIT
            + fsm_states * self.LUT_PER_FSM_STATE
            + queue_bits * self.LUT_PER_QUEUE_BIT
            + distributed_table_bits * 0.35
            + bram * self.LUT_PER_BRAM
        )
        ff = int(
            (queue_bits + cam_bits + distributed_table_bits)
            * self.FF_PER_STORAGE_BIT
            + width * self.FF_PIPELINE_PER_WIDTH
        )

        freq = 760.0 - 40.0 * (lut / 1000.0) - 11.0 * bram - 8.0 * dsp
        freq_mhz = int(max(300.0, min(760.0, freq)))

        dyn_logic = (
            lut / 1000.0 * self.DYN_MW_PER_KLUT
            + ff / 1000.0 * self.DYN_MW_PER_KFF
            + bram * self.DYN_MW_PER_BRAM
            + dsp * self.DYN_MW_PER_DSP
        ) * (freq_mhz / 500.0)
        dyn_io = self.IO_MW_BASE + self.IO_MW_PER_WIDTH * (width - 1) + dsp * 17
        static = DEVICE_STATIC_MW + lut * 0.0006

        return FPGAEstimate(
            design=design,
            lut=lut,
            ff=ff,
            bram=bram,
            dsp=dsp,
            freq_mhz=freq_mhz,
            dyn_logic_mw=dyn_logic,
            dyn_io_mw=dyn_io,
            static_mw=static,
        )

    def table4(self, structures: dict[str, dict]) -> list[FPGAEstimate]:
        """Estimate every design; returns rows in insertion order."""
        return [self.estimate(name, s) for name, s in structures.items()]


def table4_header() -> str:
    return (
        f"{'design':<14} {'LUT':>6} {'FF':>6} {'BRAM':>6} {'DSP':>4}"
        f" {'MHz':>6} {'dyn.mW':>8} {'IO.mW':>6} {'stat.mW':>8}"
    )
