"""Power, energy, and FPGA cost models (Section 5).

The paper uses McPAT for core energy and Vivado post-place-and-route
analysis for the FPGA-synthesized components.  Neither tool is available
here, so this package substitutes analytic models (DESIGN.md §3):

* :mod:`repro.power.core_energy` — event-based core energy (per-event
  energies for fetch/rename/issue/PRF/cache/DRAM activity plus static
  power), sufficient for the *relative* core+RF comparison of Figure 18.
* :mod:`repro.power.fpga` — structural resource estimator (LUT/FF/BRAM/
  DSP/frequency/power) driven by each component's structural inventory,
  with coefficients calibrated against the paper's Table 4.
"""

from repro.power.core_energy import CoreEnergyModel, EnergyBreakdown
from repro.power.fpga import FPGAEstimate, FPGAModel, ASTAR_ALT_STRUCTURE

__all__ = [
    "CoreEnergyModel",
    "EnergyBreakdown",
    "FPGAEstimate",
    "FPGAModel",
    "ASTAR_ALT_STRUCTURE",
]
