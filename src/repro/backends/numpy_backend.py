"""Vectorized columnar replay backend over a warm :class:`CompiledTrace`.

The python engine spends most of a warm replay on work that is *trace
pure* — fully determined by the compiled correct-path stream, identical
on every run of the same workload:

* the direction predictor / BTB / RAS call sequence (predict at fetch,
  train at retire of the same instruction, strictly in program order),
* the digest byte stream of the retired instructions, and
* the per-instruction decode (op class, lane/latency parameters,
  register names, source tuples).

This backend hoists all of that into a cached per-trace
:class:`TraceProfile`: control-flow outcome columns are computed once
arraywise (mispredicts = ``predicted != taken`` over the whole trace),
digest prefixes are cached as sha256 midstates per window, registers
become integer slots, and bulk counters (branches, loads, stores, PRF
traffic) are numpy reductions over column slices.  What remains — the
serial timing recurrence through the finite structural resources — runs
in a fused chunked loop (chunk = the engine's prune interval) that
operates on the *live* context structures (lane scheduler, ROB/IQ/LDQ/
STQ/fetch-queue occupancy, in-flight store book, memory hierarchy) in
exactly the order the stage objects would, so every exported counter and
the ``arch_digest`` are byte-identical to the python backend.  Final
register/memory state is folded with last-writer ``np.unique`` passes.

Eligibility is conservative: a compiled trace must cover the window and
the run must be hint-free (no PFM fabric — hence no faults/watchdogs —
no oracle, no telemetry, no instrumented core subclass).  Anything else
falls back to python (counted in ``SimStats.backend_fallbacks``).
"""

from __future__ import annotations

import hashlib
import heapq
from typing import TYPE_CHECKING

from repro.backends.base import ExecutionBackend, have_numpy
from repro.core.archstate import ArchDigest
from repro.core.core import _PRUNE_INTERVAL, SuperscalarCore
from repro.core.stages.execute import InFlightStore
from repro.frontend.btb import BranchTargetBuffer, ReturnAddressStack
from repro.isa.instructions import OpClass
from repro.memory.cache import LINE_SHIFT
from repro.registry.backends import register_backend
from repro.registry.predictors import make_predictor
from repro.workloads import tracecache

if TYPE_CHECKING:
    from repro.core.stats import SimStats
    from repro.workloads.tracecache import CompiledTrace

try:
    import numpy as np
except ImportError:  # pragma: no cover - numpy baked into the image
    np = None

#: Op-class code assignment mirrors the trace compiler's interning
#: (``tracecache._OPCODE_OF``): index within ``tuple(OpClass)``.
_OPCLASSES = tuple(OpClass)
_CODE_OF = {op: i for i, op in enumerate(_OPCLASSES)}
_BRANCH_CODE = _CODE_OF[OpClass.BRANCH]
_JUMP_CODE = _CODE_OF[OpClass.JUMP]
_LOAD_CODE = _CODE_OF[OpClass.LOAD]
_STORE_CODE = _CODE_OF[OpClass.STORE]

#: Loop dispatch kinds per op code: 0 = generic functional-unit op,
#: 1 = load, 2 = store, 3 = conditional branch, 4 = jump.
_KIND_OF_CODE = tuple(
    1 if op is OpClass.LOAD
    else 2 if op is OpClass.STORE
    else 3 if op is OpClass.BRANCH
    else 4 if op is OpClass.JUMP
    else 0
    for op in _OPCLASSES
)

#: Per-trace profiles, keyed (content key, compiled length) — a trace
#: extension compiles a new, longer object under the same key.  Content
#: addressing keeps stale entries harmless; the tracecache reset hook
#: flushes them anyway for benchmark/test hygiene.
_PROFILES: dict[tuple[str, int], "TraceProfile"] = {}
tracecache.register_reset_hook(_PROFILES.clear)


class ControlProfile:
    """Per-instruction control-flow outcomes for one (predictor, bp) pair.

    Built by replaying the front-end predictors over the whole trace in
    program order — the exact call sequence of the python engine, with
    fresh predictor/BTB/RAS instances — then frozen into flag columns:
    ``bundle`` (the op breaks the fetch bundle), ``misp`` (the op squash-
    resolves at execute: wrong branch direction or RAS return target),
    ``btb_bubble`` (a taken-control BTB miss costs a fetch bubble).
    """

    __slots__ = (
        "bundle", "misp", "btb_bubble",
        "misp_np", "ras_np", "btbb_np",
    )

    def __init__(self, trace: "CompiledTrace", predictor_name: str,
                 perfect_bp: bool) -> None:
        n = trace.length
        bundle = [False] * n
        misp = [False] * n
        btb_bubble = [False] * n
        ras_misp = [False] * n

        predictor = make_predictor(predictor_name)
        predict = predictor.predict
        update = predictor.update
        on_taken = predictor.on_taken_control
        btb = BranchTargetBuffer()
        btb_predict = btb.predict
        btb_update = btb.update
        ras = ReturnAddressStack()

        cols = trace.columns()
        mnemonics = cols[1]
        dsts = cols[3]
        codes = trace.op_codes
        pcs = trace.pcs
        npcs = trace.next_pcs
        takens = trace.taken
        bc = _BRANCH_CODE
        jc = _JUMP_CODE

        for i in range(n):
            code = codes[i]
            if code == bc:
                pc = pcs[i]
                taken = takens[i]
                predicted = predict(pc)
                if perfect_bp:
                    predicted = bool(taken)
                bundle[i] = predicted
                misp[i] = predicted != taken
                if predicted and taken:
                    npc = npcs[i]
                    if btb_predict(pc) != npc:
                        btb_bubble[i] = True
                        btb_update(pc, npc)
                update(pc, bool(taken))
            elif code == jc:
                pc = pcs[i]
                npc = npcs[i]
                on_taken(pc, npc)
                bundle[i] = True
                mn = mnemonics[i]
                if mn == "jalr":
                    if ras.pop() != npc:
                        misp[i] = True
                        ras_misp[i] = True
                else:
                    if mn == "jal" and dsts[i] is not None:
                        ras.push(pc + 4)
                    if btb_predict(pc) != npc:
                        btb_bubble[i] = True
                        btb_update(pc, npc)

        self.bundle = bundle
        self.misp = misp
        self.btb_bubble = btb_bubble
        self.misp_np = np.asarray(misp, dtype=np.bool_)
        self.ras_np = np.asarray(ras_misp, dtype=np.bool_)
        self.btbb_np = np.asarray(btb_bubble, dtype=np.bool_)


class TraceProfile:
    """Everything trace-pure, precomputed once and shared by every run."""

    __slots__ = (
        "trace", "srcs_slots", "dst_slots", "nslots", "iline_change",
        "op_np", "dst_idx_np", "dst_write_np", "dst_fold_np",
        "prf_reads_np", "control", "_digest_lines", "_digest_states",
    )

    def __init__(self, trace: "CompiledTrace") -> None:
        self.trace = trace
        n = trace.length
        registers = trace.registers

        # Integer register scoreboard: one slot per name appearing as a
        # destination or a source.  ``zero`` is excluded from writes (the
        # python engine skips it for reg_ready, prf_writes, and the
        # replayed register file alike) by encoding its dst slot as -1.
        slot_of = {name: k for k, name in enumerate(registers)}
        for srcs in trace.src_tuples:
            for reg in srcs:
                if reg not in slot_of:
                    slot_of[reg] = len(slot_of)
        self.nslots = len(slot_of)
        slots_by_tuple = [
            tuple(slot_of[reg] for reg in srcs) for srcs in trace.src_tuples
        ]
        self.srcs_slots = [slots_by_tuple[j] for j in trace.srcs_idx]
        dst_slot_of_idx = [
            -1 if (j < 0 or registers[j] == "zero") else slot_of[registers[j]]
            for j in range(len(registers))
        ]
        self.dst_slots = [
            -1 if j < 0 else dst_slot_of_idx[j] for j in trace.dst_idx
        ]

        nd = trace.ndarrays()
        self.op_np = nd["op_codes"]
        self.dst_idx_np = nd["dst_idx"]
        dst_slots_np = np.asarray(self.dst_slots, dtype=np.int32)
        self.dst_write_np = dst_slots_np >= 0
        self.dst_fold_np = self.dst_write_np

        # Instruction-line change column: ``last_iline`` tracks the line
        # of the previously fetched instruction, so in a fresh sequential
        # run the i-cache is consulted exactly where the line differs
        # from its predecessor (always at instruction 0).
        ilines = nd["pcs"] >> LINE_SHIFT
        change = np.empty(n, dtype=np.bool_)
        if n:
            change[0] = True
            np.not_equal(ilines[1:], ilines[:-1], out=change[1:])
        self.iline_change = change.tolist()

        # PRF read traffic per instruction: stores read exactly two
        # operands (base + data) on the python path; everything else
        # reads len(srcs).
        prf_reads = np.asarray(
            [len(t) for t in slots_by_tuple], dtype=np.int64
        )[np.asarray(trace.srcs_idx, dtype=np.int64)]
        prf_reads[self.op_np == _STORE_CODE] = 2
        self.prf_reads_np = prf_reads

        self.control: dict[tuple[str, bool], ControlProfile] = {}
        self._digest_lines: list[str] | None = None
        self._digest_states: dict[int, "hashlib._Hash"] = {}

    def control_profile(
        self, predictor_name: str, perfect_bp: bool
    ) -> ControlProfile:
        key = (predictor_name, perfect_bp)
        ctrl = self.control.get(key)
        if ctrl is None:
            ctrl = ControlProfile(self.trace, predictor_name, perfect_bp)
            self.control[key] = ctrl
        return ctrl

    def digest_state(self, n: int):
        """sha256 midstate over the first *n* retired-stream lines (a copy).

        The byte stream matches :meth:`ArchDigest.observe` exactly (hash
        results are independent of update() chunking); windows extend the
        longest cached prefix instead of rehashing from scratch.
        """
        states = self._digest_states
        cached = states.get(n)
        if cached is None:
            lines = self._digest_lines
            if lines is None:
                trace = self.trace
                cols = trace.columns()
                dsts = cols[3]
                pcs = trace.pcs
                npcs = trace.next_pcs
                addrs = trace.mem_addrs
                svals = trace.store_values
                dvals = trace.dst_values
                takens = trace.taken
                lines = [
                    f"{i};{pcs[i]};{npcs[i]};{dsts[i]};{dvals[i]!r};"
                    f"{addrs[i]};{svals[i]!r};{takens[i]}\n"
                    for i in range(trace.length)
                ]
                self._digest_lines = lines
            best_m, best = 0, None
            for m, hm in states.items():
                if best_m < m <= n:
                    best_m, best = m, hm
            cached = best.copy() if best is not None else hashlib.sha256()
            if n > best_m:
                cached.update("".join(lines[best_m:n]).encode())
            states[n] = cached
        return cached.copy()


def _profile(trace: "CompiledTrace") -> TraceProfile:
    key = (trace.key, trace.length)
    prof = _PROFILES.get(key)
    if prof is None:
        prof = TraceProfile(trace)
        _PROFILES[key] = prof
    return prof


def _exec_table(core: SuperscalarCore) -> list:
    """Per-op-code loop parameters: (kind, lanes, latency, block_cycles)."""
    p = core.params
    lane_map = core.execute_stage.lane_map
    ls = p.ls_lanes()
    table = []
    for code, op in enumerate(_OPCLASSES):
        kind = _KIND_OF_CODE[code]
        if kind in (1, 2):
            table.append((kind, ls, 0, 0))
        else:
            lanes, latency, block = lane_map[op]
            table.append((kind, lanes, latency, block))
    return table


@register_backend("numpy")
class NumpyBackend(ExecutionBackend):
    """Chunked vectorized replay of a warm compiled trace."""

    name = "numpy"

    def available(self) -> bool:
        return have_numpy()

    def eligible(
        self, core: "SuperscalarCore", trace: "CompiledTrace | None"
    ) -> bool:
        """Accept only runs this engine replays bit-identically.

        A compiled trace must exist (it always covers the window when it
        does); the run must be hint-free — no PFM fabric (which also
        excludes every FaultPlan and watchdog knob, both carried inside
        ``PFMParams``), no oracle, no telemetry; and the core must be the
        plain engine, not an instrumented subclass whose ``_process``
        override the fused loop would silently bypass.
        """
        if np is None or trace is None:
            return False
        if type(core) is not SuperscalarCore:
            return False
        config = core.config
        return (
            config.pfm is None
            and config.oracle is None
            and config.telemetry is None
        )

    def run(
        self,
        core: "SuperscalarCore",
        trace: "CompiledTrace | None",
        limit: int,
    ) -> "SimStats":
        assert trace is not None
        trace.check_columns()
        tracecache.STATS["replays"] += 1
        n = trace.length if limit > trace.length else limit
        prof = _profile(trace)
        config = core.config
        ctrl = prof.control_profile(
            core.params.predictor, bool(config.perfect_branch_prediction)
        )

        counters = _fused_replay(core, trace, prof, ctrl, n)
        self._bulk_stats(core, prof, ctrl, n, counters)
        core._finalize()

        regs_out = self._fold_regs(core, trace, prof, n)
        self._fold_memory(core, trace, prof, n)
        digest = ArchDigest()
        digest._hash = prof.digest_state(n)
        core.stats.arch_digest = digest.finalize(
            regs_out, core.workload.memory
        )
        return core.stats

    # ------------------------------------------------------------------ #
    # bulk reductions
    # ------------------------------------------------------------------ #

    def _bulk_stats(self, core, prof, ctrl, n, counters) -> None:
        (icache_stall, refill, squashes_rt, disamb, forwards) = counters
        stats = core.stats
        op = prof.op_np[:n]
        stats.instructions = n
        stats.conditional_branches = int(np.count_nonzero(op == _BRANCH_CODE))
        stats.loads = int(np.count_nonzero(op == _LOAD_CODE))
        stats.stores = int(np.count_nonzero(op == _STORE_CODE))
        stats.branch_mispredicts = int(np.count_nonzero(ctrl.misp_np[:n]))
        stats.ras_mispredicts = int(np.count_nonzero(ctrl.ras_np[:n]))
        stats.btb_miss_bubbles = int(np.count_nonzero(ctrl.btbb_np[:n]))
        stats.issued_ops = n
        stats.prf_reads = int(prof.prf_reads_np[:n].sum())
        stats.prf_writes = int(np.count_nonzero(prof.dst_write_np[:n]))
        # Squashes: every mispredict flag resolves through squash_at on
        # the python path, plus the runtime disambiguation violations.
        stats.pipeline_squashes = stats.branch_mispredicts + squashes_rt
        stats.squash_refill_cycles = refill
        stats.fetch_stall_icache_cycles = icache_stall
        stats.disambiguation_squashes = disamb
        stats.store_forwards = forwards

    def _fold_regs(self, core, trace, prof, n) -> dict:
        """Architectural register file after *n* instructions (last writer)."""
        regs_out = dict(core.workload.initial_regs or {})
        pos = np.nonzero(prof.dst_fold_np[:n])[0]
        if pos.size:
            rev = pos[::-1]
            _, first = np.unique(prof.dst_idx_np[rev], return_index=True)
            registers = trace.registers
            dst_idx = trace.dst_idx
            dvals = trace.dst_values
            for j in rev[first].tolist():
                regs_out[registers[dst_idx[j]]] = dvals[j]
        return regs_out

    def _fold_memory(self, core, trace, prof, n) -> None:
        """Apply the window's stores to the live image (last store wins).

        Nothing reads the memory image mid-run on an eligible (agent-
        free) replay, so the per-store updates the cursor would make
        collapse to one write per touched address.
        """
        pos = np.nonzero(prof.op_np[:n] == _STORE_CODE)[0]
        if pos.size:
            rev = pos[::-1]
            addr_np = trace.ndarrays()["mem_addrs"]
            _, first = np.unique(addr_np[rev], return_index=True)
            addrs = trace.mem_addrs
            svals = trace.store_values
            store = core.workload.memory.store
            for j in rev[first].tolist():
                store(addrs[j], svals[j])


def _fused_replay(core, trace, prof, ctrl, n):
    """The serial timing recurrence, fused across all four stages.

    One pass over the columns, operating on the live context structures
    (deques/heaps/lane tables/store book/hierarchy) with the exact
    operation order of the stage objects; returns the runtime-only
    counters (everything else reduces arraywise afterwards).
    """
    ctx = core.ctx
    p = core.params

    # --- columns (python lists: scalar-indexing ndarrays allocates) ---
    codes = trace.op_codes
    pcs = trace.pcs
    addrs = trace.mem_addrs
    srcs_slots = prof.srcs_slots
    dst_slots = prof.dst_slots
    iline_change = prof.iline_change
    bundle_l = ctrl.bundle
    misp_l = ctrl.misp
    btbb_l = ctrl.btb_bubble
    by_code = _exec_table(core)

    # --- live structures, shared with the stage objects -------------- #
    lanes_sched = ctx.lanes
    reserved = lanes_sched._reserved
    busy_until = lanes_sched._busy_until
    issue_count = lanes_sched._issue_count
    ic_get = issue_count.get
    issue_width = lanes_sched.issue_width

    rob_q = ctx.rob._releases
    rob_cap = ctx.rob.capacity
    ldq_q = ctx.ldq._releases
    ldq_cap = ctx.ldq.capacity
    stq_q = ctx.stq._releases
    stq_cap = ctx.stq.capacity
    fq_q = ctx.fetchq._releases
    fq_cap = ctx.fetchq.capacity
    iq_heap = ctx.iq._releases
    iq_cap = ctx.iq.capacity
    heappush = heapq.heappush
    heappop = heapq.heappop

    book = ctx.stores_by_line
    book_get = book.get
    rc = core.retire_stage.retire_counts
    rc_get = rc.get

    inst_access = ctx.hierarchy.inst_access
    data_access = ctx.hierarchy.data_access
    hits = ctx.stats.load_hits_by_level
    hits_get = hits.get

    reg_ready = [0] * prof.nslots

    fetch_width = p.fetch_width
    retire_width = p.retire_width
    front_depth = p.front_depth
    make_store = InFlightStore
    shift = LINE_SHIFT

    # --- cross-stage cursors (retire_floor stays 0: no Retire Agent) - #
    f_cycle = ctx.fetch_cycle
    f_used = ctx.fetch_used
    redirect_floor = ctx.redirect_floor
    prev_retire = ctx.prev_retire
    first_retire = ctx.first_retire

    icache_stall = 0
    refill = 0
    squashes_rt = 0
    disamb = 0
    forwards = 0
    data_src = 0
    addr = 0
    st = None

    start = 0
    while start < n:
        end = start + _PRUNE_INTERVAL
        if end > n:
            end = n
        for i in range(start, end):
            kind, lanes_t, latency, block = by_code[codes[i]]

            # ---- fetch: redirect / width / fetch queue / i-cache ---- #
            cycle = f_cycle
            used = f_used
            if redirect_floor > cycle:
                cycle = redirect_floor
                used = 0
            if used >= fetch_width:
                cycle += 1
                used = 0
            if len(fq_q) >= fq_cap:
                t = fq_q[0]
                if t > cycle:
                    cycle = t
                    used = 0
            if iline_change[i]:
                ready = inst_access(pcs[i], cycle)
                if ready > cycle:
                    icache_stall += ready - cycle
                    cycle = ready
                    used = 0
            f_cycle = cycle
            f_used = used + 1

            # ---- control, pre-dispatch: taken-control BTB bubble ---- #
            if kind >= 3 and btbb_l[i]:
                bubble = cycle + 2
                if bubble > redirect_floor:
                    redirect_floor = bubble

            # ---- dispatch: ROB / IQ / LDQ-STQ / fetch-queue release - #
            dt = cycle + front_depth
            if len(rob_q) >= rob_cap:
                t = rob_q[0]
                if t > dt:
                    dt = t
            while iq_heap and iq_heap[0] <= dt:
                heappop(iq_heap)
            if len(iq_heap) >= iq_cap:
                dt = iq_heap[0]
            if kind == 1:
                if len(ldq_q) >= ldq_cap:
                    t = ldq_q[0]
                    if t > dt:
                        dt = t
            elif kind == 2:
                if len(stq_q) >= stq_cap:
                    t = stq_q[0]
                    if t > dt:
                        dt = t
            fq_q.append(dt)
            if len(fq_q) > fq_cap:
                fq_q.popleft()

            # ---- execute: operand readiness + lane reservation ------ #
            ready = dt + 1
            if kind == 2:
                ss = srcs_slots[i]
                data_src = reg_ready[ss[1]]
                t = reg_ready[ss[0]]
                if t > ready:
                    ready = t
            else:
                for s in srcs_slots[i]:
                    t = reg_ready[s]
                    if t > ready:
                        ready = t
            cyc = ready
            scan_limit = ready + 100_000
            while True:
                if ic_get(cyc, 0) < issue_width:
                    lane = -1
                    for cand in lanes_t:
                        if cyc in reserved[cand]:
                            continue
                        if busy_until[cand] > cyc:
                            continue
                        lane = cand
                        break
                    if lane >= 0:
                        reserved[lane][cyc] = True
                        issue_count[cyc] = ic_get(cyc, 0) + 1
                        if block:
                            nb = cyc + block
                            if nb > busy_until[lane]:
                                busy_until[lane] = nb
                        break
                cyc += 1
                if cyc >= scan_limit:
                    raise RuntimeError(
                        "lane scheduler scan exhausted (model bug)"
                    )
            issue = cyc
            heappush(iq_heap, issue)

            if kind == 1:  # load: forward / violate / hierarchy
                agen = issue + 1
                addr = addrs[i]
                line = addr >> shift
                stores_line = book_get(line)
                conflict = None
                if stores_line:
                    for cand_st in stores_line:
                        if (
                            cand_st.addr == addr
                            and cand_st.seq < i
                            and (
                                cand_st.retire_time is None
                                or cand_st.retire_time > agen
                            )
                            and (conflict is None or cand_st.seq > conflict.seq)
                        ):
                            conflict = cand_st
                if conflict is not None:
                    if conflict.addr_ready > agen:
                        disamb += 1
                        violation = conflict.addr_ready
                        dr = conflict.data_ready
                        complete = (violation if violation > dr else dr) + 1
                        squashes_rt += 1  # squash_at(violation)
                        redirect = violation + 1
                        if redirect > redirect_floor:
                            base = (
                                redirect_floor
                                if redirect_floor > f_cycle
                                else f_cycle
                            )
                            refill += redirect - base
                            redirect_floor = redirect
                    else:
                        forwards += 1
                        dr = conflict.data_ready
                        complete = (agen if agen > dr else dr) + 1
                else:
                    avail, level = data_access(addr, agen)
                    hits[level] = hits_get(level, 0) + 1
                    complete = avail
            elif kind == 2:  # store: enter the in-flight book
                addr = addrs[i]
                addr_ready = issue + 1
                dready = data_src if data_src > addr_ready else addr_ready
                st = make_store(i, addr, addr_ready, dready)
                line = addr >> shift
                stores_line = book_get(line)
                if stores_line is None:
                    book[line] = [st]
                else:
                    stores_line.append(st)
                complete = addr_ready
            else:
                complete = issue + latency

            # ---- control, post-execute: squash + bundle break ------- #
            if kind >= 3:
                if misp_l[i]:  # squash_at(complete_time, "branch")
                    redirect = complete + 1
                    if redirect > redirect_floor:
                        base = (
                            redirect_floor
                            if redirect_floor > f_cycle
                            else f_cycle
                        )
                        refill += redirect - base
                        redirect_floor = redirect
                if bundle_l[i]:
                    f_used = fetch_width

            # ---- writeback ------------------------------------------ #
            ds = dst_slots[i]
            if ds >= 0:
                reg_ready[ds] = complete

            # ---- retire --------------------------------------------- #
            rt = complete + 1
            if prev_retire > rt:
                rt = prev_retire
            while rc_get(rt, 0) >= retire_width:
                rt += 1
            rc[rt] = rc_get(rt, 0) + 1
            prev_retire = rt
            if first_retire is None:
                first_retire = rt
            rob_q.append(rt)
            if len(rob_q) > rob_cap:
                rob_q.popleft()
            if kind == 1:
                ldq_q.append(rt)
                if len(ldq_q) > ldq_cap:
                    ldq_q.popleft()
            elif kind == 2:
                stq_q.append(rt)
                if len(stq_q) > stq_cap:
                    stq_q.popleft()
                data_access(addr, rt, is_store=True)
                st.retire_time = rt  # the commit scan's unique seq match
            # (branch predictor training consumed at profile time)

        # Chunk boundary == the python loop's prune cadence
        # (stats.instructions % _PRUNE_INTERVAL == 0).
        if end % _PRUNE_INTERVAL == 0:
            ctx.fetch_cycle = f_cycle
            ctx.prev_retire = prev_retire
            core._prune()
        start = end

    ctx.fetch_cycle = f_cycle
    ctx.fetch_used = f_used
    ctx.redirect_floor = redirect_floor
    ctx.prev_retire = prev_retire
    ctx.first_retire = first_retire
    if n:
        ctx.last_iline = pcs[n - 1] >> shift
    return icache_stall, refill, squashes_rt, disamb, forwards
