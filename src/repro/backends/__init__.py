"""Pluggable execution backends for the cycle engine's hot loop.

``python`` is the reference engine: every instruction walks through the
four stage objects (:mod:`repro.core.stages`) one at a time.  ``numpy``
replays a warm :class:`~repro.workloads.tracecache.CompiledTrace` in
vectorized chunks — per-trace precomputed predictor/BTB/RAS outcome
streams, digest byte prefixes, and integer-indexed register scoreboards
feed a fused loop that calls the same live resource and memory-hierarchy
objects in the same order, so its ``arch_digest`` and every exported
counter are byte-identical to the reference (the safety bar set by the
paper's hints-only argument, enforced by the differential test harness).

Selection: ``CoreParams.backend`` names an engine through the backend
registry; ``"auto"`` (the default) honours the ``REPRO_BACKEND``
environment variable and otherwise picks numpy when it imports.  Runs a
vectorized backend cannot replay bit-identically — PFM fabric attached,
oracles, telemetry, instrumented core subclasses, no compiled trace —
fall back to python and count ``SimStats.backend_fallbacks``.
"""

from __future__ import annotations

import os

from repro.backends.base import ENV_VAR, ExecutionBackend, have_numpy
from repro.registry.backends import backend_names, make_backend

__all__ = [
    "ENV_VAR",
    "ExecutionBackend",
    "backend_names",
    "have_numpy",
    "make_backend",
    "resolve_backend",
]


def resolve_backend(requested: str | None) -> ExecutionBackend:
    """Resolve a ``CoreParams.backend`` value to a backend instance.

    An explicit name ("python", "numpy") pins the engine.  ``"auto"``
    (or None/empty) consults ``$REPRO_BACKEND``, then autodetects: numpy
    when importable, else python.  Unknown names — explicit or from the
    environment — raise the registry's :class:`UnknownNameError`.
    """
    name = requested or "auto"
    if name == "auto":
        name = os.environ.get(ENV_VAR) or "auto"
    if name == "auto":
        name = "numpy" if have_numpy() else "python"
    return make_backend(name)
