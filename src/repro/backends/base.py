"""Execution-backend interface and selection rules.

A backend owns the cycle engine's per-run hot loop: given a built
:class:`~repro.core.core.SuperscalarCore` and (optionally) a compiled
trace, it produces the run's :class:`~repro.core.stats.SimStats`.  The
contract is *bit identity*: every backend must emit byte-identical
``arch_digest`` and ``SimStats.to_dict()`` payloads for any run it
accepts — the differential harness in ``tests/test_backend_equivalence``
pins this across all golden cases.

A backend that cannot replay a run bit-identically declines it via
:meth:`ExecutionBackend.eligible` and the core falls back to the
reference python engine, counting the event in the (non-field)
``SimStats.backend_fallbacks`` provenance attribute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.core.core import SuperscalarCore
    from repro.core.stats import SimStats
    from repro.workloads.tracecache import CompiledTrace

#: Environment escape hatch consulted when ``CoreParams.backend`` is
#: ``"auto"``: set ``REPRO_BACKEND=python`` (or ``numpy``/``auto``) to
#: steer every auto-selecting run in the process — the experiments CLI
#: uses it to reach ProcessPoolExecutor workers.
ENV_VAR = "REPRO_BACKEND"


def have_numpy() -> bool:
    """True when numpy imports in this interpreter."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy baked into the image
        return False
    return True


class ExecutionBackend:
    """One engine for the per-run hot loop."""

    #: Registry name; subclasses override.
    name = "abstract"

    def available(self) -> bool:
        """True when this backend's dependencies import here."""
        return True

    def eligible(
        self, core: "SuperscalarCore", trace: "CompiledTrace | None"
    ) -> bool:
        """True when this backend can run *core* bit-identically."""
        raise NotImplementedError

    def run(
        self,
        core: "SuperscalarCore",
        trace: "CompiledTrace | None",
        limit: int,
    ) -> "SimStats":
        """Execute the run and return the core's (shared) stats object."""
        raise NotImplementedError
