"""The reference execution backend: the per-instruction stage loop.

This is the engine every other backend is measured against: each dynamic
instruction walks through the four stage objects via
``SuperscalarCore._process`` (so instrumented core subclasses keep their
hooks), the digest observes every retired instruction, and the pruning
cadence bounds memory.  It accepts every run — cold compiles, functional
execution, PFM fabric, faults, watchdogs, oracles, telemetry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.backends.base import ExecutionBackend
from repro.core.archstate import ArchDigest
from repro.registry.backends import register_backend

if TYPE_CHECKING:
    from repro.core.core import SuperscalarCore
    from repro.core.stats import SimStats
    from repro.workloads.tracecache import CompiledTrace


@register_backend("python")
class PythonBackend(ExecutionBackend):
    """Reference per-instruction engine (always available, always eligible)."""

    name = "python"

    def eligible(
        self, core: "SuperscalarCore", trace: "CompiledTrace | None"
    ) -> bool:
        return True

    def run(
        self,
        core: "SuperscalarCore",
        trace: "CompiledTrace | None",
        limit: int,
    ) -> "SimStats":
        from repro.core.core import _PRUNE_INTERVAL

        workload = core.workload
        # Replay a compiled correct-path stream when one is available;
        # fall back to functional execution otherwise.  The two sources
        # are architecturally indistinguishable (same DynInst stream,
        # same live-memory store timing, same final regs/memory), which
        # the executed-vs-replayed arch_digest tests pin down.
        if trace is not None:
            source = trace.cursor(workload.memory, workload.initial_regs)
        else:
            source = workload.executor()
        digest = ArchDigest()
        observe = digest.observe
        process = core._process
        stats = core.stats
        prune = core._prune
        for dyn in source.run(limit):
            observe(dyn)
            process(dyn)
            if stats.instructions % _PRUNE_INTERVAL == 0:
                prune()
        core._finalize()
        stats.arch_digest = digest.finalize(
            getattr(source, "regs", None), source.memory
        )
        return stats
