"""Structural resource models for the one-pass cycle engine.

The cycle model processes the correct-path trace in program order, binding
each instruction to timestamps (fetch, dispatch, issue, complete, retire).
These helpers enforce the finite-capacity structures of Table 1 in that
timestamp domain:

* :class:`RingOccupancy` — in-order-release structures (ROB, LDQ, STQ,
  fetch queue): entry *i* cannot allocate until entry *i - capacity* has
  released.
* :class:`HeapOccupancy` — out-of-order-release structures (the issue
  queue): allocation waits for the earliest outstanding release.
* :class:`LaneScheduler` — execution lanes with per-cycle slots, a shared
  issue-width limiter, unpipelined ops, and the PRF read-port availability
  queries the Retire Agent's port-sharing (portP) model uses.
"""

from __future__ import annotations

import heapq
from collections import deque


class RingOccupancy:
    """Capacity-limited structure whose entries release in FIFO order."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._releases: deque[int] = deque()
        self.alloc_stalls = 0

    def earliest_alloc(self, now: int) -> int:
        """Earliest time >= *now* a new entry can allocate."""
        if len(self._releases) < self.capacity:
            return now
        oldest = self._releases[0]
        if oldest > now:
            self.alloc_stalls += 1
            return oldest
        return now

    def allocate(self, release_time: int) -> None:
        """Record an allocation that will release at *release_time*.

        Call after :meth:`earliest_alloc`; drops the oldest entry once the
        window slides past capacity.
        """
        self._releases.append(release_time)
        if len(self._releases) > self.capacity:
            self._releases.popleft()

    @property
    def tracked(self) -> int:
        return len(self._releases)


class HeapOccupancy:
    """Capacity-limited structure with out-of-order releases (issue queue)."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._releases: list[int] = []
        self.alloc_stalls = 0

    def earliest_alloc(self, now: int) -> int:
        heap = self._releases
        while heap and heap[0] <= now:
            heapq.heappop(heap)
        if len(heap) < self.capacity:
            return now
        self.alloc_stalls += 1
        return heap[0]

    def allocate(self, release_time: int) -> None:
        heapq.heappush(self._releases, release_time)

    @property
    def tracked(self) -> int:
        return len(self._releases)


class LaneScheduler:
    """Execution lanes with per-cycle reservations.

    Lanes are numbered globally (ALU lanes first, then load/store, then
    FP/complex).  Each lane accepts one new operation per cycle; an
    unpipelined operation additionally blocks its lane for its full
    latency.  A global per-cycle limiter enforces the core's issue width.
    """

    def __init__(self, num_lanes: int, issue_width: int):
        self.num_lanes = num_lanes
        self.issue_width = issue_width
        self._reserved: list[dict[int, bool]] = [dict() for _ in range(num_lanes)]
        self._busy_until = [0] * num_lanes  # for unpipelined ops
        self._issue_count: dict[int, int] = {}
        self._prune_floor = 0

    # ------------------------------------------------------------------ #

    def reserve(
        self,
        lanes: tuple[int, ...],
        earliest: int,
        *,
        block_cycles: int = 0,
        max_scan: int = 100_000,
    ) -> tuple[int, int]:
        """Reserve the earliest free slot on any of *lanes* at >= *earliest*.

        Returns ``(lane, cycle)``.  *block_cycles* > 0 marks the lane busy
        beyond the issue cycle (unpipelined dividers).
        """
        cycle = earliest
        for _ in range(max_scan):
            if self._issue_count.get(cycle, 0) < self.issue_width:
                for lane in lanes:
                    if cycle in self._reserved[lane]:
                        continue
                    if self._busy_until[lane] > cycle:
                        continue
                    self._take(lane, cycle, block_cycles)
                    return lane, cycle
            cycle += 1
        raise RuntimeError("lane scheduler scan exhausted (model bug)")

    def _take(self, lane: int, cycle: int, block_cycles: int) -> None:
        self._reserved[lane][cycle] = True
        self._issue_count[cycle] = self._issue_count.get(cycle, 0) + 1
        if block_cycles:
            self._busy_until[lane] = max(self._busy_until[lane], cycle + block_cycles)

    def is_lane_free(self, lane: int, cycle: int) -> bool:
        """True if *lane* issues nothing at *cycle* (its PRF port is idle).

        The Retire Agent uses this to model opportunistic PRF port sharing:
        "the select for this MUX is a busy signal in the register read
        stage of the execution lane" (Section 2.1).
        """
        return cycle not in self._reserved[lane] and self._busy_until[lane] <= cycle

    def earliest_free_port(
        self, lanes: tuple[int, ...], earliest: int, max_scan: int = 100_000
    ) -> int:
        """Earliest cycle >= *earliest* when any of *lanes* has an idle port."""
        cycle = earliest
        for _ in range(max_scan):
            for lane in lanes:
                if self.is_lane_free(lane, cycle):
                    return cycle
            cycle += 1
        raise RuntimeError("port scan exhausted (model bug)")

    def prune(self, before_cycle: int) -> None:
        """Drop reservation state older than *before_cycle* (memory bound)."""
        if before_cycle <= self._prune_floor:
            return
        self._prune_floor = before_cycle
        for reserved in self._reserved:
            stale = [c for c in reserved if c < before_cycle]
            for c in stale:
                del reserved[c]
        stale = [c for c in self._issue_count if c < before_cycle]
        for c in stale:
            del self._issue_count[c]
