"""The superscalar core cycle engine.

See the package docstring for the modelling approach.  The public entry
point is :func:`simulate`, which builds a core over a workload and returns
its :class:`~repro.core.stats.SimStats`.

The engine itself lives in :mod:`repro.core.stages`: four stage objects
(fetch, dispatch, execute, retire) over a shared
:class:`~repro.core.stages.context.PipelineContext`.
:class:`SuperscalarCore` is the driver that walks each dynamic
instruction through the stages in program order and finalizes the
statistics; the PFM fabric attaches its three agents to the stages'
:class:`~repro.core.stages.ports.AgentPort` hooks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import SimConfig
from repro.core.stages.context import PipelineContext
from repro.core.stages.dispatch import DispatchStage
from repro.core.stages.execute import ExecuteStage, InFlightStore
from repro.core.stages.fetch import FetchStage
from repro.core.stages.retire import RetireStage
from repro.core.stats import SimStats
from repro.isa.instructions import OpClass
from repro.registry.predictors import make_predictor
from repro.workloads import tracecache
from repro.workloads.trace import DynInst

if TYPE_CHECKING:  # avoid a circular import (workloads.base -> pfm -> core)
    from repro.workloads.base import Workload

_PRUNE_INTERVAL = 8192
_PRUNE_MARGIN = 4096

#: Backwards-compatible alias; the class moved to the execute stage.
_InFlightStore = InFlightStore


class SuperscalarCore:
    """One-pass timing engine over a correct-path dynamic stream."""

    def __init__(self, workload: "Workload", config: SimConfig):
        self.workload = workload
        self.config = config
        p = config.core
        self.params = p

        ctx = PipelineContext(config)
        self.ctx = ctx
        predictor = make_predictor(p.predictor)
        self.fetch_stage = FetchStage(ctx, predictor)
        self.dispatch_stage = DispatchStage(ctx)
        self.execute_stage = ExecuteStage(ctx)
        self.retire_stage = RetireStage(ctx, predictor)

        # Bound-method fast paths for the per-instruction loop (one
        # attribute hop instead of two on every stage call).
        self._fetch = self.fetch_stage.fetch
        self._predict_branch = self.fetch_stage.predict_branch
        self._btb_redirect = self.fetch_stage.btb_redirect
        self._predict_jump_target = self.fetch_stage.predict_jump_target
        self._dispatch = self.dispatch_stage.dispatch
        self._execute = self.execute_stage.execute
        self._retire = self.retire_stage.retire

        # Aliases kept for the public surface (tests, tools, notebooks).
        self.stats = ctx.stats
        self.hierarchy = ctx.hierarchy
        self.lanes = ctx.lanes
        self.predictor = predictor
        self.btb = self.fetch_stage.btb
        self.ras = self.fetch_stage.ras

        # Imported here: the fabric imports core params, so a module-level
        # import would be circular.
        from repro.pfm.fabric import PFMFabric

        self.fabric: PFMFabric | None = None
        if config.pfm is not None and workload.bitstream is not None:
            self.fabric = PFMFabric(
                workload.bitstream,
                config.pfm,
                p,
                ctx.lanes,
                ctx.hierarchy,
                workload.memory,
            )
            self.fabric.attach_ports(
                ctx.fetch_port, ctx.execute_port, ctx.retire_port
            )

        self.telemetry = None
        if config.telemetry is not None:
            # Imported here so telemetry-free runs never touch the
            # subsystem (layering mirrors the fault injector above).
            from repro.telemetry.hub import TelemetryHub

            self.telemetry = TelemetryHub(config.telemetry)
            ctx.telemetry = self.telemetry
            if self.fabric is not None:
                self.telemetry.attach_fabric(self.fabric)

    # Read-only views of the cross-stage cursors (instrumented subclasses
    # sample these around ``_process``).
    @property
    def _fetch_cycle(self) -> int:
        return self.ctx.fetch_cycle

    @property
    def _prev_retire(self) -> int:
        return self.ctx.prev_retire

    # ------------------------------------------------------------------ #
    # driver
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int | None = None) -> SimStats:
        limit = max_instructions or self.config.max_instructions
        trace = tracecache.get_trace(self.workload, limit)
        # Backend selection (ISSUE 6): an explicit CoreParams.backend
        # pins the engine, "auto" resolves via $REPRO_BACKEND and then
        # autodetection.  A non-python backend that is unavailable or
        # cannot replay this run bit-identically (PFM fabric, oracle,
        # telemetry, instrumented subclass, no compiled trace) falls
        # back to the reference engine, recorded in the non-field
        # provenance counter ``SimStats.backend_fallbacks``.
        from repro.backends import make_backend, resolve_backend

        backend = resolve_backend(self.params.backend)
        stats = self.stats
        if backend.name != "python":
            if backend.available() and backend.eligible(self, trace):
                stats.backend = backend.name
                return backend.run(self, trace, limit)
            stats.backend_fallbacks += 1
            backend = make_backend("python")
        stats.backend = "python"
        return backend.run(self, trace, limit)

    def _prune(self) -> None:
        ctx = self.ctx
        floor = min(ctx.prev_retire, ctx.fetch_cycle) - _PRUNE_MARGIN
        if floor > 0:
            ctx.lanes.prune(floor)
        self.retire_stage.prune()
        self.execute_stage.prune_stores()

    def _finalize(self) -> None:
        ctx = self.ctx
        start = ctx.first_retire or 0
        self.stats.cycles = max(1, ctx.prev_retire - start)
        self.stats.memory_levels = self.hierarchy.level_stats()
        if self.fabric is not None:
            fetch_agent = ctx.fetch_port.agent
            load_agent = ctx.execute_port.agent
            retire_agent = ctx.retire_port.agent
            self.stats.agent_loads = load_agent.loads_issued
            self.stats.agent_prefetches = load_agent.prefetches_issued
            self.stats.agent_load_misses = load_agent.load_misses
            self.stats.mlb_replays = load_agent.replays
            self.stats.prf_port_delay_cycles = retire_agent.port_delay_cycles
            self.stats.fetch_stall_pfm_cycles = fetch_agent.stall_cycles
            self.stats.agent_loads_sanitized = load_agent.loads_sanitized
            wd = self.fabric.watchdog_counters()
            self.stats.watchdog_fetch_timeouts = wd["fetch_timeouts"]
            self.stats.watchdog_dead_declarations = wd["dead_declarations"]
            self.stats.watchdog_squash_timeouts = wd["squash_timeouts"]
            self.stats.watchdog_override_disables = wd["override_disables"]
            self.stats.watchdog_overrides_suppressed = wd["overrides_suppressed"]
            self.stats.watchdog_load_throttle_events = wd["load_throttle_events"]
            self.stats.watchdog_loads_dropped = wd["loads_dropped"]
            if self.fabric.injector is not None:
                self.stats.fault_events = dict(self.fabric.injector.counts)
            self.stats.fabric_state = self.fabric.state
            rc_totals = self.fabric.reconfig_totals()
            if rc_totals is not None:
                self.stats.reconfigs = rc_totals["reconfigs"]
                self.stats.reconfig_cycles = rc_totals["reconfig_cycles"]
                self.stats.reloads_abandoned = rc_totals["reloads_abandoned"]
                self.stats.drain_stall_cycles = rc_totals["drain_stall_cycles"]
            self.stats.queue_stats = self.fabric.queue_stats()
            sched = self.fabric.scheduler
            self.stats.sched_obs_stall_cycles = sched.stall_cycles
            self.stats.sched_preemptions = sched.preemptions
            self.stats.fetch_override_conflicts = (
                self.fabric.fetch_override_conflicts
            )
            if len(self.fabric.slots) > 1:
                self.stats.tenant_stats = self.fabric.tenant_stats()
        if self.telemetry is not None:
            self.stats.telemetry = self.telemetry.snapshot()

    # ------------------------------------------------------------------ #
    # per-instruction pipeline
    # ------------------------------------------------------------------ #

    def _process(self, dyn: DynInst) -> None:
        ctx = self.ctx
        stats = ctx.stats
        fetch_time = self._fetch(dyn)

        fetch_agent = ctx.fetch_port.agent
        roi_fetch = fetch_agent is not None and fetch_agent.roi_fetch_active
        if roi_fetch:
            stats.fetched_in_roi += 1

        bundle_break = False
        mispredicted = False
        if dyn.op_class is OpClass.BRANCH:
            predicted, fetch_time = self._predict_branch(dyn, fetch_time, roi_fetch)
            bundle_break = predicted
            mispredicted = predicted != dyn.taken
            if predicted and dyn.taken:
                self._btb_redirect(dyn, fetch_time)
        elif dyn.op_class is OpClass.JUMP:
            self.predictor.on_taken_control(dyn.pc, dyn.next_pc)
            bundle_break = True
            mispredicted = self._predict_jump_target(dyn, fetch_time)

        dispatch_time = self._dispatch(dyn, fetch_time)
        issue_time, complete_time = self._execute(dyn, dispatch_time)

        if mispredicted:
            stats.branch_mispredicts += 1
            ctx.squash_at(complete_time, "branch")
        if bundle_break:
            # A predicted-taken control op ends the fetch bundle.
            ctx.fetch_used = ctx.params.fetch_width

        if dyn.dst is not None and dyn.dst != "zero":
            ctx.reg_ready[dyn.dst] = complete_time
            stats.prf_writes += 1

        if self.config.oracle is not None:
            extra = self.config.oracle.observe(dyn)
            if extra:
                # e.g. a slipstream leading-thread restart: stall the
                # front end while the leading thread rolls back.
                ctx.redirect_floor = max(
                    ctx.redirect_floor, complete_time + extra
                )

        self._retire(dyn, complete_time)
        stats.instructions += 1

        tel = ctx.telemetry
        if tel is not None:
            tel.stage(
                dyn, fetch_time, dispatch_time, issue_time, complete_time,
                ctx.prev_retire,
            )
            tel.maybe_sample(ctx.prev_retire)


def simulate(workload: "Workload", config: SimConfig) -> SimStats:
    """Run *workload* under *config* and return the statistics."""
    core = SuperscalarCore(workload, config)
    return core.run()
