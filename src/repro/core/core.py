"""The superscalar core cycle engine.

See the package docstring for the modelling approach.  The public entry
point is :func:`simulate`, which builds a core over a workload and returns
its :class:`~repro.core.stats.SimStats`.
"""

from __future__ import annotations

from repro.core.archstate import ArchDigest
from repro.core.params import SimConfig
from repro.core.resources import HeapOccupancy, LaneScheduler, RingOccupancy
from repro.core.stats import SimStats
from repro.frontend.btb import BranchTargetBuffer, ReturnAddressStack
from repro.frontend.tagescl import TageSCL
from repro.isa.instructions import OpClass
from repro.memory.cache import LINE_SHIFT
from typing import TYPE_CHECKING

from repro.memory.hierarchy import MemoryHierarchy
from repro.workloads.trace import DynInst

if TYPE_CHECKING:  # avoid a circular import (workloads.base -> pfm -> core)
    from repro.workloads.base import Workload

_PRUNE_INTERVAL = 8192
_PRUNE_MARGIN = 4096


class _InFlightStore:
    """Store tracked for forwarding/disambiguation.

    The window is time-based: a store occupies the store queue until its
    retire time, so a younger load issuing before that time interacts with
    it (forward or violate) even though the one-pass engine has already
    fully processed the store.
    """

    __slots__ = ("seq", "addr", "addr_ready", "data_ready", "retire_time")

    def __init__(self, seq: int, addr: int, addr_ready: int, data_ready: int):
        self.seq = seq
        self.addr = addr
        self.addr_ready = addr_ready
        self.data_ready = data_ready
        self.retire_time: int | None = None


class SuperscalarCore:
    """One-pass timing engine over a correct-path dynamic stream."""

    #: Fetch bubble on a taken-control BTB miss (target found in decode).
    _BTB_MISS_BUBBLE = 2

    def __init__(self, workload: "Workload", config: SimConfig):
        self.workload = workload
        self.config = config
        p = config.core
        self.params = p
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(config.memory)
        self.predictor = TageSCL()
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        self.lanes = LaneScheduler(p.num_lanes, p.issue_width)

        self._rob = RingOccupancy(p.rob_size)
        self._iq = HeapOccupancy(p.iq_size)
        self._ldq = RingOccupancy(p.ldq_size)
        self._stq = RingOccupancy(p.stq_size)
        self._fetchq = RingOccupancy(p.fetch_queue_size)

        self._reg_ready: dict[str, int] = {}
        self._stores_by_line: dict[int, list[_InFlightStore]] = {}

        self._fetch_cycle = 0
        self._fetch_used = 0
        self._redirect_floor = 0
        self._last_iline = -1
        self._prev_retire = 0
        self._retire_counts: dict[int, int] = {}
        self._retire_floor = 0
        self._first_retire: int | None = None

        # Imported here: the fabric imports core params, so a module-level
        # import would be circular.
        from repro.pfm.fabric import PFMFabric

        self.fabric: PFMFabric | None = None
        if config.pfm is not None and workload.bitstream is not None:
            self.fabric = PFMFabric(
                workload.bitstream,
                config.pfm,
                p,
                self.lanes,
                self.hierarchy,
                workload.memory,
            )

        self.telemetry = None
        if config.telemetry is not None:
            # Imported here so telemetry-free runs never touch the
            # subsystem (layering mirrors the fault injector above).
            from repro.telemetry.hub import TelemetryHub

            self.telemetry = TelemetryHub(config.telemetry)
            if self.fabric is not None:
                self.telemetry.attach_fabric(self.fabric)

        self._lane_map = {
            OpClass.INT_ALU: (p.alu_lanes(), p.int_alu_latency, 0),
            OpClass.INT_MUL: (p.fp_lanes(), p.int_mul_latency, 0),
            OpClass.INT_DIV: (p.fp_lanes(), p.int_div_latency, p.int_div_latency),
            OpClass.FP_ALU: (p.fp_lanes(), p.fp_alu_latency, 0),
            OpClass.FP_MUL: (p.fp_lanes(), p.fp_mul_latency, 0),
            OpClass.FP_DIV: (p.fp_lanes(), p.fp_div_latency, p.fp_div_latency),
            OpClass.BRANCH: (p.alu_lanes(), p.branch_latency, 0),
            OpClass.JUMP: (p.alu_lanes(), p.branch_latency, 0),
            OpClass.HALT: (p.alu_lanes(), 1, 0),
        }

    # ------------------------------------------------------------------ #
    # driver
    # ------------------------------------------------------------------ #

    def run(self, max_instructions: int | None = None) -> SimStats:
        limit = max_instructions or self.config.max_instructions
        executor = self.workload.executor()
        digest = ArchDigest()
        for dyn in executor.run(limit):
            digest.observe(dyn)
            self._process(dyn)
            if self.stats.instructions % _PRUNE_INTERVAL == 0:
                self._prune()
        self._finalize()
        self.stats.arch_digest = digest.finalize(
            getattr(executor, "regs", None), executor.memory
        )
        return self.stats

    def _prune(self) -> None:
        floor = min(self._prev_retire, self._fetch_cycle) - _PRUNE_MARGIN
        if floor > 0:
            self.lanes.prune(floor)
        # Drop retire-slot counters older than the retire horizon.
        stale = [c for c in self._retire_counts if c < self._prev_retire - 8]
        for c in stale:
            del self._retire_counts[c]
        self._prune_stores()

    def _finalize(self) -> None:
        start = self._first_retire or 0
        self.stats.cycles = max(1, self._prev_retire - start)
        self.stats.memory_levels = self.hierarchy.level_stats()
        if self.fabric is not None:
            fa = self.fabric.fetch_agent
            la = self.fabric.load_agent
            self.stats.agent_loads = la.loads_issued
            self.stats.agent_prefetches = la.prefetches_issued
            self.stats.agent_load_misses = la.load_misses
            self.stats.mlb_replays = la.replays
            self.stats.prf_port_delay_cycles = self.fabric.retire_agent.port_delay_cycles
            self.stats.fetch_stall_pfm_cycles = fa.stall_cycles
            self.stats.agent_loads_sanitized = la.loads_sanitized
            wd = self.fabric.watchdog
            self.stats.watchdog_fetch_timeouts = wd.fetch_timeouts
            self.stats.watchdog_dead_declarations = wd.dead_declarations
            self.stats.watchdog_squash_timeouts = wd.squash_timeouts
            self.stats.watchdog_override_disables = wd.override_disables
            self.stats.watchdog_overrides_suppressed = wd.overrides_suppressed
            self.stats.watchdog_load_throttle_events = wd.load_throttle_events
            self.stats.watchdog_loads_dropped = wd.loads_dropped
            if self.fabric.injector is not None:
                self.stats.fault_events = dict(self.fabric.injector.counts)
            self.stats.queue_stats = self.fabric.queue_stats()
        if self.telemetry is not None:
            self.stats.telemetry = self.telemetry.snapshot()

    # ------------------------------------------------------------------ #
    # per-instruction pipeline
    # ------------------------------------------------------------------ #

    def _process(self, dyn: DynInst) -> None:
        stats = self.stats
        fetch_time = self._fetch(dyn)

        roi_fetch = self.fabric is not None and self.fabric.roi_fetch_active
        if roi_fetch:
            stats.fetched_in_roi += 1

        bundle_break = False
        mispredicted = False
        if dyn.op_class is OpClass.BRANCH:
            predicted, fetch_time = self._predict_branch(dyn, fetch_time, roi_fetch)
            bundle_break = predicted
            mispredicted = predicted != dyn.taken
            if predicted and dyn.taken:
                self._btb_redirect(dyn, fetch_time)
        elif dyn.op_class is OpClass.JUMP:
            self.predictor.on_taken_control(dyn.pc, dyn.next_pc)
            bundle_break = True
            mispredicted = self._predict_jump_target(dyn, fetch_time)

        dispatch_time = self._dispatch(dyn, fetch_time)
        issue_time, complete_time = self._execute(dyn, dispatch_time)

        if mispredicted:
            stats.branch_mispredicts += 1
            self._squash_at(complete_time, "branch")
        if bundle_break:
            # A predicted-taken control op ends the fetch bundle.
            self._fetch_used = self.params.fetch_width

        if dyn.dst is not None and dyn.dst != "zero":
            self._reg_ready[dyn.dst] = complete_time
            stats.prf_writes += 1

        if self.config.oracle is not None:
            extra = self.config.oracle.observe(dyn)
            if extra:
                # e.g. a slipstream leading-thread restart: stall the
                # front end while the leading thread rolls back.
                self._redirect_floor = max(
                    self._redirect_floor, complete_time + extra
                )

        self._retire(dyn, complete_time)
        stats.instructions += 1

        tel = self.telemetry
        if tel is not None:
            tel.stage(
                dyn, fetch_time, dispatch_time, issue_time, complete_time,
                self._prev_retire,
            )
            tel.maybe_sample(self._prev_retire)

    # ------------------------------------------------------------------ #
    # fetch
    # ------------------------------------------------------------------ #

    def _fetch(self, dyn: DynInst) -> int:
        stats = self.stats
        cycle = self._fetch_cycle
        used = self._fetch_used

        if self._redirect_floor > cycle:
            cycle = self._redirect_floor
            used = 0
        if used >= self.params.fetch_width:
            cycle += 1
            used = 0

        fq_ready = self._fetchq.earliest_alloc(cycle)
        if fq_ready > cycle:
            cycle = fq_ready
            used = 0

        line = dyn.pc >> LINE_SHIFT
        if line != self._last_iline:
            ready = self.hierarchy.inst_access(dyn.pc, cycle)
            if ready > cycle:
                stats.fetch_stall_icache_cycles += ready - cycle
                cycle = ready
                used = 0
            self._last_iline = line

        self._fetch_cycle = cycle
        self._fetch_used = used + 1

        if self.fabric is not None:
            self.fabric.on_fetch(dyn.pc)
        return cycle

    def _predict_branch(
        self, dyn: DynInst, fetch_time: int, roi_fetch: bool
    ) -> tuple[bool, int]:
        """Return (predicted_direction, possibly-stalled fetch time)."""
        stats = self.stats
        stats.conditional_branches += 1

        # The core's own predictor always runs (and always trains); the
        # Fetch Agent merely overrides its output on FST hits (§2.2).
        tage_prediction = self.predictor.predict(dyn.pc)

        predicted = tage_prediction
        if self.config.perfect_branch_prediction:
            predicted = bool(dyn.taken)
        elif self.config.oracle is not None:
            oracle_prediction = self.config.oracle.predict(dyn)
            if oracle_prediction is not None:
                predicted = oracle_prediction

        fabric = self.fabric
        if fabric is not None and roi_fetch:
            entry = fabric.fst.lookup(dyn.pc)
            if entry is not None:
                stats.fetched_fst_hits += 1
                if self.telemetry is not None:
                    self.telemetry.agent(fetch_time, "fetch", "fst_hit")
                result = fabric.predict(entry.tag, fetch_time)
                if result is not None:
                    taken, effective = result
                    if effective > fetch_time:
                        # IntQ-F empty: the Fetch Agent stalls fetch (§2.2).
                        self._fetch_cycle = effective
                        self._fetch_used = 1
                        fetch_time = effective
                    predicted = taken
                    stats.pfm_predicted_branches += 1
                    if predicted != dyn.taken:
                        stats.pfm_mispredicts += 1
                    # Grade the consumed override for the watchdog's
                    # accuracy breaker (no-op unless its threshold is set).
                    fabric.watchdog.record_override(predicted == bool(dyn.taken))
                else:
                    # Watchdog/quiescence/degradation fallback to the
                    # core's predictor; the fabric settled the alignment
                    # (drop-or-debt) before returning None (§2.4).
                    stats.pfm_fallback_predictions += 1
        return predicted, fetch_time

    def _btb_redirect(self, dyn: DynInst, fetch_time: int) -> None:
        """Taken control flow needs its target from the BTB; a miss costs
        a fetch bubble while the front end computes the target."""
        predicted_target = self.btb.predict(dyn.pc)
        if predicted_target != dyn.next_pc:
            self.stats.btb_miss_bubbles += 1
            bubble = fetch_time + self._BTB_MISS_BUBBLE
            if bubble > self._redirect_floor:
                self._redirect_floor = bubble
            self.btb.update(dyn.pc, dyn.next_pc)

    def _predict_jump_target(self, dyn: DynInst, fetch_time: int) -> bool:
        """Jump target prediction; returns True on a (RAS) mispredict."""
        if dyn.mnemonic == "jal" and dyn.dst is not None:
            self.ras.push(dyn.pc + 4)
            self._btb_redirect(dyn, fetch_time)
            return False
        if dyn.mnemonic == "jalr":
            predicted = self.ras.pop()
            if predicted != dyn.next_pc:
                self.stats.ras_mispredicts += 1
                return True  # resolved at execute like a branch mispredict
            return False
        self._btb_redirect(dyn, fetch_time)  # plain j
        return False

    def _squash_at(self, resolve_time: int, reason: str) -> None:
        """Pipeline squash resolving at *resolve_time* (redirect + PFM sync)."""
        stats = self.stats
        stats.pipeline_squashes += 1
        if self.telemetry is not None:
            self.telemetry.squash(resolve_time, reason)
        redirect = resolve_time + 1
        if redirect > self._redirect_floor:
            stats.squash_refill_cycles += redirect - max(
                self._redirect_floor, self._fetch_cycle
            )
            self._redirect_floor = redirect
        if self.fabric is not None:
            done = self.fabric.on_core_squash(resolve_time, reason)
            if done > self._retire_floor:
                stats.retire_stall_squash_sync_cycles += done - resolve_time
                self._retire_floor = done

    # ------------------------------------------------------------------ #
    # dispatch / execute
    # ------------------------------------------------------------------ #

    def _dispatch(self, dyn: DynInst, fetch_time: int) -> int:
        dt = fetch_time + self.params.front_depth
        dt = self._rob.earliest_alloc(dt)
        dt = self._iq.earliest_alloc(dt)
        if dyn.op_class is OpClass.LOAD:
            dt = self._ldq.earliest_alloc(dt)
        elif dyn.op_class is OpClass.STORE:
            dt = self._stq.earliest_alloc(dt)
        self._fetchq.allocate(dt)
        return dt

    def _src_ready(self, srcs: tuple[str, ...]) -> int:
        ready = 0
        reg_ready = self._reg_ready
        for reg in srcs:
            t = reg_ready.get(reg, 0)
            if t > ready:
                ready = t
        return ready

    def _execute(self, dyn: DynInst, dispatch_time: int) -> tuple[int, int]:
        stats = self.stats
        op = dyn.op_class
        if op is OpClass.LOAD:
            return self._execute_load(dyn, dispatch_time)
        if op is OpClass.STORE:
            return self._execute_store(dyn, dispatch_time)

        lanes, latency, block = self._lane_map[op]
        ready = max(dispatch_time + 1, self._src_ready(dyn.srcs))
        _, issue = self.lanes.reserve(lanes, ready, block_cycles=block)
        self._iq.allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += len(dyn.srcs)
        return issue, issue + latency

    def _execute_load(self, dyn: DynInst, dispatch_time: int) -> tuple[int, int]:
        stats = self.stats
        stats.loads += 1
        ready = max(dispatch_time + 1, self._src_ready(dyn.srcs))
        _, issue = self.lanes.reserve(self.params.ls_lanes(), ready)
        self._iq.allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += len(dyn.srcs)
        agen_done = issue + 1

        conflict = self._latest_older_store(dyn, agen_done)
        if conflict is not None:
            if conflict.addr_ready > agen_done:
                # The load issued before an older same-address store had
                # resolved its address: memory-disambiguation violation.
                stats.disambiguation_squashes += 1
                violation = conflict.addr_ready
                complete = max(violation, conflict.data_ready) + 1
                self._squash_at(violation, "disambiguation")
                return issue, complete
            stats.store_forwards += 1
            complete = max(agen_done, conflict.data_ready) + 1
            return issue, complete

        avail, level = self.hierarchy.data_access(dyn.mem_addr, agen_done)
        stats.load_hits_by_level[level] = stats.load_hits_by_level.get(level, 0) + 1
        return issue, avail

    def _latest_older_store(self, dyn: DynInst, load_time: int) -> _InFlightStore | None:
        """Youngest older same-address store still in the STQ at *load_time*."""
        line = dyn.mem_addr >> LINE_SHIFT
        stores = self._stores_by_line.get(line)
        if not stores:
            return None
        best = None
        for store in stores:
            if (
                store.addr == dyn.mem_addr
                and store.seq < dyn.seq
                and (store.retire_time is None or store.retire_time > load_time)
                and (best is None or store.seq > best.seq)
            ):
                best = store
        return best

    def _execute_store(self, dyn: DynInst, dispatch_time: int) -> tuple[int, int]:
        stats = self.stats
        stats.stores += 1
        base_reg, data_reg = dyn.srcs[0], dyn.srcs[1]
        addr_src_ready = self._reg_ready.get(base_reg, 0)
        data_src_ready = self._reg_ready.get(data_reg, 0)
        ready = max(dispatch_time + 1, addr_src_ready)
        _, issue = self.lanes.reserve(self.params.ls_lanes(), ready)
        self._iq.allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += 2
        addr_ready = issue + 1
        data_ready = max(addr_ready, data_src_ready)

        store = _InFlightStore(dyn.seq, dyn.mem_addr, addr_ready, data_ready)
        line = dyn.mem_addr >> LINE_SHIFT
        self._stores_by_line.setdefault(line, []).append(store)
        return issue, addr_ready

    # ------------------------------------------------------------------ #
    # retire
    # ------------------------------------------------------------------ #

    def _retire(self, dyn: DynInst, complete_time: int) -> None:
        stats = self.stats
        rt = max(complete_time + 1, self._prev_retire, self._retire_floor)
        counts = self._retire_counts
        while counts.get(rt, 0) >= self.params.retire_width:
            rt += 1
        counts[rt] = counts.get(rt, 0) + 1
        self._prev_retire = rt
        if self._first_retire is None:
            self._first_retire = rt

        self._rob.allocate(rt)
        if dyn.op_class is OpClass.LOAD:
            self._ldq.allocate(rt)
        elif dyn.op_class is OpClass.STORE:
            self._stq.allocate(rt)
            self._commit_store(dyn, rt)

        if dyn.op_class is OpClass.BRANCH:
            self.predictor.update(dyn.pc, bool(dyn.taken))

        fabric = self.fabric
        if fabric is not None:
            was_active = fabric.roi_active
            if was_active:
                stats.retired_in_roi += 1
            entry = fabric.rst.lookup(dyn.pc)
            if entry is not None:
                if was_active:
                    stats.retired_rst_hits += 1
                    self._count_obs(entry)
                    if self.telemetry is not None:
                        self.telemetry.agent(rt, "retire", "rst_hit")
                fabric.on_retire(dyn, rt)
                if not was_active and fabric.roi_active:
                    # Beginning of ROI (§2.1): the Retire Agent signals the
                    # core to squash its pipeline so core and component are
                    # logically at the same point in the dynamic stream.
                    self._squash_at(rt, "roi_begin")

    def _count_obs(self, entry) -> None:
        from repro.pfm.snoop import SnoopKind

        stats = self.stats
        stats.obs_packets += 1
        if entry.kind is SnoopKind.DEST_VALUE:
            stats.obs_dest_value += 1
        elif entry.kind is SnoopKind.STORE_VALUE:
            stats.obs_store_value += 1
        elif entry.kind is SnoopKind.BRANCH_OUTCOME:
            stats.obs_branch_outcome += 1

    def _commit_store(self, dyn: DynInst, retire_time: int) -> None:
        self.hierarchy.data_access(dyn.mem_addr, retire_time, is_store=True)
        stores = self._stores_by_line.get(dyn.mem_addr >> LINE_SHIFT)
        if stores:
            for store in stores:
                if store.seq == dyn.seq:
                    store.retire_time = retire_time
                    break

    def _prune_stores(self) -> None:
        """Drop committed stores no future load can still race with.

        Any future load issues at or after the current fetch frontier, so
        stores whose retire time is behind it are safely architectural.
        """
        floor = self._fetch_cycle
        dead_lines = []
        for line, stores in self._stores_by_line.items():
            stores[:] = [
                s
                for s in stores
                if s.retire_time is None or s.retire_time > floor
            ]
            if not stores:
                dead_lines.append(line)
        for line in dead_lines:
            del self._stores_by_line[line]


def simulate(workload: "Workload", config: SimConfig) -> SimStats:
    """Run *workload* under *config* and return the statistics."""
    core = SuperscalarCore(workload, config)
    return core.run()
