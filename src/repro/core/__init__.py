"""Cycle-level superscalar core model (Table 1 configuration).

A 10-stage, 4-fetch/4-retire, 8-issue out-of-order core with 224-entry
ROB, 100-entry issue queue, 72-entry load and store queues, a 288-entry
physical register file, and 4 ALU + 2 load/store + 2 FP/complex execution
lanes, driven by the correct-path dynamic instruction stream from
:mod:`repro.workloads`.

The engine is *one-pass in program order*: each instruction is bound to
fetch/dispatch/issue/complete/retire timestamps subject to structural
capacity (rings/heaps in :mod:`repro.core.resources`), true dependences,
lane and issue-width contention, branch mispredictions (resolve-and-refill
penalty), memory-disambiguation squashes, and the memory hierarchy's
timestamped latencies.  The PFM fabric co-simulates against these
timestamps (see :mod:`repro.pfm.fabric`).
"""

from repro.core.params import CoreParams, PFMParams, SimConfig
from repro.core.stats import SimStats
from repro.core.core import SuperscalarCore, simulate

__all__ = [
    "CoreParams",
    "PFMParams",
    "SimConfig",
    "SimStats",
    "SuperscalarCore",
    "simulate",
]
