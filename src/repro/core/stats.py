"""Simulation statistics.

Everything the paper's tables and figures report is derived from these
counters: IPC (and speedup vs a baseline run), branch MPKI, FST/RST snoop
percentages inside the ROI (Tables 2 and 3), stall breakdowns, and the
event counts the energy model (Figure 18) consumes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, fields


def _slug(text: str) -> str:
    """Flatten an arbitrary label into a stable snake_case key segment."""
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


@dataclass
class SimStats:
    """Counters for one simulation run."""

    instructions: int = 0
    cycles: int = 0

    # branches
    conditional_branches: int = 0
    branch_mispredicts: int = 0
    pfm_predicted_branches: int = 0
    pfm_mispredicts: int = 0
    pfm_fallback_predictions: int = 0

    # memory
    loads: int = 0
    stores: int = 0
    load_hits_by_level: dict[str, int] = field(default_factory=dict)
    store_forwards: int = 0
    disambiguation_squashes: int = 0

    ras_mispredicts: int = 0
    btb_miss_bubbles: int = 0

    # fetch stalls
    fetch_stall_pfm_cycles: int = 0  # waiting on IntQ-F (§2.2)
    fetch_stall_icache_cycles: int = 0
    squash_refill_cycles: int = 0

    # retire / PFM agents
    retire_stall_squash_sync_cycles: int = 0
    obs_packets: int = 0
    obs_dest_value: int = 0
    obs_store_value: int = 0
    obs_branch_outcome: int = 0
    prf_port_delay_cycles: int = 0
    pipeline_squashes: int = 0

    # ROI accounting (Tables 2 and 3)
    fetched_in_roi: int = 0
    fetched_fst_hits: int = 0
    retired_in_roi: int = 0
    retired_rst_hits: int = 0

    # Load Agent
    agent_loads: int = 0
    agent_prefetches: int = 0
    agent_load_misses: int = 0
    mlb_replays: int = 0

    # microarchitectural event counts (energy model inputs)
    issued_ops: int = 0
    prf_reads: int = 0
    prf_writes: int = 0

    memory_levels: dict[str, dict[str, float]] = field(default_factory=dict)

    # graceful-degradation watchdog (repro.core.watchdog)
    watchdog_fetch_timeouts: int = 0
    watchdog_dead_declarations: int = 0
    watchdog_squash_timeouts: int = 0
    watchdog_override_disables: int = 0
    watchdog_overrides_suppressed: int = 0
    watchdog_load_throttle_events: int = 0
    watchdog_loads_dropped: int = 0

    # self-healing reconfiguration (repro.pfm.reconfig)
    reconfigs: int = 0
    reconfig_cycles: int = 0
    reloads_abandoned: int = 0
    drain_stall_cycles: int = 0
    #: Final fabric state machine state ("active", "disabled", ...);
    #: empty for plain-core runs.
    fabric_state: str = ""

    # multi-tenant fabric (repro.pfm.tenancy)
    #: Observation-crossing grants the fabric scheduler delayed, in core
    #: cycles summed across tenants (0 for single-tenant runs — the
    #: scheduler is pass-through with one slot).
    sched_obs_stall_cycles: int = 0
    #: Priority preemptions: a high-priority tenant evicted a lower-
    #: priority grant from a full crossing cycle.
    sched_preemptions: int = 0
    #: Fetch-override conflicts: overlapping FST PCs where a lower-
    #: priority tenant lost the override to a higher-priority one.
    fetch_override_conflicts: int = 0
    #: Per-tenant counter snapshots keyed ``<slot>:<tenant>`` (flattened
    #: as ``tenant_<slug>_<stat>``); empty for plain-core runs and kept
    #: empty for single-tenant fabric runs so seed-era exports are
    #: unchanged except for the three scalar counters above.
    tenant_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    # fault injection (repro.faults): events fired, by kind
    fault_events: dict[str, int] = field(default_factory=dict)
    #: Injected-load addresses the Load Agent had to align/clamp before
    #: use (non-zero only under address-corrupting faults).
    agent_loads_sanitized: int = 0

    #: Digest of the retired instruction stream + final architectural
    #: state (registers + memory); see :mod:`repro.core.archstate`.  Two
    #: runs retire identical architectural state iff digests are equal —
    #: the invariant the fault-injection oracle checks.
    arch_digest: str = ""

    #: Per-queue counters from the fabric's TimedQueues plus the Fetch
    #: Agent's IntQ-F: pushes, pops, max_occupancy (high-water mark),
    #: backpressure, full_rejects, dropped.  Empty for plain-core runs.
    queue_stats: dict[str, dict[str, int]] = field(default_factory=dict)

    #: Telemetry snapshot (:meth:`repro.telemetry.TelemetryHub.snapshot`)
    #: when the run was configured with ``SimConfig.telemetry``; plain
    #: JSON-safe dicts so the payload survives worker pickling.  None when
    #: no probes were attached.
    telemetry: dict | None = None

    def __post_init__(self) -> None:
        # Run provenance, deliberately NOT dataclass fields: which
        # execution backend produced the numbers and how often a
        # requested vectorized backend had to fall back to python.  The
        # backend equivalence harness pins every exported counter to be
        # byte-identical across backends, so provenance must stay out of
        # ``dataclasses.asdict`` (goldens, baseline cache, checkpoints)
        # and :meth:`to_dict` — both iterate ``fields()`` and therefore
        # skip these automatically.
        self.backend: str = "python"
        self.backend_fallbacks: int = 0

    # ------------------------------------------------------------------ #
    # derived metrics
    # ------------------------------------------------------------------ #

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def mpki(self) -> float:
        """Branch mispredictions per kilo-instruction."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.branch_mispredicts / self.instructions

    @property
    def fst_hit_pct(self) -> float:
        """% of fetched instructions in the ROI that hit the FST (Table 2/3)."""
        if not self.fetched_in_roi:
            return 0.0
        return 100.0 * self.fetched_fst_hits / self.fetched_in_roi

    @property
    def rst_hit_pct(self) -> float:
        """% of retired instructions in the ROI that hit the RST (Table 2/3)."""
        if not self.retired_in_roi:
            return 0.0
        return 100.0 * self.retired_rst_hits / self.retired_in_roi

    @property
    def pfm_accuracy(self) -> float:
        if not self.pfm_predicted_branches:
            return 0.0
        return 1.0 - self.pfm_mispredicts / self.pfm_predicted_branches

    def to_dict(self) -> dict[str, float | int | str]:
        """Flat, stably ordered export of every counter + derived metric.

        Dict-valued counters are flattened with slugged key segments
        (``load_hits_l1``, ``mem_l2_misses``, ``queue_obsq_r_pushes``,
        ``fault_drop_return``); the telemetry event snapshot is excluded
        (it is bulk event data, not a scalar metric).  Keys are sorted so
        CSV columns and manifest diffs are stable across runs.
        """
        flat: dict[str, float | int | str] = {}
        for f in fields(self):
            if f.name == "telemetry":
                continue
            value = getattr(self, f.name)
            if f.name == "load_hits_by_level":
                for level, count in value.items():
                    flat[f"load_hits_{_slug(level)}"] = count
            elif f.name == "memory_levels":
                for level, level_stats in value.items():
                    for stat, v in level_stats.items():
                        flat[f"mem_{_slug(level)}_{_slug(stat)}"] = v
            elif f.name == "fault_events":
                for kind, count in value.items():
                    flat[f"fault_{_slug(kind)}"] = count
            elif f.name == "queue_stats":
                for queue, queue_stats in value.items():
                    for stat, v in queue_stats.items():
                        flat[f"queue_{_slug(queue)}_{_slug(stat)}"] = v
            elif f.name == "tenant_stats":
                for tenant, tenant_stats in value.items():
                    for stat, v in tenant_stats.items():
                        flat[f"tenant_{_slug(tenant)}_{_slug(stat)}"] = v
            else:
                flat[f.name] = value
        flat["ipc"] = self.ipc
        flat["mpki"] = self.mpki
        flat["fst_hit_pct"] = self.fst_hit_pct
        flat["rst_hit_pct"] = self.rst_hit_pct
        flat["pfm_accuracy"] = self.pfm_accuracy
        return dict(sorted(flat.items()))

    def speedup_over(self, baseline: "SimStats") -> float:
        """IPC improvement relative to *baseline*, as a fraction.

        The paper normalizes to the plain core at 0%; a return of 1.54
        means +154% IPC.
        """
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc - 1.0

    def summary(self) -> str:
        lines = [
            f"instructions     {self.instructions}",
            f"cycles           {self.cycles}",
            f"IPC              {self.ipc:.3f}",
            f"branch MPKI      {self.mpki:.2f}",
            f"cond branches    {self.conditional_branches}"
            f" (mispredicted {self.branch_mispredicts})",
            f"loads/stores     {self.loads}/{self.stores}",
            f"squashes         {self.pipeline_squashes}"
            f" (disambiguation {self.disambiguation_squashes})",
        ]
        if self.pfm_predicted_branches:
            lines += [
                f"PFM predictions  {self.pfm_predicted_branches}"
                f" (mispredicted {self.pfm_mispredicts},"
                f" fallbacks {self.pfm_fallback_predictions})",
                f"FST hit % (ROI)  {self.fst_hit_pct:.1f}",
                f"RST hit % (ROI)  {self.rst_hit_pct:.1f}",
                f"fetch stall PFM  {self.fetch_stall_pfm_cycles} cycles",
            ]
        if (
            self.watchdog_fetch_timeouts
            or self.watchdog_override_disables
            or self.watchdog_load_throttle_events
        ):
            lines.append(
                f"watchdog         {self.watchdog_fetch_timeouts} fetch"
                f" timeouts, {self.watchdog_override_disables} override"
                f" disables, {self.watchdog_load_throttle_events} load"
                f" throttles"
            )
        if self.fault_events:
            fired = sum(self.fault_events.values())
            lines.append(f"faults injected  {fired}")
        if self.reconfigs or self.reloads_abandoned:
            lines.append(
                f"reconfigs        {self.reconfigs}"
                f" ({self.reconfig_cycles} cycles,"
                f" {self.reloads_abandoned} abandoned,"
                f" final state {self.fabric_state or 'active'})"
            )
        return "\n".join(lines)
