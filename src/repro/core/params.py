"""Configuration objects: the Table 1 core, PFM parameters, run config.

PFM parameter notation follows Section 3 of the paper:

* ``clkC_wW`` — C = core-to-RF frequency ratio, W = component width.
* ``delayD`` — component pipelined latency in RF cycles.
* ``queueQ`` — observation/intervention queue size.
* ``portP`` — which PRF read ports the Retire Agent may contend on:
  ``ALL`` (every lane), ``LS`` (both load/store lanes), ``LS1`` (one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.watchdog import RecoveryPolicy, WatchdogParams
from repro.memory.hierarchy import HierarchyParams
from repro.telemetry.params import TelemetryParams

if TYPE_CHECKING:  # layering: core never imports the fault subsystem
    from repro.faults.plan import FaultPlan
    from repro.pfm.tenancy import TenantSpec


@dataclass
class CoreParams:
    """Superscalar core configuration (Table 1)."""

    fetch_width: int = 4
    retire_width: int = 4
    issue_width: int = 8
    pipeline_depth: int = 10  # fetch to retire
    front_depth: int = 6  # fetch to dispatch (rename/decode stages)
    rob_size: int = 224
    iq_size: int = 100
    ldq_size: int = 72
    stq_size: int = 72
    prf_size: int = 288
    fetch_queue_size: int = 32
    num_alu_lanes: int = 4
    num_ls_lanes: int = 2
    num_fp_lanes: int = 2

    #: Conditional branch predictor, resolved through the predictor
    #: registry (:mod:`repro.registry`); the paper's baseline is TAGE-SC-L.
    predictor: str = "tagescl"

    #: Execution backend, resolved through the backend registry
    #: (:mod:`repro.registry.backends`).  ``"auto"`` picks the fastest
    #: available engine (numpy when importable, else python) and honours
    #: the ``REPRO_BACKEND`` environment escape hatch; an explicit
    #: ``"python"``/``"numpy"`` pins the engine for this run.  Runs the
    #: vectorized backend cannot replay bit-identically (PFM fabric,
    #: oracles, telemetry, uncompiled workloads) fall back to python and
    #: count the event in ``SimStats.backend_fallbacks``.
    backend: str = "auto"

    # Execution latencies (cycles); division is unpipelined.
    int_alu_latency: int = 1
    int_mul_latency: int = 3
    int_div_latency: int = 12
    fp_alu_latency: int = 3
    fp_mul_latency: int = 4
    fp_div_latency: int = 12
    branch_latency: int = 1

    @property
    def num_lanes(self) -> int:
        return self.num_alu_lanes + self.num_ls_lanes + self.num_fp_lanes

    def alu_lanes(self) -> tuple[int, ...]:
        return tuple(range(self.num_alu_lanes))

    def ls_lanes(self) -> tuple[int, ...]:
        start = self.num_alu_lanes
        return tuple(range(start, start + self.num_ls_lanes))

    def fp_lanes(self) -> tuple[int, ...]:
        start = self.num_alu_lanes + self.num_ls_lanes
        return tuple(range(start, start + self.num_fp_lanes))


PORT_ALL = "ALL"
PORT_LS = "LS"
PORT_LS1 = "LS1"


FETCH_POLICY_STALL = "stall"
FETCH_POLICY_PROCEED = "proceed"


@dataclass
class PFMParams:
    """Custom component and agent parameters (Section 3 notation).

    ``fetch_policy`` selects between the paper's two Fetch Agent designs
    (Section 2.4): ``"stall"`` blocks the fetch unit until the prediction
    packet arrives (the design evaluated in Section 4); ``"proceed"``
    falls back to the core's own predictor when IntQ-F is empty and keeps
    count of how many late packets to drop when they eventually arrive.
    """

    clk_ratio: int = 4  # C: CLK_core / CLK_rf
    width: int = 4  # W: packets/predictions per RF cycle
    delay: int = 4  # D: pipelined execution latency in RF cycles
    queue_size: int = 32  # Q: observation/intervention queue entries
    port: str = PORT_ALL  # P: PRF port sharing option
    mlb_entries: int = 64  # missed load buffer (fixed in the paper)
    mlb_replay_period: int = 8  # core cycles between MLB replay attempts
    watchdog_rf_cycles: int = 200_000  # chicken-switch threshold (§2.4)
    fetch_policy: str = FETCH_POLICY_STALL  # §2.4 alternative designs
    component_overrides: dict = field(default_factory=dict)  # structure sizes
    #: Graceful-degradation thresholds (all off by default; see
    #: :mod:`repro.core.watchdog`).
    watchdog: WatchdogParams = field(default_factory=WatchdogParams)
    #: Declarative fault-injection plan applied to the fabric's queues and
    #: agents (:mod:`repro.faults.plan`); None = fault-free.
    fault_plan: "FaultPlan | None" = None
    #: Self-healing runtime-reconfiguration policy (inactive by default:
    #: dead components disable the fabric permanently, exactly as before;
    #: see :mod:`repro.pfm.reconfig`).
    recovery: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    #: Co-resident tenants sharing the fabric (:mod:`repro.pfm.tenancy`);
    #: each spec adds one fabric slot beside the primary (slot 0, the
    #: workload's own bitstream).  Empty = single-tenant, the paper's
    #: configuration.
    tenants: tuple["TenantSpec", ...] = ()

    def label(self) -> str:
        if self.tenants:
            extra = "+".join(spec.label() for spec in self.tenants)
            return f"{self._base_label()} [{extra}]"
        return self._base_label()

    def _base_label(self) -> str:
        return (
            f"clk{self.clk_ratio}_w{self.width}, delay{self.delay}, "
            f"queue{self.queue_size}, port{self.port}"
        )

    def __post_init__(self) -> None:
        if self.clk_ratio < 1:
            raise ValueError("clk_ratio must be >= 1")
        if self.width < 1:
            raise ValueError("width must be >= 1")
        if self.delay < 0:
            raise ValueError("delay must be >= 0")
        if self.queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        if self.port not in (PORT_ALL, PORT_LS, PORT_LS1):
            raise ValueError(f"unknown port option {self.port!r}")
        if self.fetch_policy not in (FETCH_POLICY_STALL, FETCH_POLICY_PROCEED):
            raise ValueError(f"unknown fetch policy {self.fetch_policy!r}")
        # JSON round-trips and CLI plumbing hand tenants over as a list;
        # normalize so configs hash/compare consistently.
        if isinstance(self.tenants, list):
            self.tenants = tuple(self.tenants)


@dataclass
class SimConfig:
    """One simulation run.

    ``oracle`` plugs an alternative prediction source into the fetch stage
    (used by the Slipstream 2.0 comparator): an object with
    ``observe(dyn)`` called for every retired instruction and
    ``predict(dyn) -> bool | None`` consulted for conditional branches
    (None = fall through to the core's own predictor).
    """

    core: CoreParams = field(default_factory=CoreParams)
    memory: HierarchyParams = field(default_factory=HierarchyParams)
    pfm: PFMParams | None = None  # None = plain baseline core
    max_instructions: int = 200_000
    perfect_branch_prediction: bool = False
    perfect_dcache: bool = False
    oracle: object | None = None
    #: Introspection probes (:mod:`repro.telemetry`); None = no sink
    #: attached, and the probe sites cost one pointer test each.
    telemetry: TelemetryParams | None = None

    def __post_init__(self) -> None:
        if self.perfect_dcache:
            self.memory.perfect_dcache = True
