"""Pipeline timeline visualization for debugging and teaching.

Renders a classic textual pipeline diagram from an instrumented run::

    seq  pc       instruction              |F.....D..I..C...R
    12   0x1084   ld t2, t1                |   F...D.IC......R

Stages: F fetch, D dispatch (enters the issue queue), I issue, C complete,
R retire.  Useful for inspecting how a PFM intervention (a stalled fetch
waiting on IntQ-F, a squash-sync retire stall) reshapes the pipeline.

Since the :mod:`repro.telemetry` subsystem this module is a thin view
over its stage-event stream: :class:`TracingCore` is a plain
:class:`~repro.core.core.SuperscalarCore` run with a stage-only telemetry
ring attached, and ``records`` projects the captured
:class:`~repro.telemetry.events.StageEvent` stream into
:class:`StageRecord` rows for rendering.  There is exactly one
instrumentation path — the hub's probe sites.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.core import SuperscalarCore
from repro.core.params import SimConfig
from repro.telemetry.params import TelemetryParams
from repro.workloads.base import Workload


@dataclass(slots=True)
class StageRecord:
    """Stage timestamps of one dynamic instruction."""

    seq: int
    pc: int
    text: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int


class TracingCore(SuperscalarCore):
    """SuperscalarCore with per-instruction stage capture via telemetry.

    ``max_records`` bounds the telemetry ring; the head-anchored ring
    keeps the *first* ``max_records`` instructions and counts the rest as
    dropped.  Any ``telemetry`` already present on *config* is replaced
    by the stage-only capture configuration.
    """

    def __init__(self, workload: Workload, config: SimConfig,
                 max_records: int = 10_000):
        config = dataclasses.replace(
            config,
            telemetry=TelemetryParams(
                ring_capacity=max_records,
                sample_period=0,
                groups=("stage",),
            ),
        )
        super().__init__(workload, config)

    @property
    def records(self) -> list[StageRecord]:
        """Captured stage events, oldest first, as render-ready records."""
        return [
            StageRecord(
                seq=event.seq,
                pc=event.pc,
                text=event.label,
                fetch=event.fetch,
                dispatch=event.dispatch,
                issue=event.issue,
                complete=event.complete,
                retire=event.retire,
            )
            for event in self.telemetry.sink.events
        ]


def render_timeline(
    records: list[StageRecord],
    start_seq: int = 0,
    count: int = 32,
    max_width: int = 90,
) -> str:
    """Render *count* instructions starting at *start_seq* as a diagram."""
    window = [r for r in records if r.seq >= start_seq][:count]
    if not window:
        return "(no records in range)"
    origin = min(r.fetch for r in window)
    lines = [f"{'seq':>6} {'pc':>8}  {'instruction':<24} |timeline (cycle {origin}+)"]
    for r in window:
        lane = {}
        for mark, when in (
            ("F", r.fetch), ("D", r.dispatch), ("I", r.issue),
            ("C", r.complete), ("R", r.retire),
        ):
            offset = when - origin
            if offset < max_width:
                # Later stages overwrite earlier marks landing on the
                # same cycle (single-cycle flow-through).
                lane[offset] = mark
        if not lane:
            continue
        width = min(max(lane) + 1, max_width)
        cells = ["."] * width
        for offset, mark in lane.items():
            cells[offset] = mark
        lines.append(
            f"{r.seq:>6} {r.pc:>#8x}  {r.text:<24} |{''.join(cells)}"
        )
    return "\n".join(lines)


def trace_pipeline(
    workload: Workload,
    config: SimConfig,
    max_records: int = 10_000,
) -> TracingCore:
    """Run *workload* with stage tracing; returns the core with records."""
    core = TracingCore(workload, config, max_records=max_records)
    core.run()
    return core
