"""Pipeline timeline visualization for debugging and teaching.

Renders a classic textual pipeline diagram from an instrumented run::

    seq  pc       instruction              |F.....D..I..C...R
    12   0x1084   ld t2, t1                |   F...D.IC......R

Stages: F fetch, D dispatch (enters the issue queue), I issue, C complete,
R retire.  Useful for inspecting how a PFM intervention (a stalled fetch
waiting on IntQ-F, a squash-sync retire stall) reshapes the pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.core import SuperscalarCore
from repro.core.params import SimConfig
from repro.isa.instructions import OpClass
from repro.workloads.base import Workload
from repro.workloads.trace import DynInst


@dataclass(slots=True)
class StageRecord:
    """Stage timestamps of one dynamic instruction."""

    seq: int
    pc: int
    text: str
    fetch: int
    dispatch: int
    issue: int
    complete: int
    retire: int


class TracingCore(SuperscalarCore):
    """SuperscalarCore that records per-instruction stage timestamps."""

    def __init__(self, workload: Workload, config: SimConfig,
                 max_records: int = 10_000):
        super().__init__(workload, config)
        self.records: list[StageRecord] = []
        self._max_records = max_records
        self._current: list[int] = []

    def _fetch(self, dyn: DynInst) -> int:
        fetch = super()._fetch(dyn)
        self._current = [fetch, fetch, fetch, fetch]
        return fetch

    def _dispatch(self, dyn: DynInst, fetch_time: int) -> int:
        dispatch = super()._dispatch(dyn, fetch_time)
        self._current[1] = dispatch
        return dispatch

    def _execute(self, dyn: DynInst, dispatch_time: int):
        issue, complete = super()._execute(dyn, dispatch_time)
        self._current[2] = issue
        self._current[3] = complete
        return issue, complete

    def _retire(self, dyn: DynInst, complete_time: int) -> None:
        super()._retire(dyn, complete_time)
        if len(self.records) < self._max_records:
            fetch, dispatch, issue, complete = self._current
            self.records.append(
                StageRecord(
                    seq=dyn.seq,
                    pc=dyn.pc,
                    text=_render_inst(dyn),
                    fetch=fetch,
                    dispatch=dispatch,
                    issue=issue,
                    complete=complete,
                    retire=self._prev_retire,
                )
            )


def _render_inst(dyn: DynInst) -> str:
    parts = [dyn.mnemonic]
    if dyn.dst:
        parts.append(dyn.dst)
    parts.extend(dyn.srcs)
    text = " ".join(parts)
    if dyn.op_class is OpClass.BRANCH:
        text += " (T)" if dyn.taken else " (NT)"
    return text


def render_timeline(
    records: list[StageRecord],
    start_seq: int = 0,
    count: int = 32,
    max_width: int = 90,
) -> str:
    """Render *count* instructions starting at *start_seq* as a diagram."""
    window = [r for r in records if r.seq >= start_seq][:count]
    if not window:
        return "(no records in range)"
    origin = min(r.fetch for r in window)
    lines = [f"{'seq':>6} {'pc':>8}  {'instruction':<24} |timeline (cycle {origin}+)"]
    for r in window:
        lane = {}
        for mark, when in (
            ("F", r.fetch), ("D", r.dispatch), ("I", r.issue),
            ("C", r.complete), ("R", r.retire),
        ):
            offset = when - origin
            if offset < max_width:
                # Later stages overwrite earlier marks landing on the
                # same cycle (single-cycle flow-through).
                lane[offset] = mark
        if not lane:
            continue
        width = min(max(lane) + 1, max_width)
        cells = ["."] * width
        for offset, mark in lane.items():
            cells[offset] = mark
        lines.append(
            f"{r.seq:>6} {r.pc:>#8x}  {r.text:<24} |{''.join(cells)}"
        )
    return "\n".join(lines)


def trace_pipeline(
    workload: Workload,
    config: SimConfig,
    max_records: int = 10_000,
) -> TracingCore:
    """Run *workload* with stage tracing; returns the core with records."""
    core = TracingCore(workload, config, max_records=max_records)
    core.run()
    return core
