"""Cycle accounting: counterfactual CPI stacks.

Attributes a run's cycles to bottleneck classes by differencing
idealized runs (the same technique behind Figure 12's motivation bars):

* ``branch``  = cycles recovered ONLY by perfect branch prediction
* ``memory``  = cycles recovered ONLY by a perfect data cache
* ``overlap`` = the doubly-counted part (both bottlenecks stall the same
  cycles).  It can be *negative* — synergy: removing both recovers more
  than the sum of removing each alone, exactly bfs's Figure 12 behaviour
  (11% + 152% vs 426%)
* ``compute`` = cycles with both idealized (issue width, dependences,
  latencies — the irreducible part at this window)

The PFM variant of the stack shows exactly which components of the
baseline's stack a custom component removes — astar's predictor collapses
the branch slice; bfs's engine eats into both slices at once.

The intra-run detail — average cycles an instruction spends between each
pair of pipeline stages, and squash counts by reason — comes from the
:mod:`repro.telemetry` event stream of the measured run rather than any
analysis-private instrumentation, so this module and ``pipeview`` share
exactly one probe path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.core import simulate
from repro.core.params import PFMParams, SimConfig
from repro.core.stats import SimStats
from repro.telemetry.params import TelemetryParams


@dataclass(frozen=True)
class CPIStack:
    """Cycle attribution for one workload/window."""

    instructions: int
    total_cycles: int
    compute_cycles: int
    branch_cycles: int
    memory_cycles: int
    overlap_cycles: int
    #: Mean cycles between consecutive stage pairs, from the measured
    #: run's telemetry stage stream (empty when tracing was disabled).
    stage_gaps: dict[str, float] = field(default_factory=dict)
    #: Pipeline squashes by reason, from the squash event stream.
    squash_counts: dict[str, int] = field(default_factory=dict)

    @property
    def cpi(self) -> float:
        return self.total_cycles / self.instructions

    def component(self, name: str) -> float:
        """Cycles-per-instruction of one stack component."""
        cycles = {
            "compute": self.compute_cycles,
            "branch": self.branch_cycles,
            "memory": self.memory_cycles,
            "overlap": self.overlap_cycles,
        }[name]
        return cycles / self.instructions

    def render(self, label: str = "") -> str:
        header = f"CPI stack{f' ({label})' if label else ''}:"
        total = self.cpi
        lines = [header]
        for name in ("compute", "branch", "memory", "overlap"):
            value = self.component(name)
            share = 100 * value / total if total else 0.0
            bar = "#" * max(0, int(round(share / 2.5))) if share > 0 else ""
            lines.append(f"  {name:<8} {value:6.2f}  {share:5.1f}%  {bar}")
        lines.append(f"  {'total':<8} {total:6.2f}")
        if self.stage_gaps:
            gaps = "  ".join(
                f"{name}={value:.1f}" for name, value in self.stage_gaps.items()
            )
            lines.append(f"  stage gaps (avg cycles): {gaps}")
        if self.squash_counts:
            squashes = "  ".join(
                f"{reason}={count}"
                for reason, count in sorted(self.squash_counts.items())
            )
            lines.append(f"  squashes: {squashes}")
        return "\n".join(lines)


def stage_gap_breakdown(snapshot: dict) -> dict[str, float]:
    """Mean cycles between consecutive stages, from a telemetry snapshot.

    ``front`` fetch→dispatch, ``issue_wait`` dispatch→issue, ``execute``
    issue→complete, ``retire_wait`` complete→retire.
    """
    sums = {"front": 0, "issue_wait": 0, "execute": 0, "retire_wait": 0}
    count = 0
    for event in snapshot.get("events", ()):
        if event["kind"] != "stage":
            continue
        count += 1
        sums["front"] += event["dispatch"] - event["fetch"]
        sums["issue_wait"] += event["issue"] - event["dispatch"]
        sums["execute"] += event["complete"] - event["issue"]
        sums["retire_wait"] += event["retire"] - event["complete"]
    if not count:
        return {}
    return {name: total / count for name, total in sums.items()}


def squash_breakdown(snapshot: dict) -> dict[str, int]:
    """Squash counts by reason, from a telemetry snapshot."""
    counts: dict[str, int] = {}
    for event in snapshot.get("events", ()):
        if event["kind"] == "squash":
            reason = event["reason"]
            counts[reason] = counts.get(reason, 0) + 1
    return counts


def cpi_stack(
    build_workload: Callable[[], object],
    window: int = 20_000,
    pfm: PFMParams | None = None,
) -> CPIStack:
    """Compute the counterfactual CPI stack for a workload.

    *build_workload* must return a fresh workload per call (state is
    mutated by execution).  With *pfm*, the stack describes the PFM run
    (its idealized variants also keep the component attached).  The
    measured (non-idealized) run carries a stage+squash telemetry ring,
    feeding the stack's intra-run breakdowns.
    """
    def run(telemetry: TelemetryParams | None = None, **kwargs) -> SimStats:
        return simulate(
            build_workload(),
            SimConfig(
                max_instructions=window, pfm=pfm, telemetry=telemetry,
                **kwargs,
            ),
        )

    base = run(
        telemetry=TelemetryParams(
            # Stage events are one per retired instruction; size the ring
            # so a full window plus its squashes fits without drops.
            ring_capacity=2 * window,
            sample_period=0,
            groups=("stage", "squash"),
        )
    )
    snapshot = base.telemetry or {}
    perf_branch = run(perfect_branch_prediction=True)
    perf_memory = run(perfect_dcache=True)
    perf_both = run(perfect_branch_prediction=True, perfect_dcache=True)

    branch = max(0, base.cycles - perf_branch.cycles)
    memory = max(0, base.cycles - perf_memory.cycles)
    compute = perf_both.cycles
    # branch + memory - overlap must equal (base - compute) exactly, so
    # the four components always sum to the total.  Negative overlap is
    # synergy (see module docstring).
    overlap = branch + memory - (base.cycles - compute)
    # Inclusion-exclusion: branch-only + memory-only + overlap + compute
    # partitions the total exactly.
    return CPIStack(
        instructions=base.instructions,
        total_cycles=base.cycles,
        compute_cycles=compute,
        branch_cycles=branch - overlap,
        memory_cycles=memory - overlap,
        overlap_cycles=overlap,
        stage_gaps=stage_gap_breakdown(snapshot),
        squash_counts=squash_breakdown(snapshot),
    )


def compare_stacks(baseline: CPIStack, treated: CPIStack) -> str:
    """Side-by-side rendering with the per-component reduction."""
    lines = [
        f"{'component':<10} {'baseline':>9} {'treated':>9} {'reduction':>10}"
    ]
    for name in ("compute", "branch", "memory", "overlap"):
        before = baseline.component(name)
        after = treated.component(name)
        if before > 0:
            reduction = f"{100 * (1 - after / before):+.0f}%"
        else:
            reduction = "—"
        lines.append(f"{name:<10} {before:>9.2f} {after:>9.2f} {reduction:>10}")
    lines.append(
        f"{'total':<10} {baseline.cpi:>9.2f} {treated.cpi:>9.2f}"
        f" {100 * (1 - treated.cpi / baseline.cpi):>+9.0f}%"
    )
    return "\n".join(lines)
