"""The pipeline context shared by all four stages.

Everything more than one stage reads or writes lives here: the run
configuration, statistics, structural resources (ROB / issue queue /
LDQ / STQ / fetch queue rings, the lane scheduler), the register
scoreboard, the in-flight store book, the cross-stage timing cursors,
and the squash machinery.  Stage objects hold stage-local state (the
front-end predictors, retire-slot counters, execution lane map) and
mutate the context exactly as the monolithic ``SuperscalarCore._process``
did before the decomposition — the golden-stats harness pins that the
split is behavior-preserving to the bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.params import CoreParams, SimConfig
from repro.core.resources import HeapOccupancy, LaneScheduler, RingOccupancy
from repro.core.stages.ports import AgentPort
from repro.core.stats import SimStats
from repro.memory.hierarchy import MemoryHierarchy

if TYPE_CHECKING:
    from repro.core.stages.execute import InFlightStore


class PipelineContext:
    """Shared state of one simulated core instance."""

    __slots__ = (
        "config",
        "params",
        "stats",
        "hierarchy",
        "lanes",
        "rob",
        "iq",
        "ldq",
        "stq",
        "fetchq",
        "reg_ready",
        "stores_by_line",
        "fetch_cycle",
        "fetch_used",
        "redirect_floor",
        "last_iline",
        "prev_retire",
        "retire_floor",
        "first_retire",
        "fetch_port",
        "execute_port",
        "retire_port",
        "telemetry",
    )

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        p: CoreParams = config.core
        self.params = p
        self.stats = SimStats()
        self.hierarchy = MemoryHierarchy(config.memory)
        self.lanes = LaneScheduler(p.num_lanes, p.issue_width)

        self.rob = RingOccupancy(p.rob_size)
        self.iq = HeapOccupancy(p.iq_size)
        self.ldq = RingOccupancy(p.ldq_size)
        self.stq = RingOccupancy(p.stq_size)
        self.fetchq = RingOccupancy(p.fetch_queue_size)

        self.reg_ready: dict[str, int] = {}
        self.stores_by_line: dict[int, list["InFlightStore"]] = {}

        self.fetch_cycle = 0
        self.fetch_used = 0
        self.redirect_floor = 0
        self.last_iline = -1
        self.prev_retire = 0
        self.retire_floor = 0
        self.first_retire: int | None = None

        # One attach point per pipeline interface (§2.1–2.3).
        self.fetch_port = AgentPort("fetch")
        self.execute_port = AgentPort("execute")
        self.retire_port = AgentPort("retire")

        self.telemetry: Any | None = None  # TelemetryHub when tracing

    # ------------------------------------------------------------------ #
    # squash (cross-stage: resolves at execute, redirects fetch, stalls
    # retire through the Retire Agent's squash-done handshake)
    # ------------------------------------------------------------------ #

    def squash_at(self, resolve_time: int, reason: str) -> None:
        """Pipeline squash resolving at *resolve_time* (redirect + PFM sync)."""
        stats = self.stats
        stats.pipeline_squashes += 1
        if self.telemetry is not None:
            self.telemetry.squash(resolve_time, reason)
        redirect = resolve_time + 1
        if redirect > self.redirect_floor:
            stats.squash_refill_cycles += redirect - max(
                self.redirect_floor, self.fetch_cycle
            )
            self.redirect_floor = redirect
        agent = self.retire_port.agent
        if agent is not None:
            done: int = agent.on_squash(resolve_time, reason)
            if done > self.retire_floor:
                stats.retire_stall_squash_sync_cycles += done - resolve_time
                self.retire_floor = done
