"""Explicit stage architecture of the superscalar core.

The cycle engine is decomposed into four stage objects sharing one
:class:`~repro.core.stages.context.PipelineContext`:

- :class:`~repro.core.stages.fetch.FetchStage` — front-end cursor,
  direction/target prediction; Fetch Agent port (§2.2)
- :class:`~repro.core.stages.dispatch.DispatchStage` — structural
  allocation (ROB / IQ / LDQ / STQ / fetch queue)
- :class:`~repro.core.stages.execute.ExecuteStage` — ALU issue path and
  the LSU path (forwarding, disambiguation); Load Agent port (§2.3)
- :class:`~repro.core.stages.retire.RetireStage` — in-order commit,
  store commit; Retire Agent port (§2.1)

Each PFM-facing stage exposes a uniform :class:`~repro.core.stages.
ports.AgentPort`; :meth:`repro.pfm.fabric.PFMFabric.attach_ports` plugs
one agent adapter into each.  A detached port is the plain-baseline fast
path.  :class:`~repro.core.core.SuperscalarCore` remains the driver that
walks an instruction through the stages in program order.
"""

from repro.core.stages.context import PipelineContext
from repro.core.stages.dispatch import DispatchStage
from repro.core.stages.execute import ExecuteStage, InFlightStore
from repro.core.stages.fetch import FetchStage
from repro.core.stages.ports import (
    AgentPort,
    ExecuteAgentHook,
    FetchAgentHook,
    RetireAgentHook,
)
from repro.core.stages.retire import RetireStage

__all__ = [
    "PipelineContext",
    "AgentPort",
    "FetchAgentHook",
    "ExecuteAgentHook",
    "RetireAgentHook",
    "FetchStage",
    "DispatchStage",
    "ExecuteStage",
    "InFlightStore",
    "RetireStage",
]
