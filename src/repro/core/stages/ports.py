"""Agent ports: the fixed pipeline interfaces PFM agents attach to.

The paper's three Agents observe and intervene at fixed points of the
pipeline (§2.1–2.3): the Fetch Agent at the fetch stage (FST hits,
prediction overrides), the Load Agent at the execute stage's LSU path
(injected loads/prefetches via the MLB), and the Retire Agent at the
retire stage (RST hits, observation packets, squash synchronization).

Each :class:`~repro.core.stages` stage object exposes one
:class:`AgentPort`; :class:`~repro.pfm.fabric.PFMFabric` plugs an
adapter for each of its agents into the matching port when a core is
built with a PFM configuration.  A detached port (``agent is None``) is
the plain-baseline fast path — stages test the agent reference once per
hook site, the same cost the inlined ``fabric is not None`` checks paid
before the stage decomposition.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Protocol, runtime_checkable

if TYPE_CHECKING:
    from repro.pfm.tenancy import SlotHit
    from repro.workloads.trace import DynInst


@runtime_checkable
class FetchAgentHook(Protocol):
    """What the fetch stage needs from an attached Fetch Agent (§2.2)."""

    @property
    def roi_fetch_active(self) -> bool:
        """True once fetch has passed the begin-of-ROI marker."""
        ...

    def on_fetch(self, pc: int) -> None:
        """Per-fetch bookkeeping (ROI entry, per-call markers)."""
        ...

    def lookup(self, pc: int) -> Optional["SlotHit"]:
        """Fetch Snoop Table lookup for *pc* (slot-tagged hit)."""
        ...

    def predict(self, hit: "SlotHit", fetch_time: int) -> tuple[bool, int] | None:
        """Custom prediction for an FST-hit branch, or ``None`` to fall
        back to the core's own predictor (watchdog / quiescence, §2.4).
        The hit carries its owning fabric slot; overlapping-PC losers are
        resolved by tenant priority inside the fabric."""
        ...

    def record_override(self, correct: bool) -> None:
        """Grade a consumed override for the accuracy breaker."""
        ...

    @property
    def stall_cycles(self) -> int:
        """Fetch cycles spent stalled on IntQ-F (finalize-time stat)."""
        ...


@runtime_checkable
class ExecuteAgentHook(Protocol):
    """What the execute stage exposes to an attached Load Agent (§2.3).

    The Load Agent's loads and prefetches enter the LSU path through the
    shared lane scheduler and memory hierarchy (wired at fabric build
    time); through this port the stage surfaces the agent's accounting
    at finalize.
    """

    @property
    def loads_issued(self) -> int: ...

    @property
    def prefetches_issued(self) -> int: ...

    @property
    def load_misses(self) -> int: ...

    @property
    def replays(self) -> int: ...

    @property
    def loads_sanitized(self) -> int: ...


@runtime_checkable
class RetireAgentHook(Protocol):
    """What the retire stage needs from an attached Retire Agent (§2.1)."""

    @property
    def roi_active(self) -> bool:
        """True while the component is enabled (inside the ROI)."""
        ...

    def lookup(self, pc: int) -> Optional["SlotHit"]:
        """Retire Snoop Table lookup for *pc* (slot-tagged hit)."""
        ...

    def on_retire(self, dyn: "DynInst", hit: "SlotHit", retire_time: int) -> None:
        """Build and push the observation packet(s) for an RST hit.
        Retire-side observation is non-exclusive: every slot matching the
        PC observes (winner first, then ``hit.others``)."""
        ...

    def on_squash(self, resolve_time: int, reason: str) -> int:
        """Run the squash/squash-done protocol; returns squash-done time
        (the Retire Agent stalls the retire unit until then)."""
        ...

    @property
    def port_delay_cycles(self) -> int:
        """PRF read-port contention delay (finalize-time stat)."""
        ...


class AgentPort:
    """One stage's attachment point for one PFM agent.

    At most one agent may be attached at a time — the paper's context
    isolation (§2.4) swaps a context's component out before another's
    goes in, and the same holds for the agent adapters here.
    """

    __slots__ = ("stage", "agent")

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self.agent: Any | None = None

    def attach(self, agent: Any) -> None:
        if self.agent is not None:
            raise RuntimeError(
                f"an agent is already attached to the {self.stage} port;"
                " detach it first (one context at a time, §2.4)"
            )
        self.agent = agent

    def detach(self) -> None:
        self.agent = None

    @property
    def attached(self) -> bool:
        return self.agent is not None

    def __repr__(self) -> str:
        state = "attached" if self.agent is not None else "detached"
        return f"<AgentPort {self.stage}: {state}>"
