"""Execute stage: ALU issue path and the LSU path (loads and stores).

Owns the per-op-class lane map and the in-flight store book used for
store-to-load forwarding and memory-disambiguation checks.  The PFM Load
Agent attaches to ``ctx.execute_port`` (§2.3): its injected loads and
prefetches share the lane scheduler and memory hierarchy with this stage
(wired at fabric build time); the port surfaces the agent's accounting
at finalize.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.stages.context import PipelineContext
from repro.isa.instructions import OpClass
from repro.memory.cache import LINE_SHIFT

if TYPE_CHECKING:
    from repro.workloads.trace import DynInst


class InFlightStore:
    """Store tracked for forwarding/disambiguation.

    The window is time-based: a store occupies the store queue until its
    retire time, so a younger load issuing before that time interacts with
    it (forward or violate) even though the one-pass engine has already
    fully processed the store.
    """

    __slots__ = ("seq", "addr", "addr_ready", "data_ready", "retire_time")

    def __init__(
        self, seq: int, addr: int, addr_ready: int, data_ready: int
    ) -> None:
        self.seq = seq
        self.addr = addr
        self.addr_ready = addr_ready
        self.data_ready = data_ready
        self.retire_time: int | None = None


class ExecuteStage:
    """Issue, functional-unit, and LSU timing for one instruction."""

    __slots__ = (
        "ctx", "lane_map",
        "_ls_lanes", "_reserve", "_iq_allocate", "_reg_ready",
    )

    def __init__(self, ctx: PipelineContext) -> None:
        self.ctx = ctx
        p = ctx.params
        # Hot-path hoists (per-run constants; see FetchStage).
        self._ls_lanes: tuple[int, ...] = p.ls_lanes()
        self._reserve: Callable[..., tuple[int, int]] = ctx.lanes.reserve
        self._iq_allocate: Callable[[int], None] = ctx.iq.allocate
        self._reg_ready: dict[str, int] = ctx.reg_ready
        self.lane_map: dict[OpClass, tuple[tuple[int, ...], int, int]] = {
            OpClass.INT_ALU: (p.alu_lanes(), p.int_alu_latency, 0),
            OpClass.INT_MUL: (p.fp_lanes(), p.int_mul_latency, 0),
            OpClass.INT_DIV: (p.fp_lanes(), p.int_div_latency, p.int_div_latency),
            OpClass.FP_ALU: (p.fp_lanes(), p.fp_alu_latency, 0),
            OpClass.FP_MUL: (p.fp_lanes(), p.fp_mul_latency, 0),
            OpClass.FP_DIV: (p.fp_lanes(), p.fp_div_latency, p.fp_div_latency),
            OpClass.BRANCH: (p.alu_lanes(), p.branch_latency, 0),
            OpClass.JUMP: (p.alu_lanes(), p.branch_latency, 0),
            OpClass.HALT: (p.alu_lanes(), 1, 0),
        }

    def _src_ready(self, srcs: tuple[str, ...]) -> int:
        ready = 0
        reg_ready = self._reg_ready
        for reg in srcs:
            t = reg_ready.get(reg, 0)
            if t > ready:
                ready = t
        return ready

    def execute(self, dyn: "DynInst", dispatch_time: int) -> tuple[int, int]:
        op = dyn.op_class
        if op is OpClass.LOAD:
            return self._execute_load(dyn, dispatch_time)
        if op is OpClass.STORE:
            return self._execute_store(dyn, dispatch_time)

        stats = self.ctx.stats
        lanes, latency, block = self.lane_map[op]
        srcs = dyn.srcs
        ready = max(dispatch_time + 1, self._src_ready(srcs))
        _, issue = self._reserve(lanes, ready, block_cycles=block)
        self._iq_allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += len(srcs)
        return issue, issue + latency

    def _execute_load(self, dyn: "DynInst", dispatch_time: int) -> tuple[int, int]:
        ctx = self.ctx
        stats = ctx.stats
        stats.loads += 1
        srcs = dyn.srcs
        ready = max(dispatch_time + 1, self._src_ready(srcs))
        _, issue = self._reserve(self._ls_lanes, ready)
        self._iq_allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += len(srcs)
        agen_done = issue + 1

        conflict = self._latest_older_store(dyn, agen_done)
        if conflict is not None:
            if conflict.addr_ready > agen_done:
                # The load issued before an older same-address store had
                # resolved its address: memory-disambiguation violation.
                stats.disambiguation_squashes += 1
                violation = conflict.addr_ready
                complete = max(violation, conflict.data_ready) + 1
                ctx.squash_at(violation, "disambiguation")
                return issue, complete
            stats.store_forwards += 1
            complete = max(agen_done, conflict.data_ready) + 1
            return issue, complete

        avail, level = ctx.hierarchy.data_access(dyn.mem_addr, agen_done)
        stats.load_hits_by_level[level] = stats.load_hits_by_level.get(level, 0) + 1
        return issue, avail

    def _latest_older_store(
        self, dyn: "DynInst", load_time: int
    ) -> InFlightStore | None:
        """Youngest older same-address store still in the STQ at *load_time*."""
        line = dyn.mem_addr >> LINE_SHIFT
        stores = self.ctx.stores_by_line.get(line)
        if not stores:
            return None
        best = None
        for store in stores:
            if (
                store.addr == dyn.mem_addr
                and store.seq < dyn.seq
                and (store.retire_time is None or store.retire_time > load_time)
                and (best is None or store.seq > best.seq)
            ):
                best = store
        return best

    def _execute_store(self, dyn: "DynInst", dispatch_time: int) -> tuple[int, int]:
        ctx = self.ctx
        stats = ctx.stats
        stats.stores += 1
        base_reg, data_reg = dyn.srcs[0], dyn.srcs[1]
        reg_ready = self._reg_ready
        addr_src_ready = reg_ready.get(base_reg, 0)
        data_src_ready = reg_ready.get(data_reg, 0)
        ready = max(dispatch_time + 1, addr_src_ready)
        _, issue = self._reserve(self._ls_lanes, ready)
        self._iq_allocate(issue)
        stats.issued_ops += 1
        stats.prf_reads += 2
        addr_ready = issue + 1
        data_ready = max(addr_ready, data_src_ready)

        store = InFlightStore(dyn.seq, dyn.mem_addr, addr_ready, data_ready)
        line = dyn.mem_addr >> LINE_SHIFT
        ctx.stores_by_line.setdefault(line, []).append(store)
        return issue, addr_ready

    def prune_stores(self) -> None:
        """Drop committed stores no future load can still race with.

        Any future load issues at or after the current fetch frontier, so
        stores whose retire time is behind it are safely architectural.
        """
        ctx = self.ctx
        floor = ctx.fetch_cycle
        dead_lines = []
        for line, stores in ctx.stores_by_line.items():
            stores[:] = [
                s
                for s in stores
                if s.retire_time is None or s.retire_time > floor
            ]
            if not stores:
                dead_lines.append(line)
        for line in dead_lines:
            del ctx.stores_by_line[line]
