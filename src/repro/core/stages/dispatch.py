"""Dispatch stage: structural-resource allocation between fetch and issue.

An instruction dispatches once a ROB slot, an issue-queue slot, and (for
memory ops) an LDQ/STQ slot all exist; the fetch-queue entry it occupied
since fetch is released at dispatch time.  No agent attaches here — the
paper's pipeline interfaces sit at fetch, the LSU path, and retire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.stages.context import PipelineContext
from repro.isa.instructions import OpClass

if TYPE_CHECKING:
    from repro.workloads.trace import DynInst


class DispatchStage:
    """Rename/dispatch: the in-order boundary into the out-of-order back end."""

    __slots__ = (
        "ctx",
        "_front_depth", "_rob_earliest", "_iq_earliest",
        "_ldq_earliest", "_stq_earliest", "_fq_allocate",
    )

    def __init__(self, ctx: PipelineContext) -> None:
        self.ctx = ctx
        # Hot-path hoists (per-run constants; see FetchStage).
        self._front_depth: int = ctx.params.front_depth
        self._rob_earliest: Callable[[int], int] = ctx.rob.earliest_alloc
        self._iq_earliest: Callable[[int], int] = ctx.iq.earliest_alloc
        self._ldq_earliest: Callable[[int], int] = ctx.ldq.earliest_alloc
        self._stq_earliest: Callable[[int], int] = ctx.stq.earliest_alloc
        self._fq_allocate: Callable[[int], None] = ctx.fetchq.allocate

    def dispatch(self, dyn: "DynInst", fetch_time: int) -> int:
        dt = fetch_time + self._front_depth
        dt = self._rob_earliest(dt)
        dt = self._iq_earliest(dt)
        op = dyn.op_class
        if op is OpClass.LOAD:
            dt = self._ldq_earliest(dt)
        elif op is OpClass.STORE:
            dt = self._stq_earliest(dt)
        self._fq_allocate(dt)
        return dt
