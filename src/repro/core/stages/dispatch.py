"""Dispatch stage: structural-resource allocation between fetch and issue.

An instruction dispatches once a ROB slot, an issue-queue slot, and (for
memory ops) an LDQ/STQ slot all exist; the fetch-queue entry it occupied
since fetch is released at dispatch time.  No agent attaches here — the
paper's pipeline interfaces sit at fetch, the LSU path, and retire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.stages.context import PipelineContext
from repro.isa.instructions import OpClass

if TYPE_CHECKING:
    from repro.workloads.trace import DynInst


class DispatchStage:
    """Rename/dispatch: the in-order boundary into the out-of-order back end."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: PipelineContext) -> None:
        self.ctx = ctx

    def dispatch(self, dyn: "DynInst", fetch_time: int) -> int:
        ctx = self.ctx
        dt = fetch_time + ctx.params.front_depth
        dt = ctx.rob.earliest_alloc(dt)
        dt = ctx.iq.earliest_alloc(dt)
        if dyn.op_class is OpClass.LOAD:
            dt = ctx.ldq.earliest_alloc(dt)
        elif dyn.op_class is OpClass.STORE:
            dt = ctx.stq.earliest_alloc(dt)
        ctx.fetchq.allocate(dt)
        return dt
