"""Fetch stage: front-end cursor, branch prediction, and the Fetch Agent.

Owns the front-end predictors (direction predictor, BTB, RAS) and the
fetch bandwidth/redirect bookkeeping on the shared context.  The PFM
Fetch Agent attaches to ``ctx.fetch_port`` (§2.2): it snoops every fetch
PC, and on an FST hit its custom prediction overrides the core
predictor's output — the core predictor still always runs and trains.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.stages.context import PipelineContext
from repro.frontend.btb import BranchTargetBuffer, ReturnAddressStack
from repro.memory.cache import LINE_SHIFT

if TYPE_CHECKING:
    from repro.frontend.predictor import BranchPredictor
    from repro.workloads.trace import DynInst


class FetchStage:
    """Front end of the pipeline: fetch timing plus control prediction."""

    #: Fetch bubble on a taken-control BTB miss (target found in decode).
    _BTB_MISS_BUBBLE = 2

    __slots__ = (
        "ctx", "predictor", "btb", "ras",
        "_fetch_width", "_fq_earliest_alloc", "_inst_access",
    )

    def __init__(self, ctx: PipelineContext, predictor: "BranchPredictor") -> None:
        self.ctx = ctx
        self.predictor = predictor
        self.btb = BranchTargetBuffer()
        self.ras = ReturnAddressStack()
        # Hot-path hoists: these are per-run constants (the params and
        # resource objects never rebind on the context), so the
        # per-instruction loop pays one slot load instead of an
        # attribute chain for each.
        self._fetch_width: int = ctx.params.fetch_width
        self._fq_earliest_alloc: Callable[[int], int] = ctx.fetchq.earliest_alloc
        self._inst_access: Callable[[int, int], int] = ctx.hierarchy.inst_access

    def fetch(self, dyn: "DynInst") -> int:
        ctx = self.ctx
        cycle = ctx.fetch_cycle
        used = ctx.fetch_used

        if ctx.redirect_floor > cycle:
            cycle = ctx.redirect_floor
            used = 0
        if used >= self._fetch_width:
            cycle += 1
            used = 0

        fq_ready = self._fq_earliest_alloc(cycle)
        if fq_ready > cycle:
            cycle = fq_ready
            used = 0

        pc = dyn.pc
        line = pc >> LINE_SHIFT
        if line != ctx.last_iline:
            ready = self._inst_access(pc, cycle)
            if ready > cycle:
                ctx.stats.fetch_stall_icache_cycles += ready - cycle
                cycle = ready
                used = 0
            ctx.last_iline = line

        ctx.fetch_cycle = cycle
        ctx.fetch_used = used + 1

        agent = ctx.fetch_port.agent
        if agent is not None:
            agent.on_fetch(pc)
        return cycle

    def predict_branch(
        self, dyn: "DynInst", fetch_time: int, roi_fetch: bool
    ) -> tuple[bool, int]:
        """Return (predicted_direction, possibly-stalled fetch time)."""
        ctx = self.ctx
        stats = ctx.stats
        stats.conditional_branches += 1

        # The core's own predictor always runs (and always trains); the
        # Fetch Agent merely overrides its output on FST hits (§2.2).
        tage_prediction = self.predictor.predict(dyn.pc)

        predicted = tage_prediction
        config = ctx.config
        if config.perfect_branch_prediction:
            predicted = bool(dyn.taken)
        elif config.oracle is not None:
            oracle_prediction = config.oracle.predict(dyn)
            if oracle_prediction is not None:
                predicted = oracle_prediction

        agent = ctx.fetch_port.agent
        if agent is not None and roi_fetch:
            entry = agent.lookup(dyn.pc)
            if entry is not None:
                stats.fetched_fst_hits += 1
                if ctx.telemetry is not None:
                    ctx.telemetry.agent(fetch_time, "fetch", "fst_hit")
                result = agent.predict(entry, fetch_time)
                if result is not None:
                    taken, effective = result
                    if effective > fetch_time:
                        # IntQ-F empty: the Fetch Agent stalls fetch (§2.2).
                        ctx.fetch_cycle = effective
                        ctx.fetch_used = 1
                        fetch_time = effective
                    predicted = taken
                    stats.pfm_predicted_branches += 1
                    if predicted != dyn.taken:
                        stats.pfm_mispredicts += 1
                    # Grade the consumed override for the watchdog's
                    # accuracy breaker (no-op unless its threshold is set).
                    agent.record_override(predicted == bool(dyn.taken))
                else:
                    # Watchdog/quiescence/degradation fallback to the
                    # core's predictor; the fabric settled the alignment
                    # (drop-or-debt) before returning None (§2.4).
                    stats.pfm_fallback_predictions += 1
        return predicted, fetch_time

    def btb_redirect(self, dyn: "DynInst", fetch_time: int) -> None:
        """Taken control flow needs its target from the BTB; a miss costs
        a fetch bubble while the front end computes the target."""
        ctx = self.ctx
        predicted_target = self.btb.predict(dyn.pc)
        if predicted_target != dyn.next_pc:
            ctx.stats.btb_miss_bubbles += 1
            bubble = fetch_time + self._BTB_MISS_BUBBLE
            if bubble > ctx.redirect_floor:
                ctx.redirect_floor = bubble
            self.btb.update(dyn.pc, dyn.next_pc)

    def predict_jump_target(self, dyn: "DynInst", fetch_time: int) -> bool:
        """Jump target prediction; returns True on a (RAS) mispredict."""
        if dyn.mnemonic == "jal" and dyn.dst is not None:
            self.ras.push(dyn.pc + 4)
            self.btb_redirect(dyn, fetch_time)
            return False
        if dyn.mnemonic == "jalr":
            predicted = self.ras.pop()
            if predicted != dyn.next_pc:
                self.ctx.stats.ras_mispredicts += 1
                return True  # resolved at execute like a branch mispredict
            return False
        self.btb_redirect(dyn, fetch_time)  # plain j
        return False
