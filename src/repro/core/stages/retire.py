"""Retire stage: in-order commit, store commit, and the Retire Agent.

Owns the retire-slot counters enforcing the retire width and commits
stores to the memory hierarchy.  The PFM Retire Agent attaches to
``ctx.retire_port`` (§2.1): it snoops every retired PC against the RST,
builds observation packets for hits, and — via the squash/squash-done
handshake routed through :meth:`PipelineContext.squash_at` — stalls the
retire unit while the component rolls back.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.stages.context import PipelineContext
from repro.isa.instructions import OpClass
from repro.memory.cache import LINE_SHIFT

if TYPE_CHECKING:
    from repro.frontend.predictor import BranchPredictor
    from repro.workloads.trace import DynInst


class RetireStage:
    """In-order retirement bounded by the retire width."""

    __slots__ = (
        "ctx", "predictor", "retire_counts",
        "_retire_width", "_rob_allocate", "_ldq_allocate", "_stq_allocate",
    )

    def __init__(self, ctx: PipelineContext, predictor: "BranchPredictor") -> None:
        self.ctx = ctx
        # Retire-time training of the front end's direction predictor
        # (shared with the fetch stage).
        self.predictor = predictor
        self.retire_counts: dict[int, int] = {}
        # Hot-path hoists (per-run constants; see FetchStage).
        self._retire_width: int = ctx.params.retire_width
        self._rob_allocate: Callable[[int], None] = ctx.rob.allocate
        self._ldq_allocate: Callable[[int], None] = ctx.ldq.allocate
        self._stq_allocate: Callable[[int], None] = ctx.stq.allocate

    def retire(self, dyn: "DynInst", complete_time: int) -> None:
        ctx = self.ctx
        stats = ctx.stats
        rt = max(complete_time + 1, ctx.prev_retire, ctx.retire_floor)
        counts = self.retire_counts
        width = self._retire_width
        get = counts.get
        while get(rt, 0) >= width:
            rt += 1
        counts[rt] = get(rt, 0) + 1
        ctx.prev_retire = rt
        if ctx.first_retire is None:
            ctx.first_retire = rt

        self._rob_allocate(rt)
        op = dyn.op_class
        if op is OpClass.LOAD:
            self._ldq_allocate(rt)
        elif op is OpClass.STORE:
            self._stq_allocate(rt)
            self._commit_store(dyn, rt)
        elif op is OpClass.BRANCH:
            self.predictor.update(dyn.pc, bool(dyn.taken))

        agent = ctx.retire_port.agent
        if agent is not None:
            was_active = agent.roi_active
            if was_active:
                stats.retired_in_roi += 1
            entry = agent.lookup(dyn.pc)
            if entry is not None:
                if was_active:
                    stats.retired_rst_hits += 1
                    self._count_obs(entry)
                    if ctx.telemetry is not None:
                        ctx.telemetry.agent(rt, "retire", "rst_hit")
                agent.on_retire(dyn, entry, rt)
                if not was_active and agent.roi_active:
                    # Beginning of ROI (§2.1): the Retire Agent signals the
                    # core to squash its pipeline so core and component are
                    # logically at the same point in the dynamic stream.
                    ctx.squash_at(rt, "roi_begin")

    def _count_obs(self, entry) -> None:
        from repro.pfm.snoop import SnoopKind

        stats = self.ctx.stats
        stats.obs_packets += 1
        if entry.kind is SnoopKind.DEST_VALUE:
            stats.obs_dest_value += 1
        elif entry.kind is SnoopKind.STORE_VALUE:
            stats.obs_store_value += 1
        elif entry.kind is SnoopKind.BRANCH_OUTCOME:
            stats.obs_branch_outcome += 1

    def _commit_store(self, dyn: "DynInst", retire_time: int) -> None:
        ctx = self.ctx
        ctx.hierarchy.data_access(dyn.mem_addr, retire_time, is_store=True)
        stores = ctx.stores_by_line.get(dyn.mem_addr >> LINE_SHIFT)
        if stores:
            for store in stores:
                if store.seq == dyn.seq:
                    store.retire_time = retire_time
                    break

    def prune(self) -> None:
        """Drop retire-slot counters older than the retire horizon."""
        horizon = self.ctx.prev_retire - 8
        stale = [c for c in self.retire_counts if c < horizon]
        for c in stale:
            del self.retire_counts[c]
