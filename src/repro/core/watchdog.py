"""Graceful-degradation watchdog for the core's PFM-facing side.

Section 2.4 sketches a chicken switch: if the fetch unit waits too long
on IntQ-F the whole fabric is disabled.  That is a blunt instrument —
one glitch and the component is gone for the rest of the run.  This
module refines it into three targeted defenses, each with dedicated
:class:`~repro.core.stats.SimStats` counters:

* **Fetch-stall timeout** — a fetch stalled on an empty IntQ-F past
  ``fetch_timeout_cycles`` falls back to the core's own TAGE prediction
  for that branch only.  If the component's observable activity
  (predictions produced, queue pops) freezes across
  ``fetch_timeout_disable_after`` consecutive timeouts, the component is
  declared dead (a frozen clkC never refills IntQ-F) and the fabric is
  disabled outright; a slow-but-alive component keeps consuming
  observations between timeouts and is left alone.
* **Override-accuracy breaker** — windowed accuracy of Fetch Agent
  overrides below ``min_override_accuracy`` suppresses overrides for
  ``override_disable_predictions`` FST hits, then re-enables for a trial
  window.  Re-tripping during the trial doubles the suppression period
  (hysteresis, capped); a clean window resets the backoff.
* **MLB-thrash throttle** — when injected loads average more than
  ``mlb_replay_threshold`` Missed-Load-Buffer replays over the last
  ``mlb_window`` loads, *or* ``mlb_full_streak`` consecutive missed
  loads all found the MLB at capacity (a full buffer defers acceptance
  instead of replaying, so the replay count alone cannot see an
  undersized or overwhelmed buffer; healthy fill bursts produce streaks
  up to about the MLB capacity, chronic thrash far beyond it), the Load
  Agent drops the next ``mlb_throttle_loads`` injection packets instead
  of letting the MLB thrash the cache ports.

All knobs default to ``None``/off so a plain configuration behaves
exactly as before; the ``faults`` campaign enables them.

:class:`RecoveryPolicy` is the constructive twin of the defenses above:
instead of amputating a sick component forever, the fabric's
:class:`~repro.pfm.reconfig.ReconfigController` consumes this policy to
quiesce, drain, and hot-reload the bitstream — up to ``max_reloads``
times with exponential backoff — before falling back to the permanent
disable.  The policy lives here (not in ``repro.pfm``) because the
watchdog owns the triggers the controller reacts to.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class WatchdogParams:
    """Graceful-degradation thresholds (all off by default)."""

    #: Max core cycles fetch may stall waiting on IntQ-F before falling
    #: back to the core's TAGE prediction (None = legacy unbounded wait,
    #: backstopped only by ``PFMParams.watchdog_rf_cycles``).
    fetch_timeout_cycles: int | None = None
    #: Consecutive no-progress fetch timeouts before the component is
    #: declared dead and the fabric disabled.
    fetch_timeout_disable_after: int = 8
    #: Core cycles the retire unit waits for a lost squash-done before
    #: the watchdog un-stalls it (None = legacy fixed penalty).
    squash_timeout_cycles: int | None = None

    #: Minimum windowed override accuracy (None = breaker off).
    min_override_accuracy: float | None = None
    #: Overrides per accuracy evaluation window.
    accuracy_window: int = 64
    #: FST hits suppressed after a trip (doubles on re-trip, capped).
    override_disable_predictions: int = 256
    max_override_disable_predictions: int = 4096

    #: Mean MLB replays per injected load that counts as thrash (None =
    #: this trigger off).  Memory-bound run-ahead bursts legitimately
    #: reach high means, so only extreme values are safe.
    mlb_replay_threshold: float | None = None
    #: Injected loads per thrash evaluation window.
    mlb_window: int = 32
    #: Consecutive MLB-full misses that count as thrash (None = this
    #: trigger off).  Healthy fill bursts produce streaks up to about
    #: the MLB capacity; 1.5x the paper's 64 entries is a safe default
    #: when enabling this trigger.
    mlb_full_streak: int | None = None
    #: Injection packets dropped per throttle event.
    mlb_throttle_loads: int = 128

    def active(self) -> bool:
        return (
            self.fetch_timeout_cycles is not None
            or self.min_override_accuracy is not None
            or self.mlb_replay_threshold is not None
            or self.mlb_full_streak is not None
        )

    def __post_init__(self) -> None:
        if self.fetch_timeout_cycles is not None and self.fetch_timeout_cycles < 1:
            raise ValueError("fetch_timeout_cycles must be >= 1")
        if self.accuracy_window < 1:
            raise ValueError("accuracy_window must be >= 1")
        if self.min_override_accuracy is not None and not (
            0.0 <= self.min_override_accuracy <= 1.0
        ):
            raise ValueError("min_override_accuracy must be in [0, 1]")
        if self.mlb_window < 1:
            raise ValueError("mlb_window must be >= 1")
        if self.mlb_full_streak is not None and self.mlb_full_streak < 1:
            raise ValueError("mlb_full_streak must be >= 1")


@dataclass
class RecoveryPolicy:
    """Self-healing reconfiguration policy (inactive by default).

    Consumed by :class:`repro.pfm.reconfig.ReconfigController`.  With the
    defaults the controller is never built and the fabric behaves exactly
    as before: dead-component declarations and exhausted RF budgets
    disable the fabric permanently.
    """

    #: Failure-triggered hot reloads attempted before the controller
    #: gives up and disables the fabric permanently (0 = recovery off).
    max_reloads: int = 0
    #: Core cycles to load the configuration bitstream into the fabric
    #: (the LUTstructions-style self-loading cost; drain time is extra).
    reconfig_latency_cycles: int = 2048
    #: Exponential backoff: failure-triggered reload *k* (0-based) costs
    #: ``reconfig_latency_cycles * reload_backoff_factor**k`` core cycles,
    #: so a component that keeps dying gets progressively costlier to
    #: revive and the budget runs out in bounded time.
    reload_backoff_factor: int = 2
    #: Core-cycle patience while draining in-flight queue/MLB/snoop state
    #: before the remainder is force-flushed (a frozen clkC never drains
    #: on its own).
    drain_timeout_cycles: int = 512
    #: Also reload when the override-accuracy breaker re-trips (the
    #: component is alive but hinting garbage — a reload scrubs it).
    reload_on_breaker: bool = False
    #: Reload after this many watchdog squash timeouts (a lost
    #: squash-done leaves the handshake protocol itself suspect); None
    #: leaves the squash path to the watchdog alone.
    squash_timeout_reload_after: int | None = None
    #: Core time of one planned same-bitstream swap (maintenance scrub /
    #: the architectural-invisibility experiment); does not count against
    #: ``max_reloads`` and never backs off.  None = no scheduled swap.
    scheduled_reload_at: int | None = None

    def active(self) -> bool:
        return self.max_reloads > 0 or self.scheduled_reload_at is not None

    def __post_init__(self) -> None:
        if self.max_reloads < 0:
            raise ValueError("max_reloads must be >= 0")
        if self.reconfig_latency_cycles < 0:
            raise ValueError("reconfig_latency_cycles must be >= 0")
        if self.reload_backoff_factor < 1:
            raise ValueError("reload_backoff_factor must be >= 1")
        if self.drain_timeout_cycles < 1:
            raise ValueError("drain_timeout_cycles must be >= 1")
        if (
            self.squash_timeout_reload_after is not None
            and self.squash_timeout_reload_after < 1
        ):
            raise ValueError("squash_timeout_reload_after must be >= 1")
        if self.scheduled_reload_at is not None and self.scheduled_reload_at < 0:
            raise ValueError("scheduled_reload_at must be >= 0")


class Watchdog:
    """Per-run watchdog state; the fabric owns one instance."""

    def __init__(self, params: WatchdogParams):
        self.params = params
        # fetch-stall timeout
        self.component_dead = False
        self.fetch_timeouts = 0
        self.dead_declarations = 0
        self.squash_timeouts = 0
        self._consecutive_timeouts = 0
        self._progress_at_last_timeout: object = None
        # override-accuracy breaker
        self.override_disables = 0
        self.overrides_suppressed = 0
        #: Level-triggered flag for the reconfiguration controller: set on
        #: every breaker trip, cleared by whoever polls it.  The watchdog
        #: never imports the controller (core must not depend on pfm), so
        #: the handoff is this flag rather than a callback.
        self.breaker_trip_pending = False
        self._window_total = 0
        self._window_correct = 0
        self._suppress_remaining = 0
        self._disable_period = params.override_disable_predictions
        self._trial_window = False
        # MLB-thrash throttle
        self.load_throttle_events = 0
        self.loads_dropped = 0
        self._recent_replays: deque[int] = deque(maxlen=params.mlb_window)
        self._full_streak = 0
        self._throttle_remaining = 0

    # ------------------------------------------------------------------ #
    # fetch-stall timeout
    # ------------------------------------------------------------------ #

    def fetch_deadline(self, fetch_time: int) -> int | None:
        """Latest core time fetch will wait for this branch's packet."""
        if self.params.fetch_timeout_cycles is None:
            return None
        return fetch_time + self.params.fetch_timeout_cycles

    def on_fetch_timeout(self, progress_token) -> None:
        """A fetch-stall deadline expired.

        *progress_token* is any equatable snapshot of the component's
        observable activity (predictions produced, queue pops).  A
        healthy-but-slow component — e.g. one waiting out a memory round
        trip before it can predict — keeps consuming observations and
        load returns between timeouts, so its token changes; a frozen
        clkC changes nothing, and a run of identical-token timeouts
        declares it dead."""
        self.fetch_timeouts += 1
        if progress_token == self._progress_at_last_timeout:
            self._consecutive_timeouts += 1
        else:
            self._consecutive_timeouts = 1
            self._progress_at_last_timeout = progress_token
        if self._consecutive_timeouts >= self.params.fetch_timeout_disable_after:
            if not self.component_dead:
                self.dead_declarations += 1
            self.component_dead = True

    def on_fetch_delivered(self) -> None:
        self._consecutive_timeouts = 0
        self._progress_at_last_timeout = None

    # ------------------------------------------------------------------ #
    # override-accuracy breaker
    # ------------------------------------------------------------------ #

    def overrides_allowed(self) -> bool:
        return self._suppress_remaining == 0

    def note_suppressed(self) -> None:
        """One FST hit served by the core's predictor while suppressed."""
        self.overrides_suppressed += 1
        if self._suppress_remaining > 0:
            self._suppress_remaining -= 1
            if self._suppress_remaining == 0:
                # Re-enable for a trial window; a clean window resets the
                # backoff, a re-trip doubles it (hysteresis).
                self._trial_window = True
                self._window_total = 0
                self._window_correct = 0

    def record_override(self, correct: bool) -> None:
        """One consumed Fetch Agent override, graded against retirement."""
        threshold = self.params.min_override_accuracy
        if threshold is None:
            return
        self._window_total += 1
        self._window_correct += int(correct)
        if self._window_total < self.params.accuracy_window:
            return
        accuracy = self._window_correct / self._window_total
        if accuracy < threshold:
            self.override_disables += 1
            self.breaker_trip_pending = True
            if self._trial_window:
                self._disable_period = min(
                    self._disable_period * 2,
                    self.params.max_override_disable_predictions,
                )
            self._suppress_remaining = self._disable_period
        else:
            self._disable_period = self.params.override_disable_predictions
        self._trial_window = False
        self._window_total = 0
        self._window_correct = 0

    # ------------------------------------------------------------------ #
    # MLB-thrash throttle
    # ------------------------------------------------------------------ #

    def record_injected_load(
        self, replays: int, missed: bool = False, mlb_full: bool = False
    ) -> None:
        """One injected (non-prefetch) load issued.

        *replays* is the load's MLB replay count; *missed* says it went
        through the MLB at all; *mlb_full* says it found the MLB at
        capacity (deferred acceptance — the signature of a shrunk or
        overwhelmed buffer, invisible in replay counts).
        """
        threshold = self.params.mlb_replay_threshold
        streak_limit = self.params.mlb_full_streak
        if threshold is None and streak_limit is None:
            return
        self._recent_replays.append(replays)
        if missed:
            self._full_streak = self._full_streak + 1 if mlb_full else 0
        if self._throttle_remaining > 0:
            return
        trip = streak_limit is not None and self._full_streak >= streak_limit
        if (
            not trip
            and threshold is not None
            and len(self._recent_replays) == self._recent_replays.maxlen
        ):
            mean = sum(self._recent_replays) / len(self._recent_replays)
            trip = mean > threshold
        if trip:
            self.load_throttle_events += 1
            self._throttle_remaining = self.params.mlb_throttle_loads
            self._recent_replays.clear()
            self._full_streak = 0

    def on_reload(self) -> None:
        """A hot reload replaced the component: reset per-instance state.

        Cumulative counters (``dead_declarations``, ``override_disables``,
        ...) survive — they describe the run — but liveness judgements and
        the breaker's hysteresis belong to the torn-down instance: the
        replacement starts with a clean slate, otherwise it would be
        declared dead (or suppressed) on arrival for its predecessor's
        sins.
        """
        self.component_dead = False
        self._consecutive_timeouts = 0
        self._progress_at_last_timeout = None
        self.breaker_trip_pending = False
        self._suppress_remaining = 0
        self._disable_period = self.params.override_disable_predictions
        self._trial_window = False
        self._window_total = 0
        self._window_correct = 0

    def load_throttled(self) -> bool:
        return self._throttle_remaining > 0

    def note_load_dropped(self) -> None:
        self.loads_dropped += 1
        if self._throttle_remaining > 0:
            self._throttle_remaining -= 1

    # ------------------------------------------------------------------ #

    def counters(self) -> dict[str, int]:
        """Counter snapshot folded into ``SimStats`` at finalize."""
        return {
            "fetch_timeouts": self.fetch_timeouts,
            "dead_declarations": self.dead_declarations,
            "squash_timeouts": self.squash_timeouts,
            "override_disables": self.override_disables,
            "overrides_suppressed": self.overrides_suppressed,
            "load_throttle_events": self.load_throttle_events,
            "loads_dropped": self.loads_dropped,
        }
