"""Architectural-state digest: the hints-only safety invariant, testable.

The paper's central safety argument (Sections 2.1-2.3) is that PFM
components only *hint*: Fetch Agent overrides are verified by the core,
Load Agent injections never write the PRF, and Retire Agent observations
are read-only.  A buggy — or deliberately fault-injected — RF component
can therefore cost performance but can never corrupt architectural state.

This module makes that claim falsifiable.  Every simulation folds its
retired instruction stream and final architectural state (register file +
data memory) into a running hash, reported as ``SimStats.arch_digest``.
Two runs of the same workload retire the same instructions with the same
architectural effects *iff* their digests match — which is exactly what
the fault-injection oracle (:mod:`repro.faults.oracle`) asserts between a
faulted PFM run and the plain-core baseline.

Only architectural quantities enter the hash: sequence numbers, PCs,
control-flow targets, destination/store values, effective addresses, and
branch outcomes.  Timing (cycles, stalls, queue occupancies) is excluded
by construction, so arbitrary timing perturbations leave the digest
untouched while any state corruption changes it.
"""

from __future__ import annotations

import hashlib

from repro.workloads.trace import DynInst


#: Buffered records per hash update; one big ``sha256.update`` call
#: amortizes the C-call overhead of per-instruction updates.  The byte
#: stream fed to the hash is identical to unbuffered updating, so every
#: committed digest is unchanged.
_FLUSH_EVERY = 1024


class ArchDigest:
    """Running hash over a retired instruction stream + final state."""

    __slots__ = ("_hash", "_pending")

    def __init__(self) -> None:
        self._hash = hashlib.sha256()
        self._pending: list[str] = []

    def observe(self, dyn: DynInst) -> None:
        """Fold one retired instruction's architectural effects in."""
        pending = self._pending
        pending.append(
            f"{dyn.seq};{dyn.pc};{dyn.next_pc};{dyn.dst};"
            f"{dyn.dst_value!r};{dyn.mem_addr};{dyn.store_value!r};"
            f"{dyn.taken}\n"
        )
        if len(pending) >= _FLUSH_EVERY:
            self._hash.update("".join(pending).encode())
            pending.clear()

    def _flush(self) -> None:
        if self._pending:
            self._hash.update("".join(self._pending).encode())
            self._pending.clear()

    def finalize(self, regs: dict[str, float] | None, memory) -> str:
        """Fold in the final register file and memory image; return hex.

        *memory* is a :class:`~repro.workloads.mem.MemoryImage`; only
        materialized (written) words participate, in address order.
        ``regs=None`` means the executor exposes no register file (trace
        replay): the stream and memory still pin architectural identity.
        """
        self._flush()
        h = self._hash
        h.update(b"=regs=\n")
        for name in sorted(regs or ()):
            h.update(f"{name}={regs[name]!r}\n".encode())
        h.update(b"=mem=\n")
        for addr, value in memory.iter_words():
            h.update(f"{addr}={value!r}\n".encode())
        return h.hexdigest()
