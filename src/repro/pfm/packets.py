"""Packet types exchanged between the core's Agents and the RF component.

Observation packets (core -> RF, via ObsQ-R): Section 2.1's three kinds —
destination value, store value, branch outcome — plus begin-of-ROI and
squash control packets.

Intervention packets (RF -> core): conditional branch predictions
(IntQ-F, Section 2.2) and prefetch/load requests (IntQ-IS, Section 2.3).
Load values return RF-ward via ObsQ-EX, tagged with the component's unique
identifier because they may come back out of order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pfm.snoop import SnoopKind


@dataclass(slots=True)
class ObsPacket:
    """Retire Agent -> component observation."""

    kind: SnoopKind
    tag: str  # semantic tag from the RST entry
    pc: int
    value: float | None = None  # destination or store value
    address: int | None = None  # store/load effective address
    taken: bool | None = None  # branch outcome packets


@dataclass(slots=True)
class SquashPacket:
    """Retire Agent -> component: pipeline squash notification (§2.1)."""

    core_time: int
    reason: str  # "branch", "disambiguation", "roi_begin"


@dataclass(slots=True)
class PredPacket:
    """Component -> Fetch Agent: one conditional branch prediction.

    ``call_id``/``seq`` realize the realignment contract of the
    squash/replay protocol: the Fetch Agent drops packets whose position
    tag is older than the fetch unit's current position (the rollback +
    replay machinery of Section 4.1.2 guarantees the same alignment in
    hardware; the tags express its effect in the timestamp domain).
    """

    call_id: int
    seq: int
    taken: bool


@dataclass(slots=True)
class LoadPacket:
    """Component -> Load Agent: injected load or prefetch (§2.3)."""

    ident: int  # component-unique id, returned with the value
    address: int
    is_prefetch: bool = False


@dataclass(slots=True)
class LoadReturn:
    """Load Agent -> component via ObsQ-EX."""

    ident: int
    value: float
    address: int
