"""Finite communication queues in the timestamp domain.

The one-pass cycle model binds events to timestamps rather than stepping
every queue every cycle.  A :class:`TimedQueue` therefore tracks, for each
entry, when it was pushed and when it was popped; capacity back-pressure
falls out of the invariant that push *n* cannot complete before pop
*n - capacity* has happened.

A fixed crossing latency models the core/RF clock-domain synchronizers on
each queue's read side.
"""

from __future__ import annotations

from collections import deque


class QueueFullError(RuntimeError):
    """Push attempted while the consumer has not freed an entry yet."""


class QueueInvariantError(IndexError):
    """Timestamp-domain invariant violated on a queue endpoint.

    Subclasses :class:`IndexError` so callers treating "nothing to pop"
    as an index condition keep working; the message carries a diagnosis
    (which queue, which timestamps) instead of a bare index complaint.
    """


class TimedQueue:
    """Bounded FIFO whose pushes and pops carry timestamps.

    Entries become visible to the consumer ``crossing_latency`` time units
    after their push time.

    With ``monotonic_push`` the queue additionally asserts (under
    ``__debug__``) that push timestamps never decrease — the producer
    side of some queues is a clocked pipeline whose exit times are
    nondecreasing by construction, so a violation is a model bug, not a
    workload condition.
    """

    __slots__ = (
        "name", "owner", "capacity", "crossing_latency", "monotonic_push",
        "_entries", "_pop_times", "_last_push_time",
        "pushes", "pops", "push_backpressure", "max_occupancy",
        "full_rejects", "probe",
    )

    def __init__(
        self,
        name: str,
        capacity: int,
        crossing_latency: int = 0,
        monotonic_push: bool = False,
        owner: str = "",
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.name = name
        #: Owning subsystem label ("slot0:astar-bp", ...) threaded into
        #: every diagnostic so multi-tenant invariant failures name the
        #: queue's owner, not just the queue.
        self.owner = owner
        self.capacity = capacity
        self.crossing_latency = crossing_latency
        self.monotonic_push = monotonic_push
        self._entries: deque[tuple[int, object]] = deque()  # (visible_time, item)
        self._pop_times: deque[int] = deque(maxlen=capacity)
        self._last_push_time: int | None = None
        self.pushes = 0
        self.pops = 0
        self.push_backpressure = 0
        self.max_occupancy = 0  # high-water mark
        #: Producer gave up on a full queue and shed the item (distinct
        #: from ``push_backpressure``, which counts pushes that *raised*).
        self.full_rejects = 0
        #: Optional telemetry probe (:class:`~repro.telemetry.hub.TelemetryHub`);
        #: attribute-check only, so an unattached queue pays one pointer
        #: test per endpoint operation.
        self.probe = None

    # ------------------------------------------------------------------ #

    def _who(self) -> str:
        """Diagnostic identity: queue name plus owner when labelled."""
        if self.owner:
            return f"{self.name}[{self.owner}]"
        return self.name

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    def can_push(self) -> bool:
        return len(self._entries) < self.capacity

    def earliest_push(self, now: int) -> int:
        """Earliest time >= *now* a push can take effect.

        If the queue is full, that is the pop time of the oldest entry
        still occupying space — which requires the consumer to have popped
        (advance the consumer first if this returns a past-full condition).
        """
        if len(self._entries) < self.capacity:
            return now
        if not self._pop_times:
            raise QueueFullError(
                f"{self._who()}: full and consumer never popped"
            )
        return max(now, self._pop_times[0])

    def push(self, now: int, item) -> int:
        """Push at time *now*; return the effective push time."""
        if len(self._entries) >= self.capacity:
            self.push_backpressure += 1
            raise QueueFullError(f"{self._who()}: push while full")
        if __debug__ and self.monotonic_push:
            last = self._last_push_time
            if last is not None and now < last:
                raise QueueInvariantError(
                    f"{self._who()}: non-monotonic push at t={now} after a "
                    f"push at t={last} (producer pipeline exit times must "
                    f"be nondecreasing)"
                )
        self._last_push_time = now
        self._entries.append((now + self.crossing_latency, item))
        self.pushes += 1
        if len(self._entries) > self.max_occupancy:
            self.max_occupancy = len(self._entries)
        if self.probe is not None:
            self.probe.queue(now, self.name, "push", len(self._entries))
        return now

    def note_reject(self, now: int | None = None) -> None:
        """Producer observed the queue full and shed the item."""
        self.full_rejects += 1
        if self.probe is not None and now is not None:
            self.probe.queue(now, self.name, "drop", len(self._entries))

    # ------------------------------------------------------------------ #

    def peek_visible(self, now: int):
        """Head item if visible at *now*, else None."""
        if not self._entries:
            return None
        visible_time, item = self._entries[0]
        if visible_time > now:
            return None
        return item

    def head_visible_time(self) -> int | None:
        """Visible time of the head entry, or None if empty."""
        if not self._entries:
            return None
        return self._entries[0][0]

    def pop(self, now: int):
        """Pop the head entry at time *now* (must be visible)."""
        if not self._entries:
            raise QueueInvariantError(
                f"{self._who()}: pop from empty queue at t={now} "
                f"(pushes={self.pushes}, pops={self.pops}); consumer must "
                f"peek_visible before popping"
            )
        visible_time, item = self._entries[0]
        if visible_time > now:
            raise QueueInvariantError(
                f"{self._who()}: pop at t={now} but head not visible until "
                f"t={visible_time} (crossing_latency={self.crossing_latency}); "
                f"consumer clock ran ahead of the synchronizer"
            )
        self._entries.popleft()
        self._pop_times.append(now)
        self.pops += 1
        if self.probe is not None:
            self.probe.queue(now, self.name, "pop", len(self._entries))
        return item

    def drain(self, now: int) -> list:
        """Pop every entry visible at *now*."""
        out = []
        while self._entries and self._entries[0][0] <= now:
            out.append(self.pop(now))
        return out

    def clear(self, now: int) -> int:
        """Drop all entries (squash recovery); returns how many were dropped.

        Dropped entries count as popped for capacity purposes.
        """
        dropped = len(self._entries)
        for _ in range(dropped):
            self._entries.popleft()
            self._pop_times.append(now)
        return dropped

    def stats(self) -> dict[str, int]:
        return {
            "pushes": self.pushes,
            "pops": self.pops,
            "max_occupancy": self.max_occupancy,
            "backpressure": self.push_backpressure,
            "full_rejects": self.full_rejects,
        }
