"""Snoop tables and the configuration bitstream.

The paper (Section 2, Figure 4): "A configuration bitstream shipped with the
executable synthesizes the custom microarchitecture component in the FPGA
and configures the Fetch Snoop Table (FST) and Retire Snoop Table (RST)".

Here the bitstream is an object bundling RST/FST entries with a component
factory.  RST entries carry a *kind* — which of the paper's three
observation packet types the Retire Agent constructs on a hit (plus the
begin-of-ROI marker) — and a *tag* naming the snooped quantity so the
component knows what it received (standing in for the entry index a real
design would use).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable


class SnoopKind(enum.Enum):
    """RST entry kinds (Section 2.1)."""

    ROI_BEGIN = "roi_begin"
    ROI_END = "roi_end"
    DEST_VALUE = "dest_value"
    STORE_VALUE = "store_value"
    BRANCH_OUTCOME = "branch_outcome"


@dataclass(frozen=True, slots=True)
class RSTEntry:
    """One Retire Snoop Table entry: match PC, packet kind, semantic tag.

    ``droppable`` marks high-rate packets the Retire Agent may drop when
    ObsQ-R is full (absolute-valued counters, commit-side bookkeeping);
    configuration values (bases, yoffset) are never dropped — the agent
    delays them until the component frees queue space.
    """

    pc: int
    kind: SnoopKind
    tag: str
    droppable: bool = False


@dataclass(frozen=True, slots=True)
class FSTEntry:
    """One Fetch Snoop Table entry: match PC and semantic tag."""

    pc: int
    tag: str


class RetireSnoopTable:
    """PC-indexed lookup of RST entries."""

    __slots__ = ("_by_pc", "entries")

    def __init__(self, entries: list[RSTEntry]):
        self._by_pc: dict[int, RSTEntry] = {}
        for entry in entries:
            if entry.pc in self._by_pc:
                raise ValueError(f"duplicate RST pc {entry.pc:#x}")
            self._by_pc[entry.pc] = entry
        self.entries = list(entries)

    def lookup(self, pc: int) -> RSTEntry | None:
        return self._by_pc.get(pc)

    def __len__(self) -> int:
        return len(self._by_pc)


class FetchSnoopTable:
    """PC-indexed lookup of FST entries."""

    __slots__ = ("_by_pc", "entries")

    def __init__(self, entries: list[FSTEntry]):
        self._by_pc: dict[int, FSTEntry] = {}
        for entry in entries:
            if entry.pc in self._by_pc:
                raise ValueError(f"duplicate FST pc {entry.pc:#x}")
            self._by_pc[entry.pc] = entry
        self.entries = list(entries)

    def lookup(self, pc: int) -> FSTEntry | None:
        return self._by_pc.get(pc)

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    def __len__(self) -> int:
        return len(self._by_pc)


@dataclass
class Bitstream:
    """Configuration shipped with an executable.

    Attributes:
        name: human-readable component name.
        rst_entries / fst_entries: snoop table contents.
        component_factory: builds the custom component; called with the RF
            timing parameters and the shared memory image when the fabric
            is programmed.
        metadata: component-specific structural parameters (queue depths,
            strides, ...), the knobs the sensitivity studies sweep.
    """

    name: str
    rst_entries: list[RSTEntry]
    fst_entries: list[FSTEntry]
    component_factory: Callable
    metadata: dict = field(default_factory=dict)

    def make_rst(self) -> RetireSnoopTable:
        return RetireSnoopTable(self.rst_entries)

    def make_fst(self) -> FetchSnoopTable:
        return FetchSnoopTable(self.fst_entries)
