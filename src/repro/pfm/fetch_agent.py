"""Fetch Agent (Section 2.2).

Sits between the core's fetch unit and the RF component.  PCs in the fetch
bundle that hit the Fetch Snoop Table are supplied conditional branch
predictions popped from the Intervention Queue at Fetch (IntQ-F); if the
queue is empty because the component is running late, the fetch unit
stalls until the packet arrives (the fetch-stall cycles the clkC_wW
sensitivity studies measure).

Stream alignment: every prediction carries ``(call_id, tag)``.  The agent
drops packets from earlier calls and packets whose branch was skipped on
the actual path (the component pushes a prediction for every *potential*
FST branch; the agent discards those not encountered — a Fetch-Agent-side
variant of the paper's T2-side discard, equivalent in outcome and simpler
to realign after squashes; see DESIGN.md §5).  After a pipeline squash the
squash/squash-done protocol re-floors the ready times of unconsumed
packets, modelling the rollback + replay of Section 4.1.2.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(slots=True)
class _PendEntry:
    call: int
    seq: int
    tag: str
    taken: bool
    ready: int


class FetchAgentError(RuntimeError):
    """Alignment invariant violated (model bug, not a workload condition)."""


class FetchAgent:
    """IntQ-F consumer side plus producer bookkeeping."""

    # Max packets we allow dropping while searching for a tag match; the
    # astar stream can legitimately skip up to a full iteration of pairs.
    MAX_DROP_RUN = 64

    def __init__(
        self, queue_size: int, clk_ratio: int, width: int, strict: bool = True
    ):
        self.queue_size = queue_size
        self.clk_ratio = clk_ratio
        self.width = width
        #: With ``strict`` (the default), a drop run past MAX_DROP_RUN is a
        #: model bug and raises.  Under fault injection the prediction
        #: stream is corrupted *by design*, so the fabric clears it: the
        #: agent stops dropping and lets the caller fall back instead.
        self.strict = strict
        self._pending: deque[_PendEntry] = deque()
        self.producer_call = 0
        self.producer_seq = 0
        self.consumer_call = 0
        self.predictions_supplied = 0
        self.packets_dropped = 0
        self.stall_cycles = 0
        self.pushes = 0
        self.full_rejects = 0
        self.max_pending = 0  # high-water mark of the prediction stream
        self.enabled = True  # chicken switch (§2.4)
        self._fallback_debt: dict[str, int] = {}
        self._resync_call = False  # first call after a reset realigns
        self.probe = None  # optional telemetry hub

    # ------------------------------------------------------------------ #
    # producer side (called from the component via the fabric)
    # ------------------------------------------------------------------ #

    def occupancy_at(self, now: int) -> int:
        """IntQ-F entries resident at *now* (exited the delay pipeline)."""
        return sum(1 for e in self._pending if e.ready <= now)

    def can_push(self, now: int) -> bool:
        return self.occupancy_at(now) < self.queue_size

    def push(self, taken: bool, ready: int, tag: str) -> bool:
        if not self.can_push(ready):
            self.full_rejects += 1
            return False
        self._pending.append(
            _PendEntry(
                call=self.producer_call,
                seq=self.producer_seq,
                tag=tag,
                taken=taken,
                ready=ready,
            )
        )
        self.producer_seq += 1
        self.pushes += 1
        if len(self._pending) > self.max_pending:
            self.max_pending = len(self._pending)
        if self.probe is not None:
            self.probe.queue(ready, "IntQ-F", "push", len(self._pending))
        return True

    def new_call(self) -> None:
        """Component signalled a new ROI call: flush the previous stream."""
        self.packets_dropped += len(self._pending)
        self._pending.clear()
        if self._resync_call:
            # First call of a freshly loaded component: adopt the fetch
            # unit's current call position instead of incrementing.  The
            # call marker (the worklist-base instruction) always fetches
            # before its own retirement triggers this snoop, so at this
            # moment the consumer counter already names the call the
            # component is starting — see :meth:`reset`.
            self._resync_call = False
            self.producer_call = self.consumer_call
        else:
            self.producer_call += 1
        self.producer_seq = 0

    def reset(self) -> int:
        """Flush all in-flight state for a deprogram or hot swap.

        Returns the number of pending predictions discarded.  The call
        counters *realign* rather than advance: a freshly loaded
        component has produced nothing, and blindly incrementing the
        producer on its first call would drift whenever the flush or the
        reload window swallowed a call's worklist snoop (one permanent
        off-by-one and every later prediction is dropped as stale — or
        worse, the producer runs ahead and trips the strict-mode
        invariant).  Realigning both here and at the first ``new_call``
        afterwards keeps the streams exact for every straddle ordering.
        """
        dropped = len(self._pending)
        self.packets_dropped += dropped
        self._pending.clear()
        self._fallback_debt.clear()
        self.producer_call = self.consumer_call
        self.producer_seq = 0
        self._resync_call = True
        return dropped

    # ------------------------------------------------------------------ #
    # consumer side (called from the core's fetch stage via the fabric)
    # ------------------------------------------------------------------ #

    def on_call_marker(self) -> None:
        """Fetch unit reached a per-call marker PC: expect the next call."""
        self.consumer_call += 1
        self._fallback_debt.clear()

    def note_fallback(self, tag: str) -> None:
        """The core predicted FST branch *tag* itself (watchdog fallback).

        The matching packet, if produced late, must be dropped instead of
        consumed by a later instance of the same static branch — the
        "count of how many late packets to drop" of Section 2.4.
        """
        self._fallback_debt[tag] = self._fallback_debt.get(tag, 0) + 1

    def _drop_stale(self, fst_tag: str) -> None:
        dropped_run = 0
        while self._pending:
            head = self._pending[0]
            if head.call < self.consumer_call:
                self._pending.popleft()
                self.packets_dropped += 1
                continue
            debt = self._fallback_debt.get(head.tag, 0)
            if debt and head.call == self.consumer_call:
                self._fallback_debt[head.tag] = debt - 1
                self._pending.popleft()
                self.packets_dropped += 1
                continue
            if head.call == self.consumer_call and head.tag != fst_tag:
                self._pending.popleft()
                self.packets_dropped += 1
                dropped_run += 1
                if dropped_run > self.MAX_DROP_RUN:
                    if self.strict:
                        raise FetchAgentError(
                            f"dropped {dropped_run} packets without matching "
                            f"tag {fst_tag!r}: prediction stream misaligned"
                        )
                    break  # corrupted stream: stop dropping, caller falls back
                continue
            break

    def try_pop(
        self,
        fst_tag: str,
        fetch_time: int,
        only_ready: bool = False,
        deadline: int | None = None,
    ) -> tuple[bool, int] | None:
        """Pop the prediction for the FST branch *fst_tag*.

        Returns ``(taken, effective_time)`` where effective_time >=
        fetch_time reflects any stall waiting for the packet, or None if
        the matching packet has not been produced yet (caller advances the
        component and retries).

        With ``only_ready`` (the §2.4 non-stalling Fetch Agent), a packet
        whose ready time is in the future is left in place and None is
        returned — the fetch unit proceeds with the core's predictor and
        the late packet is dropped via the fallback-debt counter.

        With ``deadline`` (the graceful-degradation watchdog), a matching
        packet that will only be ready after the deadline is left in
        place — the fetch-stall timeout path consumes it via
        :meth:`drop_match` so the stream stays aligned without the stall.
        """
        self._drop_stale(fst_tag)
        if not self._pending:
            return None
        head = self._pending[0]
        if head.call > self.consumer_call:
            # Producer is already in a later call than the fetch unit —
            # impossible with the marker ordering, so under a clean run
            # it is a model bug.  Under fault injection it is reachable
            # (a duplicated worklist observation makes the component
            # signal new_call twice), so the non-strict agent declines to
            # supply and the core falls back; the stream realigns once
            # the fetch unit reaches the next call marker.
            if self.strict:
                raise FetchAgentError("producer call ahead of consumer call")
            return None
        if head.tag != fst_tag:
            return None
        if only_ready and head.ready > fetch_time:
            return None
        if deadline is not None and head.ready > deadline:
            return None
        self._pending.popleft()
        effective = max(fetch_time, head.ready)
        self.stall_cycles += effective - fetch_time
        self.predictions_supplied += 1
        probe = self.probe
        if probe is not None:
            probe.queue(effective, "IntQ-F", "pop", len(self._pending))
            if effective > fetch_time:
                probe.agent(
                    fetch_time, "fetch", "intqf_stall", effective - fetch_time
                )
        return head.taken, effective

    def drop_match(self, fst_tag: str) -> bool:
        """Consume-and-discard the head packet if it matches *fst_tag*.

        The fetch-stall timeout path: the packet exists but is too late to
        wait for, so discarding it (rather than recording fallback debt)
        keeps the stream aligned without double-counting the drop.
        """
        if not self._pending:
            return False
        head = self._pending[0]
        if head.call == self.consumer_call and head.tag == fst_tag:
            self._pending.popleft()
            self.packets_dropped += 1
            return True
        return False

    # ------------------------------------------------------------------ #
    # squash protocol
    # ------------------------------------------------------------------ #

    def apply_squash(self, squash_done: int) -> None:
        """Re-floor unconsumed packet timing after a pipeline squash.

        The component replays recorded final predictions at W per RF cycle
        once its rollback completes (Section 4.1.2).
        """
        for idx, entry in enumerate(self._pending):
            replay_ready = squash_done + (idx // self.width + 1) * self.clk_ratio
            entry.ready = max(entry.ready, replay_ready)

    def pending_count(self) -> int:
        return len(self._pending)

    def stats(self) -> dict[str, int]:
        """Counter summary shaped like :meth:`TimedQueue.stats`.

        ``max_occupancy`` is the high-water mark of the whole pending
        prediction stream (delay pipeline included), and ``dropped`` the
        stale/fallback packets discarded to keep the stream aligned.
        """
        return {
            "pushes": self.pushes,
            "pops": self.predictions_supplied,
            "max_occupancy": self.max_pending,
            "backpressure": 0,
            "full_rejects": self.full_rejects,
            "dropped": self.packets_dropped,
        }
