"""Post-Fabrication Microarchitecture: agents, queues, and custom components.

This package implements the paper's primary contribution (Section 2): the
programmable interface between a superscalar core and an on-chip
reconfigurable fabric (RF).

* :mod:`repro.pfm.snoop` — Retire/Fetch Snoop Tables (RST/FST) and the
  configuration-bitstream abstraction that fills them.
* :mod:`repro.pfm.packets` — observation/intervention packet types.
* :mod:`repro.pfm.queues` — the ObsQ-R, IntQ-F, IntQ-IS and ObsQ-EX
  communication queues, modelled in the timestamp domain with finite
  capacity and back-pressure.
* :mod:`repro.pfm.agents` — the Retire, Fetch, and Load Agents.
* :mod:`repro.pfm.component` — base class and RF timing model
  (clkC / wW / delayD) for custom components.
* :mod:`repro.pfm.components` — the paper's use-cases: the astar custom
  branch predictor, the bfs engine, and the five custom prefetchers.
"""

from repro.pfm.snoop import FSTEntry, RSTEntry, SnoopKind, Bitstream
from repro.pfm.component import CustomComponent, RFTimings
from repro.pfm.fabric import PFMFabric
from repro.pfm.tenancy import (
    FabricScheduler,
    FabricSlot,
    PartitionedFST,
    PartitionedRST,
    SlotHit,
    TenantSpec,
    parse_tenant_spec,
)

__all__ = [
    "FSTEntry",
    "RSTEntry",
    "SnoopKind",
    "Bitstream",
    "CustomComponent",
    "RFTimings",
    "PFMFabric",
    "TenantSpec",
    "parse_tenant_spec",
    "SlotHit",
    "FabricSlot",
    "FabricScheduler",
    "PartitionedFST",
    "PartitionedRST",
]
