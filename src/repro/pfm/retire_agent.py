"""Retire Agent (Section 2.1).

Matches retiring PCs against the Retire Snoop Table and constructs
observation packets for the component:

* destination value packets read the physical register file through ports
  shared with the execution lanes (the ``portP`` sweep).  The controller
  holds the retiring instruction's tag at a 2:1 mux on the shared port
  until the owning lane has an idle cycle.
* store value packets come from the head of the store queue — no port.
* branch outcome packets come from the head of the fetch unit's branch
  queue — no port.

It also runs the squash / squash-done synchronization protocol: on a
pipeline squash the agent sends a squash packet and stalls the retire
unit until the component's squash-done arrives via the Fetch Agent.
"""

from __future__ import annotations

from repro.core.params import PORT_ALL, PORT_LS, PORT_LS1, CoreParams
from repro.core.resources import LaneScheduler
from repro.pfm.packets import ObsPacket
from repro.pfm.snoop import RSTEntry, SnoopKind
from repro.workloads.trace import DynInst


class RetireAgent:
    """Observation-packet construction with PRF port contention."""

    def __init__(self, core_params: CoreParams, lanes: LaneScheduler, port: str):
        self._lanes = lanes
        if port == PORT_ALL:
            self._port_lanes = tuple(range(core_params.num_lanes))
        elif port == PORT_LS:
            self._port_lanes = core_params.ls_lanes()
        elif port == PORT_LS1:
            self._port_lanes = core_params.ls_lanes()[:1]
        else:
            raise ValueError(f"unknown port option {port!r}")
        self.port_delay_cycles = 0
        self.packets_built = 0
        self.probe = None  # optional telemetry hub

    def build_packet(
        self, dyn: DynInst, entry: RSTEntry, retire_time: int
    ) -> tuple[ObsPacket, int]:
        """Construct the observation packet; return it with its send time."""
        kind = entry.kind
        if kind is SnoopKind.DEST_VALUE:
            send_time = self._lanes.earliest_free_port(self._port_lanes, retire_time)
            self.port_delay_cycles += send_time - retire_time
            if self.probe is not None and send_time > retire_time:
                self.probe.agent(
                    retire_time, "retire", "prf_port_wait", send_time - retire_time
                )
            packet = ObsPacket(
                kind=kind,
                tag=entry.tag,
                pc=dyn.pc,
                value=dyn.dst_value,
                # Loads carry their effective address: table-mimicking
                # components (astar-alt) key their active updates on it.
                address=dyn.mem_addr,
            )
        elif kind is SnoopKind.STORE_VALUE:
            send_time = retire_time
            packet = ObsPacket(
                kind=kind,
                tag=entry.tag,
                pc=dyn.pc,
                value=dyn.store_value,
                address=dyn.mem_addr,
            )
        elif kind is SnoopKind.BRANCH_OUTCOME:
            send_time = retire_time
            packet = ObsPacket(kind=kind, tag=entry.tag, pc=dyn.pc, taken=dyn.taken)
        elif kind in (SnoopKind.ROI_BEGIN, SnoopKind.ROI_END):
            # ROI markers may double as value snoops (astar's line 1 both
            # begins the ROI and produces fillnum), so carry the value.
            send_time = retire_time
            packet = ObsPacket(
                kind=kind, tag=entry.tag, pc=dyn.pc, value=dyn.dst_value
            )
        else:  # pragma: no cover - exhaustive over SnoopKind
            raise ValueError(f"unhandled snoop kind {kind}")
        self.packets_built += 1
        return packet, send_time
