"""PFM fabric: co-simulation of the RF component with the core.

The cycle model is one-pass in program order (see :mod:`repro.core.core`);
the fabric advances the component's RF clock lazily: when the core's fetch
stage needs a prediction it advances RF cycles until the matching packet
exists (or the component is provably quiescent — the §2.4 watchdog /
chicken-switch path); observation pushes advance the component to keep it
current.  All causality flows forward: every observation a component can
need to predict a branch comes from instructions older than that branch,
which the one-pass engine has already processed and timestamped.

Squash/squash-done handshake cost: ``(D + 3) * C`` core cycles — one RF
cycle for the squash packet crossing, ``D + 1`` RF cycles for rollback
through the component pipeline, one RF cycle for the squash-done signal
back through IntQ-F (Section 2.1); the Retire Agent stalls the retire unit
until then, and unconsumed predictions are replayed at W per RF cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.params import CoreParams, PFMParams
from repro.core.resources import LaneScheduler
from repro.core.watchdog import Watchdog
from repro.memory.hierarchy import MemoryHierarchy
from repro.pfm.component import CustomComponent, RFIo, RFTimings
from repro.pfm.fetch_agent import FetchAgent
from repro.pfm.load_agent import LoadAgent
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.queues import TimedQueue
from repro.pfm.reconfig import ReconfigController
from repro.pfm.retire_agent import RetireAgent
from repro.pfm.snoop import Bitstream, SnoopKind
from repro.registry.components import rebuild_component
from repro.workloads.mem import MemoryImage

if TYPE_CHECKING:
    from repro.core.stages.ports import AgentPort
    from repro.pfm.snoop import FSTEntry, RSTEntry


class FabricFetchHook:
    """Fetch Agent adapter satisfying :class:`~repro.core.stages.ports.
    FetchAgentHook` — what the fetch stage sees of the fabric (§2.2).

    The forwarding methods are bound at construction (the FST and
    watchdog are fixed for the fabric's lifetime) so a hook call costs
    the same as the direct fabric call it replaces.
    """

    __slots__ = ("_fabric", "on_fetch", "lookup", "predict", "record_override")

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric
        self.on_fetch = fabric.on_fetch
        self.lookup = fabric.fst.lookup
        self.predict = fabric.predict
        self.record_override = fabric.watchdog.record_override

    @property
    def roi_fetch_active(self) -> bool:
        return self._fabric.roi_fetch_active

    @property
    def stall_cycles(self) -> int:
        return self._fabric.fetch_agent.stall_cycles


class FabricExecuteHook:
    """Load Agent adapter satisfying :class:`~repro.core.stages.ports.
    ExecuteAgentHook` — the agent's LSU-path accounting (§2.3)."""

    __slots__ = ("_fabric",)

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric

    @property
    def loads_issued(self) -> int:
        return self._fabric.load_agent.loads_issued

    @property
    def prefetches_issued(self) -> int:
        return self._fabric.load_agent.prefetches_issued

    @property
    def load_misses(self) -> int:
        return self._fabric.load_agent.load_misses

    @property
    def replays(self) -> int:
        return self._fabric.load_agent.replays

    @property
    def loads_sanitized(self) -> int:
        return self._fabric.load_agent.loads_sanitized


class FabricRetireHook:
    """Retire Agent adapter satisfying :class:`~repro.core.stages.ports.
    RetireAgentHook` — RST snooping and squash sync (§2.1).

    Forwarding methods are bound at construction (the RST is fixed for
    the fabric's lifetime), matching the cost of the direct calls.
    """

    __slots__ = ("_fabric", "lookup", "on_retire", "on_squash")

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric
        self.lookup = fabric.rst.lookup
        self.on_retire = fabric.on_retire
        self.on_squash = fabric.on_core_squash

    @property
    def roi_active(self) -> bool:
        return self._fabric.roi_active

    @property
    def port_delay_cycles(self) -> int:
        return self._fabric.retire_agent.port_delay_cycles


class PFMFabric:
    """Everything on the RF side of the pipeline interface."""

    def __init__(
        self,
        bitstream: Bitstream,
        pfm: PFMParams,
        core_params: CoreParams,
        lanes: LaneScheduler,
        hierarchy: MemoryHierarchy,
        memory: MemoryImage,
    ):
        self.bitstream = bitstream
        self.params = pfm
        self.timings = RFTimings(pfm.clk_ratio, pfm.width, pfm.delay)
        self.rst = bitstream.make_rst()
        self.fst = bitstream.make_fst()
        metadata = dict(bitstream.metadata)
        metadata.update(pfm.component_overrides)
        self.component: CustomComponent = bitstream.component_factory(
            self.timings, memory, metadata
        )
        self.call_marker_pcs: frozenset[int] = frozenset(
            metadata.get("call_marker_pcs", ())
        )

        self.watchdog = Watchdog(pfm.watchdog)
        self.injector = None
        mlb_entries = pfm.mlb_entries
        if pfm.fault_plan is not None:
            # Imported here so fault-free builds never touch the fault
            # subsystem (core/pfm must not depend on repro.faults).
            from repro.faults.inject import FaultInjector

            self.injector = FaultInjector(pfm.fault_plan)
            mlb_entries = self.injector.mlb_entries(pfm.mlb_entries)

        c = pfm.clk_ratio
        self.obs_q = TimedQueue("ObsQ-R", pfm.queue_size, crossing_latency=c)
        # IntQ-IS push times are component pipe-exit times, nondecreasing
        # by construction — assert it (ObsQ-R and ObsQ-EX legitimately
        # reorder send times via PRF port contention and MLB re-flushes).
        self.intq_is = TimedQueue("IntQ-IS", pfm.queue_size, monotonic_push=True)
        self.retq = TimedQueue("ObsQ-EX", pfm.queue_size, crossing_latency=c)
        self.fetch_agent = FetchAgent(
            pfm.queue_size, c, pfm.width, strict=self.injector is None
        )
        self.retire_agent = RetireAgent(core_params, lanes, pfm.port)
        self.load_agent = LoadAgent(
            self.intq_is,
            self.retq,
            hierarchy,
            memory,
            lanes,
            core_params.ls_lanes(),
            mlb_entries=mlb_entries,
            replay_period=pfm.mlb_replay_period,
            watchdog=self.watchdog,
            injector=self.injector,
        )

        self._io = RFIo(self.timings, self)
        self.rf_cycle = 0
        self.roi_active = False  # retire-side (component enabled)
        self.roi_fetch_active = False  # fetch-side (stats / markers)
        self.enabled = True  # chicken switch
        self._pending_squashes: list[int] = []  # visible times
        self._watchdog_budget = pfm.watchdog_rf_cycles
        self.obs_dropped = 0
        self.squashes_signalled = 0
        self.probe = None  # optional telemetry hub (attach_fabric wires it)
        #: ROI-begin snoop value, recorded so a hot swap can re-arm the
        #: replacement component (ROI markers retire once per run).
        self.last_roi_value = None
        #: Self-healing reconfiguration controller; None when the policy
        #: is inactive, and the fabric behaves exactly as before.
        self.reconfig: ReconfigController | None = None
        if pfm.recovery.active():
            self.reconfig = ReconfigController(self, pfm.recovery)

    # ------------------------------------------------------------------ #
    # pipeline interface (agent ports)
    # ------------------------------------------------------------------ #

    def attach_ports(
        self,
        fetch_port: "AgentPort",
        execute_port: "AgentPort",
        retire_port: "AgentPort",
    ) -> None:
        """Plug one agent adapter into each stage's attachment point.

        The paper's Agents sit at fixed pipeline interfaces (§2.1–2.3);
        this is the software analogue of wiring them up at configuration
        time.  Each port holds at most one agent.
        """
        fetch_port.attach(FabricFetchHook(self))
        execute_port.attach(FabricExecuteHook(self))
        retire_port.attach(FabricRetireHook(self))

    # ------------------------------------------------------------------ #
    # RF clock
    # ------------------------------------------------------------------ #

    def _now(self) -> int:
        return self.timings.core_time(self.rf_cycle)

    def _next_event_time(self) -> int | None:
        times = []
        if self._pending_squashes:
            times.append(self._pending_squashes[0])
        head = self.obs_q.head_visible_time()
        if head is not None:
            times.append(head)
        head = self.retq.head_visible_time()
        if head is not None:
            times.append(head)
        agent = self.load_agent.next_event_time()
        if agent is not None:
            times.append(agent)
        return min(times) if times else None

    def _step_rf(self) -> bool:
        """Run one RF cycle; returns False when provably quiescent."""
        if self.injector is not None and self.injector.component_frozen(
            self.rf_cycle
        ):
            # clkC is dead: time passes but the component never steps, so
            # IntQ-F never refills and ObsQ-R never drains.  Not quiescent
            # (queues may hold entries) — the watchdog must save the run.
            self.rf_cycle += 1
            return True
        if self.component.is_idle():
            nxt = self._next_event_time()
            if nxt is None:
                return False
            # Fast-forward dead RF cycles up to the next event.
            c = self.timings.clk_ratio
            target_cycle = max(self.rf_cycle, nxt // c)
            self.rf_cycle = target_cycle
        self._io.begin_cycle(self.rf_cycle)
        self.load_agent.tick(self._io.now)
        self.component.step(self._io)
        self.rf_cycle += 1
        return True

    def advance_to(self, core_time: int) -> None:
        """Run RF cycles whose window ends at or before *core_time*."""
        if not self.enabled:
            return
        c = self.timings.clk_ratio
        guard = self._watchdog_budget
        while (self.rf_cycle + 1) * c <= core_time and guard > 0:
            if not self._step_rf():
                break
            guard -= 1

    # ------------------------------------------------------------------ #
    # fetch side
    # ------------------------------------------------------------------ #

    def on_fetch(self, pc: int) -> None:
        """Fetch-stage bookkeeping: ROI entry and per-call markers."""
        if not self.roi_fetch_active:
            entry = self.rst.lookup(pc)
            if entry is not None and entry.kind is SnoopKind.ROI_BEGIN:
                self.roi_fetch_active = True
            return
        if pc in self.call_marker_pcs:
            self.fetch_agent.on_call_marker()

    def predict(self, fst_tag: str, fetch_time: int) -> tuple[bool, int] | None:
        """Supply the custom prediction for an FST-hit branch.

        Returns ``(taken, effective_fetch_time)``, or None when the
        watchdog fired, a graceful-degradation defense tripped, or the
        component is quiescent — the caller then uses the core's own
        predictor (§2.4).  Every None path settles the prediction-stream
        alignment itself: either the matching late packet is discarded
        (fetch-timeout path) or fallback debt is recorded so the packet
        is dropped when it eventually arrives.
        """
        fa = self.fetch_agent
        rc = self.reconfig
        if rc is not None and not rc.ready(fetch_time):
            # Mid-reload (or permanently disabled): the core's predictor
            # carries the branch while the bitstream loads.
            fa.note_fallback(fst_tag)
            return None
        if not self.enabled or not self.roi_active:
            fa.note_fallback(fst_tag)
            return None
        wd = self.watchdog
        if not wd.overrides_allowed():
            # Accuracy breaker open: serve this FST hit from the core's
            # predictor and drop the component's packet via the debt.
            wd.note_suppressed()
            fa.note_fallback(fst_tag)
            return None
        self.advance_to(fetch_time)
        if self.params.fetch_policy == "proceed":
            # §2.4 non-stalling design: use the packet only if it is
            # already waiting in IntQ-F; otherwise the fetch unit proceeds
            # with the core's predictor and the late packet is dropped.
            result = fa.try_pop(fst_tag, fetch_time, only_ready=True)
            if result is None:
                fa.note_fallback(fst_tag)
            return result
        deadline = wd.fetch_deadline(fetch_time)
        guard = self._watchdog_budget
        while guard > 0:
            result = fa.try_pop(fst_tag, fetch_time, deadline=deadline)
            if result is not None:
                wd.on_fetch_delivered()
                return result
            if deadline is not None and self._now() > deadline:
                self._fetch_timeout(fst_tag)
                return None
            if not self._step_rf():
                fa.note_fallback(fst_tag)
                return None  # quiescent: prediction will never arrive
            guard -= 1
        # Watchdog fired: chicken switch (§2.4) — unless a recovery
        # policy buys the component a reload first.
        if rc is None or not rc.on_component_dead(self._now(), "rf-budget"):
            self.enabled = False
        fa.note_fallback(fst_tag)
        return None

    def _fetch_timeout(self, fst_tag: str) -> None:
        """Fetch-stall deadline expired: fall back for this branch only.

        The matching packet, if already produced (just late), is consumed
        and discarded to keep the stream aligned; otherwise fallback debt
        covers its eventual arrival.  A run of timeouts with no producer
        progress declares the component dead and disables the fabric.
        """
        fa = self.fetch_agent
        progress = (
            fa.producer_call,
            fa.producer_seq,
            self.obs_q.pops,
            self.intq_is.pops,
            self.retq.pops,
        )
        self.watchdog.on_fetch_timeout(progress)
        if not fa.drop_match(fst_tag):
            fa.note_fallback(fst_tag)
        if self.watchdog.component_dead:
            rc = self.reconfig
            if rc is None or not rc.on_component_dead(
                self._now(), "dead-component"
            ):
                self.enabled = False

    # ------------------------------------------------------------------ #
    # retire side
    # ------------------------------------------------------------------ #

    def on_retire(self, dyn, retire_time: int) -> int:
        """Retire-stage hook; returns the (possibly stalled) retire time."""
        if not self.enabled:
            return retire_time
        rc = self.reconfig
        if rc is not None and not rc.ready(retire_time):
            return retire_time  # mid-reload: nothing to observe with
        entry = self.rst.lookup(dyn.pc)
        if entry is None:
            return retire_time
        if entry.kind is SnoopKind.ROI_BEGIN:
            return self._begin_roi(dyn, entry, retire_time)
        if not self.roi_active:
            return retire_time
        packet, send_time = self.retire_agent.build_packet(dyn, entry, retire_time)
        self._obs_push(packet, send_time, droppable=entry.droppable)
        return retire_time

    def _begin_roi(self, dyn, entry, retire_time: int) -> int:
        """Beginning of ROI (Section 2.1): squash, enable, begin packet."""
        self.roi_active = True
        packet, send_time = self.retire_agent.build_packet(dyn, entry, retire_time)
        self.last_roi_value = packet.value
        self._obs_push(packet, send_time, droppable=False)
        return retire_time  # the core applies the pipeline squash

    # Drop decision latency: a droppable packet waits at most this many RF
    # cycles for ObsQ-R space before the Retire Agent discards it.
    _DROP_PATIENCE_RF = 8

    def _obs_push(self, packet: ObsPacket, send_time: int, droppable: bool) -> None:
        if self.injector is None:
            self._obs_push_one(packet, send_time, droppable)
            return
        packets = self.injector.on_obs(packet)
        for index, faulted in enumerate(packets):
            # An injected duplicate never earns back-pressure patience.
            self._obs_push_one(faulted, send_time, droppable or index > 0)

    def _obs_push_one(
        self, packet: ObsPacket, send_time: int, droppable: bool
    ) -> None:
        self.advance_to(send_time)
        guard = self._DROP_PATIENCE_RF if droppable else self._watchdog_budget
        if self.injector is not None and self.injector.component_frozen(
            self.rf_cycle
        ):
            # A dead component never drains ObsQ-R; don't spin the budget.
            guard = min(guard, self._DROP_PATIENCE_RF)
        while not self.obs_q.can_push() and guard > 0:
            if not self._step_rf():
                break
            guard -= 1
        if not self.obs_q.can_push():
            self.obs_dropped += 1
            self.obs_q.note_reject(send_time)
            return
        send_time = max(send_time, self.obs_q.earliest_push(send_time))
        self.obs_q.push(send_time, packet)

    def on_core_squash(self, squash_time: int, reason: str) -> int:
        """Pipeline squash: run the squash/squash-done protocol.

        Returns the squash-done time; the core floors subsequent retire
        times to it (the Retire Agent stalls the retire unit, §2.1).
        """
        if not self.enabled or not self.roi_active:
            return squash_time
        rc = self.reconfig
        if rc is not None and squash_time < rc.available_at:
            # Mid-reload: the component isn't loaded yet, so there is
            # nothing to hand the squash protocol to (queues are empty).
            return squash_time
        self.squashes_signalled += 1
        c = self.timings.clk_ratio
        self._pending_squashes.append(squash_time + c)
        squash_done = squash_time + (self.timings.delay + 3) * c
        if self.injector is not None:
            timeouts_before = self.watchdog.squash_timeouts
            squash_done = self.injector.squash_done(
                squash_time, squash_done, c, self.watchdog
            )
            if rc is not None and self.watchdog.squash_timeouts > timeouts_before:
                # A lost squash-done leaves the handshake protocol itself
                # suspect — count it toward the policy's reload threshold.
                if rc.on_squash_timeout(squash_time):
                    squash_done = max(squash_done, rc.available_at)
        self.fetch_agent.apply_squash(squash_done)
        if self.probe is not None:
            self.probe.agent(
                squash_time, "fabric", "squash_sync", squash_done - squash_time
            )
        return squash_done

    # ------------------------------------------------------------------ #
    # component-facing callbacks (used by RFIo)
    # ------------------------------------------------------------------ #

    def obs_peek(self, now: int):
        if self._pending_squashes and self._pending_squashes[0] <= now:
            return SquashPacket(core_time=self._pending_squashes[0], reason="squash")
        return self.obs_q.peek_visible(now)

    def obs_pop(self, now: int):
        if self._pending_squashes and self._pending_squashes[0] <= now:
            t = self._pending_squashes.pop(0)
            packet = SquashPacket(core_time=t, reason="squash")
            self.component.on_squash(packet)
            return packet
        if self.obs_q.peek_visible(now) is None:
            return None
        return self.obs_q.pop(now)

    def return_pop(self, now: int):
        if self.retq.peek_visible(now) is None:
            return None
        return self.retq.pop(now)

    def pred_can_push(self) -> bool:
        # Occupancy is evaluated at the packet's pipe-exit time by push();
        # here just bound the total in-flight stream.
        return self.fetch_agent.pending_count() < self.params.queue_size * 4

    def pred_push(self, taken: bool, ready: int, tag: str) -> bool:
        if self.injector is not None:
            delivered, taken = self.injector.on_pred(taken)
            if not delivered:
                return True  # lost in transit: the component saw success
        if not self.fetch_agent.can_push(ready):
            return False
        return self.fetch_agent.push(taken, ready, tag)

    def pred_new_call(self) -> None:
        self.fetch_agent.new_call()

    def load_can_push(self) -> bool:
        return self.intq_is.can_push()

    def load_push(self, packet, ready: int) -> bool:
        if self.injector is not None:
            packets = self.injector.on_load(packet)
            if not packets:
                return True  # lost in transit: the component saw success
            if not self.intq_is.can_push():
                return False
            self.intq_is.push(ready, packets[0])
            for dup in packets[1:]:
                if self.intq_is.can_push():  # a full queue sheds the dup
                    self.intq_is.push(ready, dup)
                else:
                    self.intq_is.note_reject(ready)
            return True
        if not self.intq_is.can_push():
            return False
        self.intq_is.push(ready, packet)
        return True

    # ------------------------------------------------------------------ #
    # context isolation (Section 2.4)
    # ------------------------------------------------------------------ #

    def _flush_inflight(self, now: int) -> int:
        """Flush every queue and in-flight token; returns packets dropped.

        Shared by :meth:`deprogram` and the reconfiguration drain: nothing
        in flight — ObsQ packets, pending predictions and their fallback
        debt, MLB fills, un-flushed load returns, queued squash-done
        tokens — may leak into the next program's queues.
        """
        dropped = self.obs_q.clear(now)
        dropped += self.intq_is.clear(now)
        dropped += self.retq.clear(now)
        dropped += self.fetch_agent.reset()
        dropped += self.load_agent.reset()
        dropped += len(self._pending_squashes)
        self._pending_squashes.clear()
        return dropped

    def deprogram(self, now: int) -> None:
        """Remove the context's component from RF and the Agents.

        Section 2.4: "The system must not allow one context's custom
        component in RF to observe another context in the core.  This can
        be enforced by removing a context's custom component from RF and
        the Agents when that context is swapped out."  Every queue is
        flushed (nothing may be observed later) and the fabric disables
        until :meth:`reprogram`.
        """
        self.enabled = False
        self.roi_active = False
        self.roi_fetch_active = False
        self.last_roi_value = None
        self._flush_inflight(now)

    def reprogram(self, now: int) -> None:
        """Re-synthesize the component when the context is swapped back in.

        The configuration bitstream rebuilds the component from scratch —
        no state survives a context switch (that is the isolation
        guarantee).  The ROI must be re-entered before the component
        intervenes again.
        """
        self.component = rebuild_component(
            self.bitstream,
            self.timings,
            self.load_agent._memory,
            self.params.component_overrides,
        )
        self.rf_cycle = max(self.rf_cycle, now // self.timings.clk_ratio)
        self.enabled = True

    # ------------------------------------------------------------------ #
    # self-healing reconfiguration (repro.pfm.reconfig)
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        """Fabric lifecycle state name ("active", "disabled", ...)."""
        if self.reconfig is not None:
            return self.reconfig.state.value
        return "active" if self.enabled else "disabled"

    def rearm_roi(self, now: int, roi_value) -> None:
        """Replay the ROI-begin snoop to a freshly loaded component.

        ROI markers retire once per run (astar enters its fill loop a
        single time), so a hot-swapped component would otherwise wait
        forever for an ROI_BEGIN that never comes.  The recorded begin
        value is replayed through the normal observation path — the
        replacement arms itself exactly the way the original did.
        """
        self.roi_active = True
        self.roi_fetch_active = True
        packet = ObsPacket(
            kind=SnoopKind.ROI_BEGIN, tag="roi", pc=0, value=roi_value
        )
        self._obs_push_one(packet, now, droppable=False)

    # ------------------------------------------------------------------ #

    def queue_stats(self) -> dict[str, dict[str, int]]:
        """Per-queue counter summaries for all four fabric queues.

        IntQ-F lives inside the Fetch Agent (predictions carry ready
        times through the delay pipeline rather than a TimedQueue), so
        its summary comes from the agent; ObsQ-R additionally reports the
        observation packets the Retire Agent shed on back-pressure.
        """
        stats = {
            q.name: q.stats() for q in (self.obs_q, self.intq_is, self.retq)
        }
        stats["ObsQ-R"]["dropped"] = self.obs_dropped
        stats["IntQ-F"] = self.fetch_agent.stats()
        return stats
