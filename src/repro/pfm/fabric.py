"""PFM fabric: co-simulation of RF components with the core.

The cycle model is one-pass in program order (see :mod:`repro.core.core`);
each fabric slot advances its component's RF clock lazily: when the core's
fetch stage needs a prediction the owning slot advances RF cycles until
the matching packet exists (or the component is provably quiescent — the
§2.4 watchdog / chicken-switch path); observation pushes advance the
component to keep it current.  All causality flows forward: every
observation a component can need to predict a branch comes from
instructions older than that branch, which the one-pass engine has
already processed and timestamped.

Multi-tenancy (:mod:`repro.pfm.tenancy`): the fabric is a container of
:class:`~repro.pfm.tenancy.FabricSlot` objects — slot 0 is the primary
tenant (the workload's bitstream), further slots come from
``PFMParams.tenants``.  Snoop lookups go through partitioned tables whose
hits carry the owning slot; the hooks route pipeline traffic to that
slot, resolving fetch-override conflicts by tenant priority and letting
every matching slot observe on the retire side.  The observation
crossing is arbitrated by the contention-aware
:class:`~repro.pfm.tenancy.FabricScheduler`.  With a single slot, every
routing layer collapses to a direct slot call (the hooks bind slot
methods at construction), so single-tenant runs stay byte-identical to
the pre-tenancy fabric.

Squash/squash-done handshake cost: ``(D + 3) * C`` core cycles — one RF
cycle for the squash packet crossing, ``D + 1`` RF cycles for rollback
through the component pipeline, one RF cycle for the squash-done signal
back through IntQ-F (Section 2.1); the Retire Agent stalls the retire
unit until then, and unconsumed predictions are replayed at W per RF
cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.core.params import CoreParams, PFMParams
from repro.core.resources import LaneScheduler
from repro.memory.hierarchy import MemoryHierarchy
from repro.pfm.tenancy import (
    FabricScheduler,
    FabricSlot,
    PartitionedFST,
    PartitionedRST,
    SlotHit,
    TenantSpec,
    slot_params,
)
from repro.pfm.snoop import Bitstream
from repro.workloads.mem import MemoryImage

if TYPE_CHECKING:
    from repro.core.stages.ports import AgentPort
    from repro.workloads.trace import DynInst


class FabricFetchHook:
    """Fetch Agent adapter satisfying :class:`~repro.core.stages.ports.
    FetchAgentHook` — what the fetch stage sees of the fabric (§2.2).

    The forwarding methods are bound at construction (the partitioned FST
    and the slot layout are fixed for the fabric's lifetime); with a
    single slot they bind the slot's own methods, so a hook call costs
    the same as the pre-tenancy direct fabric call.
    """

    __slots__ = (
        "_roi_src", "_fabric", "on_fetch", "lookup", "predict",
        "record_override",
    )

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric
        self.lookup = fabric.fst.lookup
        self.predict = fabric.predict_hit
        if fabric._single:
            slot = fabric._slot0
            self._roi_src: Any = slot
            self.on_fetch = slot.on_fetch
            self.record_override = slot.watchdog.record_override
        else:
            self._roi_src = fabric
            self.on_fetch = fabric._on_fetch_multi
            self.record_override = fabric._record_override

    @property
    def roi_fetch_active(self) -> bool:
        return self._roi_src.roi_fetch_active

    @property
    def stall_cycles(self) -> int:
        return self._fabric.fetch_stall_cycles


class FabricExecuteHook:
    """Load Agent adapter satisfying :class:`~repro.core.stages.ports.
    ExecuteAgentHook` — the agents' LSU-path accounting (§2.3), summed
    across tenants."""

    __slots__ = ("_fabric",)

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric

    @property
    def loads_issued(self) -> int:
        return sum(s.load_agent.loads_issued for s in self._fabric.slots)

    @property
    def prefetches_issued(self) -> int:
        return sum(s.load_agent.prefetches_issued for s in self._fabric.slots)

    @property
    def load_misses(self) -> int:
        return sum(s.load_agent.load_misses for s in self._fabric.slots)

    @property
    def replays(self) -> int:
        return sum(s.load_agent.replays for s in self._fabric.slots)

    @property
    def loads_sanitized(self) -> int:
        return sum(s.load_agent.loads_sanitized for s in self._fabric.slots)


class FabricRetireHook:
    """Retire Agent adapter satisfying :class:`~repro.core.stages.ports.
    RetireAgentHook` — RST snooping and squash sync (§2.1).

    Forwarding methods are bound at construction (the partitioned RST is
    fixed for the fabric's lifetime), matching the cost of direct calls;
    a single-slot fabric binds the slot's methods directly.
    """

    __slots__ = ("_roi_src", "_fabric", "lookup", "on_retire", "on_squash")

    def __init__(self, fabric: "PFMFabric"):
        self._fabric = fabric
        self.lookup = fabric.rst.lookup
        if fabric._single:
            self._roi_src: Any = fabric._slot0
            self.on_retire = fabric._on_retire_single
            self.on_squash = fabric._slot0.on_core_squash
        else:
            self._roi_src = fabric
            self.on_retire = fabric._on_retire_multi
            self.on_squash = fabric.on_core_squash

    @property
    def roi_active(self) -> bool:
        return self._roi_src.roi_active

    @property
    def port_delay_cycles(self) -> int:
        return self._fabric.port_delay_cycles


class PFMFabric:
    """Everything on the RF side of the pipeline interface.

    A container of fabric slots (one per tenant) plus the partitioned
    snoop tables, the contention-aware scheduler, and the routing layer
    the pipeline hooks call into.  Single-tenant attribute access
    (``fabric.component``, ``fabric.obs_q``, ...) delegates to slot 0 —
    the primary tenant — preserving the pre-tenancy surface.
    """

    def __init__(
        self,
        bitstream: Bitstream,
        pfm: PFMParams,
        core_params: CoreParams,
        lanes: LaneScheduler,
        hierarchy: MemoryHierarchy,
        memory: MemoryImage,
    ):
        self.bitstream = bitstream
        self.params = pfm
        self.scheduler = FabricScheduler()

        primary_spec = TenantSpec(
            component=bitstream.name, priority=0, name=bitstream.name
        )
        builds: list[tuple[TenantSpec, Bitstream, PFMParams]] = [
            (primary_spec, bitstream, pfm)
        ]
        for spec in pfm.tenants:
            # Imported lazily: the registry's tenant layouts pull in
            # component modules, which single-tenant builds never need.
            from repro.registry.tenants import build_tenant_bitstream

            builds.append(
                (spec, build_tenant_bitstream(spec, bitstream), slot_params(pfm, spec))
            )

        self.slots: list[FabricSlot] = []
        for index, (spec, slot_bitstream, slot_pfm) in enumerate(builds):
            slot = FabricSlot(
                index,
                spec,
                slot_bitstream,
                slot_pfm,
                core_params,
                lanes,
                hierarchy,
                memory,
                self.scheduler,
            )
            self.scheduler.register(slot)
            self.slots.append(slot)

        self._slot0 = self.slots[0]
        self._single = len(self.slots) == 1
        self.fst = PartitionedFST(self.slots)
        self.rst = PartitionedRST(self.slots)
        #: Fetch-override conflicts: a lower-priority tenant's FST entry
        #: lost a same-PC override to a higher-priority tenant.
        self.fetch_override_conflicts = 0
        self._last_predict_slot = self._slot0
        self._hooks: tuple[Any, ...] = ()

    # ------------------------------------------------------------------ #
    # pipeline interface (agent ports)
    # ------------------------------------------------------------------ #

    def attach_ports(
        self,
        fetch_port: "AgentPort",
        execute_port: "AgentPort",
        retire_port: "AgentPort",
    ) -> None:
        """Plug one agent adapter into each stage's attachment point.

        The paper's Agents sit at fixed pipeline interfaces (§2.1–2.3);
        this is the software analogue of wiring them up at configuration
        time.  Each port holds at most one agent.  Re-attaching the same
        fabric is idempotent: stale hooks from a previous call are
        detached first (a foreign agent on a port still raises — one
        context at a time, §2.4).
        """
        ports = (fetch_port, execute_port, retire_port)
        if self._hooks:
            stale = set(map(id, self._hooks))
            for port in ports:
                if port.agent is not None and id(port.agent) in stale:
                    port.detach()
        hooks = (
            FabricFetchHook(self),
            FabricExecuteHook(self),
            FabricRetireHook(self),
        )
        for port, hook in zip(ports, hooks):
            port.attach(hook)
        self._hooks = hooks

    # ------------------------------------------------------------------ #
    # routing (multi-slot paths; single-slot binds slot methods directly)
    # ------------------------------------------------------------------ #

    def predict_hit(
        self, hit: SlotHit, fetch_time: int
    ) -> tuple[bool, int] | None:
        """Route an FST hit to its owning slot's Fetch Agent.

        Overlapping PCs across tenants are winner-takes-all on the fetch
        side: only the highest-priority slot's prediction can override
        the core's predictor; every loser is counted as an override
        conflict and its (eventual) prediction packet is dropped through
        the fallback-debt mechanism so its stream stays aligned.
        """
        if not self._single:
            self._last_predict_slot = hit.slot
            for other in hit.others:
                self.fetch_override_conflicts += 1
                other.slot.note_override_conflict(other.entry.tag)
        return hit.slot.predict_entry(hit.entry.tag, fetch_time)

    def _on_fetch_multi(self, pc: int) -> None:
        for slot in self.slots:
            slot.on_fetch(pc)

    def _record_override(self, correct: bool) -> None:
        # predict() -> record_override() is strictly sequential in the
        # fetch stage, so the last routed slot owns this grade.
        self._last_predict_slot.watchdog.record_override(correct)

    def _on_retire_single(
        self, dyn: "DynInst", hit: SlotHit, retire_time: int
    ) -> int:
        return self._slot0.on_retire_entry(dyn, hit.entry, retire_time)

    def _on_retire_multi(
        self, dyn: "DynInst", hit: SlotHit, retire_time: int
    ) -> int:
        # Retire-side observation is non-exclusive: every tenant whose
        # RST matches the PC observes, winner (priority order) first so
        # shared PRF read ports are granted to the primary first.
        result = hit.slot.on_retire_entry(dyn, hit.entry, retire_time)
        for other in hit.others:
            other.slot.on_retire_entry(dyn, other.entry, retire_time)
        return result

    def on_core_squash(self, squash_time: int, reason: str) -> int:
        """Pipeline squash: run the squash/squash-done protocol on every
        armed slot; the retire unit stalls until the slowest tenant's
        handshake completes."""
        if self._single:
            return self._slot0.on_core_squash(squash_time, reason)
        done = squash_time
        for slot in self.slots:
            done = max(done, slot.on_core_squash(squash_time, reason))
        return done

    # ------------------------------------------------------------------ #
    # single-tenant compatibility surface (delegates to the primary slot)
    # ------------------------------------------------------------------ #

    @property
    def component(self) -> Any:
        return self._slot0.component

    @component.setter
    def component(self, value: Any) -> None:
        self._slot0.component = value

    @property
    def enabled(self) -> bool:
        return self._slot0.enabled

    @enabled.setter
    def enabled(self, value: bool) -> None:
        self._slot0.enabled = value

    @property
    def roi_active(self) -> bool:
        if self._single:
            return self._slot0.roi_active
        return any(s.roi_active for s in self.slots)

    @roi_active.setter
    def roi_active(self, value: bool) -> None:
        self._slot0.roi_active = value

    @property
    def roi_fetch_active(self) -> bool:
        if self._single:
            return self._slot0.roi_fetch_active
        return any(s.roi_fetch_active for s in self.slots)

    @roi_fetch_active.setter
    def roi_fetch_active(self, value: bool) -> None:
        self._slot0.roi_fetch_active = value

    @property
    def timings(self) -> Any:
        return self._slot0.timings

    @property
    def rf_cycle(self) -> int:
        return self._slot0.rf_cycle

    @property
    def obs_q(self) -> Any:
        return self._slot0.obs_q

    @property
    def intq_is(self) -> Any:
        return self._slot0.intq_is

    @property
    def retq(self) -> Any:
        return self._slot0.retq

    @property
    def fetch_agent(self) -> Any:
        return self._slot0.fetch_agent

    @property
    def retire_agent(self) -> Any:
        return self._slot0.retire_agent

    @property
    def load_agent(self) -> Any:
        return self._slot0.load_agent

    @property
    def watchdog(self) -> Any:
        return self._slot0.watchdog

    @property
    def injector(self) -> Any:
        return self._slot0.injector

    @property
    def reconfig(self) -> Any:
        return self._slot0.reconfig

    @property
    def call_marker_pcs(self) -> frozenset[int]:
        return self._slot0.call_marker_pcs

    @property
    def squashes_signalled(self) -> int:
        if self._single:
            return self._slot0.squashes_signalled
        return sum(s.squashes_signalled for s in self.slots)

    @property
    def obs_dropped(self) -> int:
        if self._single:
            return self._slot0.obs_dropped
        return sum(s.obs_dropped for s in self.slots)

    @property
    def last_roi_value(self) -> Any:
        return self._slot0.last_roi_value

    @property
    def _pending_squashes(self) -> list[int]:
        return self._slot0._pending_squashes

    @property
    def probe(self) -> Any:
        return self._slot0.probe

    @probe.setter
    def probe(self, value: Any) -> None:
        for slot in self.slots:
            slot.probe = value

    @property
    def state(self) -> str:
        """Primary tenant's lifecycle state ("active", "disabled", ...)."""
        return self._slot0.state

    def predict(self, fst_tag: str, fetch_time: int) -> tuple[bool, int] | None:
        """Tag-addressed prediction on the primary slot (compat path)."""
        return self._slot0.predict_entry(fst_tag, fetch_time)

    def advance_to(self, core_time: int) -> None:
        """Run every slot's RF cycles ending at or before *core_time*."""
        if self._single:
            self._slot0.advance_to(core_time)
            return
        for slot in self.slots:
            slot.advance_to(core_time)

    def obs_peek(self, now: int) -> Any:
        return self._slot0.obs_peek(now)

    def obs_pop(self, now: int) -> Any:
        return self._slot0.obs_pop(now)

    def rearm_roi(self, now: int, roi_value: Any) -> None:
        self._slot0.rearm_roi(now, roi_value)

    def deprogram(self, now: int) -> None:
        """Context switch out: every tenant's component leaves RF (§2.4)."""
        for slot in self.slots:
            slot.deprogram(now)

    def reprogram(self, now: int) -> None:
        """Context switch back in: re-synthesize every tenant's component."""
        for slot in self.slots:
            slot.reprogram(now)

    # ------------------------------------------------------------------ #
    # finalize-time aggregates
    # ------------------------------------------------------------------ #

    @property
    def fetch_stall_cycles(self) -> int:
        return sum(s.fetch_agent.stall_cycles for s in self.slots)

    @property
    def port_delay_cycles(self) -> int:
        return sum(s.retire_agent.port_delay_cycles for s in self.slots)

    def watchdog_counters(self) -> dict[str, int]:
        """Watchdog counters summed across every slot's watchdog."""
        totals: dict[str, int] = {}
        for slot in self.slots:
            for key, value in slot.watchdog.counters().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def reconfig_totals(self) -> dict[str, int] | None:
        """Reconfiguration counters summed across slots with recovery
        policies, or None when no slot carries one."""
        controllers = [s.reconfig for s in self.slots if s.reconfig is not None]
        if not controllers:
            return None
        return {
            "reconfigs": sum(rc.reconfigs for rc in controllers),
            "reconfig_cycles": sum(rc.reconfig_cycles for rc in controllers),
            "reloads_abandoned": sum(rc.reloads_abandoned for rc in controllers),
            "drain_stall_cycles": sum(rc.drain_stall_cycles for rc in controllers),
        }

    def queue_stats(self) -> dict[str, dict[str, int]]:
        """Per-queue counter summaries for every slot's fabric queues."""
        stats: dict[str, dict[str, int]] = {}
        for slot in self.slots:
            stats.update(slot.queue_stats())
        return stats

    def tenant_stats(self) -> dict[str, dict[str, int]]:
        """Per-tenant counter snapshots, keyed ``<slot>:<tenant>``."""
        return {
            f"{slot.index}:{slot.tenant}": slot.tenant_stats()
            for slot in self.slots
        }
