"""Multi-tenant fabric: slots, partitioned snoop tables, and scheduling.

The paper loads exactly one component into the reconfigurable fabric
before the run.  This module removes that single-tenant assumption:

* :class:`TenantSpec` — one tenant's budget envelope (clkC / wW / delayD /
  queueQ / portP, each ``None`` = inherit the primary configuration) plus
  a priority class and optional snoop-table capacities.
* :class:`FabricSlot` — everything one tenant owns on the RF side of the
  pipeline interface: its component, snoop tables, the ObsQ-R / IntQ-IS /
  ObsQ-EX queues, the three agents, an RF clock, a watchdog, and (for the
  primary) the fault injector and reconfiguration controller.  A slot is
  exactly the old single-tenant ``PFMFabric`` body, so one slot behaves
  byte-identically to the pre-refactor fabric.
* :class:`PartitionedFST` / :class:`PartitionedRST` — PC-indexed dispatch
  tables built over every slot's private snoop tables.  A lookup returns
  a :class:`SlotHit` tagging the entry with its owning slot; overlapping
  PCs resolve to the highest-priority slot with the losers carried in
  ``others`` (retire-side observation is non-exclusive, fetch-side
  override is winner-takes-all).
* :class:`FabricScheduler` — contention-aware arbitration of the
  core-to-RF observation crossing: per core cycle at most ``cap`` packets
  cross, granted weighted-round-robin (top-priority tenants may fill the
  cycle, background tenants get one grant each) with priority preemption
  (a top-priority request at a full cycle evicts a background grant and
  debits the victim's next request).  Stalls and preemptions are counted
  per tenant.  With a single slot every grant is immediate — the
  scheduler is provably pass-through, which is what keeps single-tenant
  runs byte-identical to seed.

PRF read-port arbitration needs no extra machinery: slots reserve ports
through the shared :class:`~repro.core.resources.LaneScheduler` in
priority order (the partitioned RST iterates winner first), so a
background tenant's destination-value packets wait behind the primary's;
the per-slot ``port_delay_cycles`` counter attributes the contention.
Queue push slots are budgeted per tenant by construction — each slot's
queues are sized by its own queueQ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.core.params import (
    PORT_ALL,
    PORT_LS,
    PORT_LS1,
    CoreParams,
    PFMParams,
)
from repro.core.watchdog import Watchdog
from repro.pfm.component import CustomComponent, RFIo, RFTimings
from repro.pfm.fetch_agent import FetchAgent
from repro.pfm.load_agent import LoadAgent
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.queues import TimedQueue
from repro.pfm.reconfig import ReconfigController
from repro.pfm.retire_agent import RetireAgent
from repro.pfm.snoop import (
    Bitstream,
    FetchSnoopTable,
    RetireSnoopTable,
    RSTEntry,
    SnoopKind,
)
from repro.registry.components import rebuild_component

if TYPE_CHECKING:
    from repro.core.resources import LaneScheduler
    from repro.memory.hierarchy import MemoryHierarchy
    from repro.workloads.mem import MemoryImage
    from repro.workloads.trace import DynInst


#: Priority classes accepted by the ``--tenant component[:priority]``
#: CLI syntax, lowest number = highest priority.
PRIORITY_CLASSES: dict[str, int] = {"high": 0, "normal": 1, "background": 2}

_PRIORITY_NAMES = {v: k for k, v in PRIORITY_CLASSES.items()}


@dataclass(frozen=True)
class TenantSpec:
    """One co-tenant's budget envelope and priority class.

    Budget fields set to ``None`` inherit the primary ``PFMParams``
    value; the snoop-table capacities bound how many RST/FST entries the
    tenant may program (excess entries are *evicted* at configuration
    time, ROI markers always survive).  The primary tenant is implicit —
    it is the workload's own bitstream at priority 0.
    """

    component: str
    priority: int = PRIORITY_CLASSES["background"]
    name: str = ""
    clk_ratio: int | None = None  # C
    width: int | None = None  # W
    delay: int | None = None  # D
    queue_size: int | None = None  # Q
    port: str | None = None  # P
    rst_capacity: int | None = None
    fst_capacity: int | None = None

    def __post_init__(self) -> None:
        if not self.component:
            raise ValueError("tenant component name must be non-empty")
        if self.priority < 0:
            raise ValueError("tenant priority must be >= 0")
        if self.clk_ratio is not None and self.clk_ratio < 1:
            raise ValueError("tenant clk_ratio must be >= 1")
        if self.width is not None and self.width < 1:
            raise ValueError("tenant width must be >= 1")
        if self.delay is not None and self.delay < 0:
            raise ValueError("tenant delay must be >= 0")
        if self.queue_size is not None and self.queue_size < 1:
            raise ValueError("tenant queue_size must be >= 1")
        if self.port is not None and self.port not in (
            PORT_ALL, PORT_LS, PORT_LS1
        ):
            raise ValueError(f"unknown tenant port option {self.port!r}")
        if self.rst_capacity is not None and self.rst_capacity < 1:
            raise ValueError("tenant rst_capacity must be >= 1")
        if self.fst_capacity is not None and self.fst_capacity < 0:
            raise ValueError("tenant fst_capacity must be >= 0")

    def label(self) -> str:
        cls = _PRIORITY_NAMES.get(self.priority, str(self.priority))
        return f"{self.name or self.component}:{cls}"


def parse_tenant_spec(text: str) -> TenantSpec:
    """Parse one ``--tenant component[:priority]`` CLI argument."""
    component, sep, priority_text = text.partition(":")
    if not component:
        raise ValueError(f"invalid tenant spec {text!r}: empty component")
    if not sep:
        return TenantSpec(component=component)
    if priority_text in PRIORITY_CLASSES:
        priority = PRIORITY_CLASSES[priority_text]
    else:
        try:
            priority = int(priority_text)
        except ValueError:
            choices = "/".join(PRIORITY_CLASSES)
            raise ValueError(
                f"invalid tenant priority {priority_text!r} in {text!r}"
                f" (use {choices} or an integer)"
            ) from None
    return TenantSpec(component=component, priority=priority)


def slot_params(pfm: PFMParams, spec: TenantSpec) -> PFMParams:
    """The effective per-slot ``PFMParams`` for a co-tenant.

    Budget fields come from the spec (``None`` inherits the primary);
    fault plans, recovery policies, and watchdog thresholds never
    propagate to co-tenants — those are per-tenant concerns the primary's
    configuration must not impose on its neighbours.
    """
    return PFMParams(
        clk_ratio=pfm.clk_ratio if spec.clk_ratio is None else spec.clk_ratio,
        width=pfm.width if spec.width is None else spec.width,
        delay=pfm.delay if spec.delay is None else spec.delay,
        queue_size=(
            pfm.queue_size if spec.queue_size is None else spec.queue_size
        ),
        port=pfm.port if spec.port is None else spec.port,
        mlb_entries=pfm.mlb_entries,
        mlb_replay_period=pfm.mlb_replay_period,
        watchdog_rf_cycles=pfm.watchdog_rf_cycles,
        fetch_policy=pfm.fetch_policy,
    )


# ---------------------------------------------------------------------- #
# partitioned snoop tables
# ---------------------------------------------------------------------- #


class SlotHit:
    """One snoop-table hit tagged with its owning slot.

    ``others`` carries lower-priority slots whose tables also match the
    PC (overlapping ranges across tenants): the retire side observes all
    of them, the fetch side serves only the winner and counts the losers
    as override conflicts.
    """

    __slots__ = ("slot", "entry", "others")

    def __init__(
        self, slot: "FabricSlot", entry: Any, others: tuple["SlotHit", ...] = ()
    ):
        self.slot = slot
        self.entry = entry
        self.others = others

    @property
    def slot_index(self) -> int:
        return self.slot.index

    @property
    def pc(self) -> int:
        return int(self.entry.pc)

    @property
    def tag(self) -> str:
        return str(self.entry.tag)

    @property
    def kind(self) -> SnoopKind:
        return self.entry.kind  # type: ignore[no-any-return]

    @property
    def droppable(self) -> bool:
        return bool(self.entry.droppable)

    def __repr__(self) -> str:
        return (
            f"<SlotHit slot={self.slot.index} pc={self.pc:#x}"
            f" tag={self.tag!r} +{len(self.others)} other(s)>"
        )


class _PartitionedTable:
    """PC-indexed dispatch over every slot's private snoop table.

    The lookup itself is one dict probe returning a prebuilt
    :class:`SlotHit` — the hot path pays exactly what the single-table
    lookup paid before the refactor.
    """

    __slots__ = ("_by_pc", "slot_entries", "misses")

    def __init__(self, slots: list["FabricSlot"], attr: str):
        by_pc: dict[int, list[tuple["FabricSlot", Any]]] = {}
        self.slot_entries: dict[int, int] = {}
        for slot in slots:
            table = getattr(slot, attr)
            self.slot_entries[slot.index] = len(table.entries)
            for entry in table.entries:
                by_pc.setdefault(entry.pc, []).append((slot, entry))
        self._by_pc: dict[int, SlotHit] = {}
        for pc, owners in by_pc.items():
            owners.sort(key=lambda pair: (pair[0].priority, pair[0].index))
            losers = tuple(SlotHit(s, e) for s, e in owners[1:])
            winner_slot, winner_entry = owners[0]
            self._by_pc[pc] = SlotHit(winner_slot, winner_entry, losers)
        self.misses = 0

    def lookup(self, pc: int) -> SlotHit | None:
        return self._by_pc.get(pc)

    def lookup_counted(self, pc: int) -> SlotHit | None:
        """Instrumented lookup: per-slot hit and global miss counters.

        The pipeline hot path uses :meth:`lookup` (pure); diagnostics and
        the tenancy tests use this variant.
        """
        hit = self._by_pc.get(pc)
        if hit is None:
            self.misses += 1
            return None
        hit.slot.snoop_hits += 1
        for other in hit.others:
            other.slot.snoop_hits += 1
        return hit

    def __contains__(self, pc: int) -> bool:
        return pc in self._by_pc

    def __len__(self) -> int:
        return len(self._by_pc)


class PartitionedFST(_PartitionedTable):
    """Fetch Snoop Table partitioned across fabric slots."""

    def __init__(self, slots: list["FabricSlot"]):
        super().__init__(slots, "fst")


class PartitionedRST(_PartitionedTable):
    """Retire Snoop Table partitioned across fabric slots."""

    def __init__(self, slots: list["FabricSlot"]):
        super().__init__(slots, "rst")


def _evict_to_capacity(
    entries: list[Any], capacity: int | None, keep_roi: bool
) -> tuple[list[Any], int]:
    """Drop entries beyond *capacity*; ROI markers always survive.

    Returns the surviving entries (original order) and the eviction
    count.  Mirrors a real design's fixed-size CAM: a tenant whose
    bitstream programs more snoop entries than its partition holds loses
    the tail.
    """
    if capacity is None or len(entries) <= capacity:
        return list(entries), 0
    markers = []
    plain = []
    for entry in entries:
        kind = getattr(entry, "kind", None)
        if keep_roi and kind in (SnoopKind.ROI_BEGIN, SnoopKind.ROI_END):
            markers.append(entry)
        else:
            plain.append(entry)
    budget = max(0, capacity - len(markers))
    kept_plain = plain[:budget]
    kept_set = {id(e) for e in markers} | {id(e) for e in kept_plain}
    survivors = [e for e in entries if id(e) in kept_set]
    return survivors, len(entries) - len(survivors)


# ---------------------------------------------------------------------- #
# the contention-aware scheduler
# ---------------------------------------------------------------------- #


class FabricScheduler:
    """Arbitrates the core-to-RF observation crossing across slots.

    Weighted round-robin with priority preemption, per core cycle:

    * at most ``cap`` packets cross per core cycle (``cap`` = the widest
      tenant's wW — the physical crossing is provisioned for the primary);
    * a top-priority-class tenant may fill the whole cycle, every other
      tenant gets at most one grant per contested cycle (the round-robin
      weights);
    * a top-priority request arriving at a full cycle *preempts* the
      lowest-priority grant in it: the victim's packet already crossed,
      so the debt is charged to the victim's next request instead
      (counted as ``sched_preemptions`` / stall cycles per tenant).

    With one registered slot every grant returns the request time
    untouched — single-tenant runs never observe the scheduler.
    """

    _PRUNE_LIMIT = 8192
    _PRUNE_HORIZON = 4096

    def __init__(self) -> None:
        self._slots: list[FabricSlot] = []
        self._single = True
        self._cap = 1
        self._top = 0
        self._grants: dict[int, list[tuple[int, "FabricSlot"]]] = {}
        self.grants = 0
        self.preemptions = 0
        self.stall_cycles = 0

    def register(self, slot: "FabricSlot") -> None:
        self._slots.append(slot)
        self._single = len(self._slots) == 1
        self._cap = max(s.timings.width for s in self._slots)
        self._top = min(s.priority for s in self._slots)

    def grant_obs(self, slot: "FabricSlot", send_time: int) -> int:
        """Grant *slot* one observation-crossing slot at/after *send_time*."""
        if self._single:
            return send_time
        if slot.sched_debt:
            slot.sched_stall_cycles += slot.sched_debt
            self.stall_cycles += slot.sched_debt
            send_time += slot.sched_debt
            slot.sched_debt = 0
        cap = self._cap
        weight = cap if slot.priority <= self._top else 1
        cycle = send_time
        grants = self._grants
        while True:
            row = grants.get(cycle)
            if row is None:
                grants[cycle] = [(slot.priority, slot)]
                break
            mine = sum(1 for _, s in row if s is slot)
            if len(row) < cap and mine < weight:
                row.append((slot.priority, slot))
                break
            if len(row) >= cap and slot.priority <= self._top:
                worst_index = max(
                    range(len(row)), key=lambda i: row[i][0]
                )
                worst_priority, victim = row[worst_index]
                if worst_priority > slot.priority:
                    # Priority preemption: the victim's packet already
                    # crossed at this cycle, so its *next* request pays.
                    victim.sched_debt += 1
                    victim.sched_preemptions += 1
                    self.preemptions += 1
                    row[worst_index] = (slot.priority, slot)
                    break
            cycle += 1
        if cycle > send_time:
            stalled = cycle - send_time
            slot.sched_stall_cycles += stalled
            self.stall_cycles += stalled
        self.grants += 1
        if len(grants) > self._PRUNE_LIMIT:
            floor = cycle - self._PRUNE_HORIZON
            for old in [c for c in grants if c < floor]:
                del grants[old]
        return cycle

    def stats(self) -> dict[str, int]:
        return {
            "grants": self.grants,
            "preemptions": self.preemptions,
            "stall_cycles": self.stall_cycles,
        }


# ---------------------------------------------------------------------- #
# the fabric slot
# ---------------------------------------------------------------------- #


class FabricSlot:
    """One tenant's share of the fabric: component, queues, agents, clock.

    This is the pre-refactor single-tenant ``PFMFabric`` body hoisted
    into a per-tenant object; :class:`~repro.pfm.fabric.PFMFabric` is now
    the slot container that routes pipeline traffic here.  Slot 0 is the
    primary tenant (the workload's own bitstream) and the only slot that
    carries a fault injector or recovery policy.
    """

    # Drop decision latency: a droppable packet waits at most this many RF
    # cycles for ObsQ-R space before the Retire Agent discards it.
    _DROP_PATIENCE_RF = 8

    def __init__(
        self,
        index: int,
        spec: TenantSpec,
        bitstream: Bitstream,
        pfm: PFMParams,
        core_params: CoreParams,
        lanes: "LaneScheduler",
        hierarchy: "MemoryHierarchy",
        memory: "MemoryImage",
        scheduler: FabricScheduler,
    ):
        self.index = index
        self.spec = spec
        self.priority = spec.priority
        self.tenant = spec.name or spec.component
        self.bitstream = bitstream
        self.params = pfm
        self._scheduler = scheduler
        self.timings = RFTimings(pfm.clk_ratio, pfm.width, pfm.delay)

        rst_entries, self.rst_evictions = _evict_to_capacity(
            bitstream.rst_entries, spec.rst_capacity, keep_roi=True
        )
        fst_entries, self.fst_evictions = _evict_to_capacity(
            bitstream.fst_entries, spec.fst_capacity, keep_roi=False
        )
        self.rst = RetireSnoopTable(rst_entries)
        self.fst = FetchSnoopTable(fst_entries)

        metadata = dict(bitstream.metadata)
        metadata.update(pfm.component_overrides)
        self.component: CustomComponent = bitstream.component_factory(
            self.timings, memory, metadata
        )
        self.call_marker_pcs: frozenset[int] = frozenset(
            int(pc) for pc in metadata.get("call_marker_pcs", ())
        )

        self.watchdog = Watchdog(pfm.watchdog)
        self.injector: Any | None = None
        mlb_entries = pfm.mlb_entries
        if pfm.fault_plan is not None:
            # Imported here so fault-free builds never touch the fault
            # subsystem (core/pfm must not depend on repro.faults).
            from repro.faults.inject import FaultInjector

            self.injector = FaultInjector(pfm.fault_plan)
            mlb_entries = self.injector.mlb_entries(pfm.mlb_entries)

        c = pfm.clk_ratio
        suffix = "" if index == 0 else f"@{index}"
        owner = f"slot{index}:{self.tenant}"
        self.obs_q = TimedQueue(
            f"ObsQ-R{suffix}", pfm.queue_size, crossing_latency=c, owner=owner
        )
        # IntQ-IS push times are component pipe-exit times, nondecreasing
        # by construction — assert it (ObsQ-R and ObsQ-EX legitimately
        # reorder send times via PRF port contention and MLB re-flushes).
        self.intq_is = TimedQueue(
            f"IntQ-IS{suffix}", pfm.queue_size, monotonic_push=True, owner=owner
        )
        self.retq = TimedQueue(
            f"ObsQ-EX{suffix}", pfm.queue_size, crossing_latency=c, owner=owner
        )
        self.fetch_agent = FetchAgent(
            pfm.queue_size, c, pfm.width, strict=self.injector is None
        )
        self.retire_agent = RetireAgent(core_params, lanes, pfm.port)
        self.load_agent = LoadAgent(
            self.intq_is,
            self.retq,
            hierarchy,
            memory,
            lanes,
            core_params.ls_lanes(),
            mlb_entries=mlb_entries,
            replay_period=pfm.mlb_replay_period,
            watchdog=self.watchdog,
            injector=self.injector,
        )

        self._io = RFIo(self.timings, self)
        self.rf_cycle = 0
        self.roi_active = False  # retire-side (component enabled)
        self.roi_fetch_active = False  # fetch-side (stats / markers)
        self.enabled = True  # chicken switch
        self._pending_squashes: list[int] = []  # visible times
        self._watchdog_budget = pfm.watchdog_rf_cycles
        self.obs_dropped = 0
        self.squashes_signalled = 0
        self.probe: Any | None = None  # optional telemetry hub
        #: ROI-begin snoop value, recorded so a hot swap can re-arm the
        #: replacement component (ROI markers retire once per run).
        self.last_roi_value: Any | None = None
        #: Contention accounting (filled by the scheduler / fetch router).
        self.sched_stall_cycles = 0
        self.sched_preemptions = 0
        self.sched_debt = 0
        self.override_conflicts = 0
        self.snoop_hits = 0  # instrumented partitioned-table lookups
        #: Self-healing reconfiguration controller; None when the policy
        #: is inactive, and the slot behaves exactly as before.
        self.reconfig: ReconfigController | None = None
        if pfm.recovery.active():
            self.reconfig = ReconfigController(self, pfm.recovery)

    # ------------------------------------------------------------------ #
    # RF clock
    # ------------------------------------------------------------------ #

    def _now(self) -> int:
        return self.timings.core_time(self.rf_cycle)

    def _next_event_time(self) -> int | None:
        times = []
        if self._pending_squashes:
            times.append(self._pending_squashes[0])
        head = self.obs_q.head_visible_time()
        if head is not None:
            times.append(head)
        head = self.retq.head_visible_time()
        if head is not None:
            times.append(head)
        agent = self.load_agent.next_event_time()
        if agent is not None:
            times.append(agent)
        return min(times) if times else None

    def _step_rf(self) -> bool:
        """Run one RF cycle; returns False when provably quiescent."""
        if self.injector is not None and self.injector.component_frozen(
            self.rf_cycle
        ):
            # clkC is dead: time passes but the component never steps, so
            # IntQ-F never refills and ObsQ-R never drains.  Not quiescent
            # (queues may hold entries) — the watchdog must save the run.
            self.rf_cycle += 1
            return True
        if self.component.is_idle():
            nxt = self._next_event_time()
            if nxt is None:
                return False
            # Fast-forward dead RF cycles up to the next event.
            c = self.timings.clk_ratio
            target_cycle = max(self.rf_cycle, nxt // c)
            self.rf_cycle = target_cycle
        self._io.begin_cycle(self.rf_cycle)
        self.load_agent.tick(self._io.now)
        self.component.step(self._io)
        self.rf_cycle += 1
        return True

    def advance_to(self, core_time: int) -> None:
        """Run RF cycles whose window ends at or before *core_time*."""
        if not self.enabled:
            return
        c = self.timings.clk_ratio
        guard = self._watchdog_budget
        while (self.rf_cycle + 1) * c <= core_time and guard > 0:
            if not self._step_rf():
                break
            guard -= 1

    # ------------------------------------------------------------------ #
    # fetch side
    # ------------------------------------------------------------------ #

    def on_fetch(self, pc: int) -> None:
        """Fetch-stage bookkeeping: ROI entry and per-call markers."""
        if not self.roi_fetch_active:
            entry = self.rst.lookup(pc)
            if entry is not None and entry.kind is SnoopKind.ROI_BEGIN:
                self.roi_fetch_active = True
            return
        if pc in self.call_marker_pcs:
            self.fetch_agent.on_call_marker()

    def note_override_conflict(self, fst_tag: str) -> None:
        """This slot lost a same-PC fetch override to a higher priority.

        The slot's component will still produce a prediction for the
        branch; record fallback debt so the late packet is dropped and
        the stream stays aligned.
        """
        self.override_conflicts += 1
        self.fetch_agent.note_fallback(fst_tag)

    def predict_entry(
        self, fst_tag: str, fetch_time: int
    ) -> tuple[bool, int] | None:
        """Supply the custom prediction for an FST-hit branch.

        Returns ``(taken, effective_fetch_time)``, or None when the
        watchdog fired, a graceful-degradation defense tripped, or the
        component is quiescent — the caller then uses the core's own
        predictor (§2.4).  Every None path settles the prediction-stream
        alignment itself: either the matching late packet is discarded
        (fetch-timeout path) or fallback debt is recorded so the packet
        is dropped when it eventually arrives.
        """
        fa = self.fetch_agent
        rc = self.reconfig
        if rc is not None and not rc.ready(fetch_time):
            # Mid-reload (or permanently disabled): the core's predictor
            # carries the branch while the bitstream loads.
            fa.note_fallback(fst_tag)
            return None
        if not self.enabled or not self.roi_active:
            fa.note_fallback(fst_tag)
            return None
        wd = self.watchdog
        if not wd.overrides_allowed():
            # Accuracy breaker open: serve this FST hit from the core's
            # predictor and drop the component's packet via the debt.
            wd.note_suppressed()
            fa.note_fallback(fst_tag)
            return None
        self.advance_to(fetch_time)
        if self.params.fetch_policy == "proceed":
            # §2.4 non-stalling design: use the packet only if it is
            # already waiting in IntQ-F; otherwise the fetch unit proceeds
            # with the core's predictor and the late packet is dropped.
            result = fa.try_pop(fst_tag, fetch_time, only_ready=True)
            if result is None:
                fa.note_fallback(fst_tag)
            return result
        deadline = wd.fetch_deadline(fetch_time)
        guard = self._watchdog_budget
        while guard > 0:
            result = fa.try_pop(fst_tag, fetch_time, deadline=deadline)
            if result is not None:
                wd.on_fetch_delivered()
                return result
            if deadline is not None and self._now() > deadline:
                self._fetch_timeout(fst_tag)
                return None
            if not self._step_rf():
                fa.note_fallback(fst_tag)
                return None  # quiescent: prediction will never arrive
            guard -= 1
        # Watchdog fired: chicken switch (§2.4) — unless a recovery
        # policy buys the component a reload first.
        if rc is None or not rc.on_component_dead(self._now(), "rf-budget"):
            self.enabled = False
        fa.note_fallback(fst_tag)
        return None

    def _fetch_timeout(self, fst_tag: str) -> None:
        """Fetch-stall deadline expired: fall back for this branch only.

        The matching packet, if already produced (just late), is consumed
        and discarded to keep the stream aligned; otherwise fallback debt
        covers its eventual arrival.  A run of timeouts with no producer
        progress declares the component dead and disables the fabric.
        """
        fa = self.fetch_agent
        progress = (
            fa.producer_call,
            fa.producer_seq,
            self.obs_q.pops,
            self.intq_is.pops,
            self.retq.pops,
        )
        self.watchdog.on_fetch_timeout(progress)
        if not fa.drop_match(fst_tag):
            fa.note_fallback(fst_tag)
        if self.watchdog.component_dead:
            rc = self.reconfig
            if rc is None or not rc.on_component_dead(
                self._now(), "dead-component"
            ):
                self.enabled = False

    # ------------------------------------------------------------------ #
    # retire side
    # ------------------------------------------------------------------ #

    def on_retire_entry(
        self, dyn: "DynInst", entry: RSTEntry, retire_time: int
    ) -> int:
        """Handle one RST hit owned by this slot; returns the retire time."""
        if not self.enabled:
            return retire_time
        rc = self.reconfig
        if rc is not None and not rc.ready(retire_time):
            return retire_time  # mid-reload: nothing to observe with
        if entry.kind is SnoopKind.ROI_BEGIN:
            return self._begin_roi(dyn, entry, retire_time)
        if not self.roi_active:
            return retire_time
        packet, send_time = self.retire_agent.build_packet(dyn, entry, retire_time)
        self._obs_push(packet, send_time, droppable=entry.droppable)
        return retire_time

    def _begin_roi(
        self, dyn: "DynInst", entry: RSTEntry, retire_time: int
    ) -> int:
        """Beginning of ROI (Section 2.1): squash, enable, begin packet."""
        self.roi_active = True
        packet, send_time = self.retire_agent.build_packet(dyn, entry, retire_time)
        self.last_roi_value = packet.value
        self._obs_push(packet, send_time, droppable=False)
        return retire_time  # the core applies the pipeline squash

    def _obs_push(
        self, packet: ObsPacket, send_time: int, droppable: bool
    ) -> None:
        if self.injector is None:
            self._obs_push_one(packet, send_time, droppable)
            return
        packets = self.injector.on_obs(packet)
        for index, faulted in enumerate(packets):
            # An injected duplicate never earns back-pressure patience.
            self._obs_push_one(faulted, send_time, droppable or index > 0)

    def _obs_push_one(
        self, packet: ObsPacket, send_time: int, droppable: bool
    ) -> None:
        send_time = self._scheduler.grant_obs(self, send_time)
        self.advance_to(send_time)
        guard = self._DROP_PATIENCE_RF if droppable else self._watchdog_budget
        if self.injector is not None and self.injector.component_frozen(
            self.rf_cycle
        ):
            # A dead component never drains ObsQ-R; don't spin the budget.
            guard = min(guard, self._DROP_PATIENCE_RF)
        while not self.obs_q.can_push() and guard > 0:
            if not self._step_rf():
                break
            guard -= 1
        if not self.obs_q.can_push():
            self.obs_dropped += 1
            self.obs_q.note_reject(send_time)
            return
        send_time = max(send_time, self.obs_q.earliest_push(send_time))
        self.obs_q.push(send_time, packet)

    def on_core_squash(self, squash_time: int, reason: str) -> int:
        """Pipeline squash: run the squash/squash-done protocol.

        Returns the squash-done time; the core floors subsequent retire
        times to it (the Retire Agent stalls the retire unit, §2.1).
        """
        if not self.enabled or not self.roi_active:
            return squash_time
        rc = self.reconfig
        if rc is not None and squash_time < rc.available_at:
            # Mid-reload: the component isn't loaded yet, so there is
            # nothing to hand the squash protocol to (queues are empty).
            return squash_time
        self.squashes_signalled += 1
        c = self.timings.clk_ratio
        self._pending_squashes.append(squash_time + c)
        squash_done = squash_time + (self.timings.delay + 3) * c
        if self.injector is not None:
            timeouts_before = self.watchdog.squash_timeouts
            squash_done = self.injector.squash_done(
                squash_time, squash_done, c, self.watchdog
            )
            if rc is not None and self.watchdog.squash_timeouts > timeouts_before:
                # A lost squash-done leaves the handshake protocol itself
                # suspect — count it toward the policy's reload threshold.
                if rc.on_squash_timeout(squash_time):
                    squash_done = max(squash_done, rc.available_at)
        self.fetch_agent.apply_squash(squash_done)
        if self.probe is not None:
            self.probe.agent(
                squash_time, "fabric", "squash_sync", squash_done - squash_time
            )
        return squash_done

    # ------------------------------------------------------------------ #
    # component-facing callbacks (used by RFIo)
    # ------------------------------------------------------------------ #

    def obs_peek(self, now: int) -> ObsPacket | SquashPacket | None:
        if self._pending_squashes and self._pending_squashes[0] <= now:
            return SquashPacket(core_time=self._pending_squashes[0], reason="squash")
        return self.obs_q.peek_visible(now)  # type: ignore[return-value]

    def obs_pop(self, now: int) -> ObsPacket | SquashPacket | None:
        if self._pending_squashes and self._pending_squashes[0] <= now:
            t = self._pending_squashes.pop(0)
            packet = SquashPacket(core_time=t, reason="squash")
            self.component.on_squash(packet)
            return packet
        if self.obs_q.peek_visible(now) is None:
            return None
        return self.obs_q.pop(now)  # type: ignore[no-any-return]

    def return_pop(self, now: int) -> Any | None:
        if self.retq.peek_visible(now) is None:
            return None
        return self.retq.pop(now)

    def pred_can_push(self) -> bool:
        # Occupancy is evaluated at the packet's pipe-exit time by push();
        # here just bound the total in-flight stream.
        return self.fetch_agent.pending_count() < self.params.queue_size * 4

    def pred_push(self, taken: bool, ready: int, tag: str) -> bool:
        if self.injector is not None:
            delivered, taken = self.injector.on_pred(taken)
            if not delivered:
                return True  # lost in transit: the component saw success
        if not self.fetch_agent.can_push(ready):
            return False
        return self.fetch_agent.push(taken, ready, tag)

    def pred_new_call(self) -> None:
        self.fetch_agent.new_call()

    def load_can_push(self) -> bool:
        return self.intq_is.can_push()

    def load_push(self, packet: Any, ready: int) -> bool:
        if self.injector is not None:
            packets = self.injector.on_load(packet)
            if not packets:
                return True  # lost in transit: the component saw success
            if not self.intq_is.can_push():
                return False
            self.intq_is.push(ready, packets[0])
            for dup in packets[1:]:
                if self.intq_is.can_push():  # a full queue sheds the dup
                    self.intq_is.push(ready, dup)
                else:
                    self.intq_is.note_reject(ready)
            return True
        if not self.intq_is.can_push():
            return False
        self.intq_is.push(ready, packet)
        return True

    # ------------------------------------------------------------------ #
    # context isolation (Section 2.4)
    # ------------------------------------------------------------------ #

    def _flush_inflight(self, now: int) -> int:
        """Flush every queue and in-flight token; returns packets dropped.

        Shared by :meth:`deprogram` and the reconfiguration drain: nothing
        in flight — ObsQ packets, pending predictions and their fallback
        debt, MLB fills, un-flushed load returns, queued squash-done
        tokens — may leak into the next program's queues.  Per-slot by
        construction: one tenant's drain never touches a neighbour.
        """
        dropped = self.obs_q.clear(now)
        dropped += self.intq_is.clear(now)
        dropped += self.retq.clear(now)
        dropped += self.fetch_agent.reset()
        dropped += self.load_agent.reset()
        dropped += len(self._pending_squashes)
        self._pending_squashes.clear()
        return dropped

    def deprogram(self, now: int) -> None:
        """Remove the context's component from RF and the Agents.

        Section 2.4: "The system must not allow one context's custom
        component in RF to observe another context in the core.  This can
        be enforced by removing a context's custom component from RF and
        the Agents when that context is swapped out."  Every queue is
        flushed (nothing may be observed later) and the slot disables
        until :meth:`reprogram`.
        """
        self.enabled = False
        self.roi_active = False
        self.roi_fetch_active = False
        self.last_roi_value = None
        self._flush_inflight(now)

    def reprogram(self, now: int) -> None:
        """Re-synthesize the component when the context is swapped back in.

        The configuration bitstream rebuilds the component from scratch —
        no state survives a context switch (that is the isolation
        guarantee).  The ROI must be re-entered before the component
        intervenes again.
        """
        self.component = rebuild_component(
            self.bitstream,
            self.timings,
            self.load_agent._memory,
            self.params.component_overrides,
        )
        self.rf_cycle = max(self.rf_cycle, now // self.timings.clk_ratio)
        self.enabled = True

    # ------------------------------------------------------------------ #
    # self-healing reconfiguration (repro.pfm.reconfig)
    # ------------------------------------------------------------------ #

    @property
    def state(self) -> str:
        """Slot lifecycle state name ("active", "disabled", ...)."""
        if self.reconfig is not None:
            return self.reconfig.state.value
        return "active" if self.enabled else "disabled"

    def rearm_roi(self, now: int, roi_value: Any) -> None:
        """Replay the ROI-begin snoop to a freshly loaded component.

        ROI markers retire once per run (astar enters its fill loop a
        single time), so a hot-swapped component would otherwise wait
        forever for an ROI_BEGIN that never comes.  The recorded begin
        value is replayed through the normal observation path — the
        replacement arms itself exactly the way the original did.
        """
        self.roi_active = True
        self.roi_fetch_active = True
        packet = ObsPacket(
            kind=SnoopKind.ROI_BEGIN, tag="roi", pc=0, value=roi_value
        )
        self._obs_push_one(packet, now, droppable=False)

    # ------------------------------------------------------------------ #

    def queue_stats(self) -> dict[str, dict[str, int]]:
        """Per-queue counter summaries for this slot's four fabric queues.

        IntQ-F lives inside the Fetch Agent (predictions carry ready
        times through the delay pipeline rather than a TimedQueue), so
        its summary comes from the agent; ObsQ-R additionally reports the
        observation packets the Retire Agent shed on back-pressure.
        """
        suffix = "" if self.index == 0 else f"@{self.index}"
        stats = {
            q.name: q.stats() for q in (self.obs_q, self.intq_is, self.retq)
        }
        stats[f"ObsQ-R{suffix}"]["dropped"] = self.obs_dropped
        stats[f"IntQ-F{suffix}"] = self.fetch_agent.stats()
        return stats

    def tenant_stats(self) -> dict[str, int]:
        """Per-tenant counter snapshot folded into ``SimStats``."""
        fa = self.fetch_agent
        la = self.load_agent
        ra = self.retire_agent
        rc = self.reconfig
        return {
            "priority": self.priority,
            "predictions_supplied": fa.predictions_supplied,
            "prediction_packets_dropped": fa.packets_dropped,
            "fetch_stall_cycles": fa.stall_cycles,
            "obs_pushes": self.obs_q.pushes,
            "obs_dropped": self.obs_dropped,
            "packets_built": ra.packets_built,
            "port_delay_cycles": ra.port_delay_cycles,
            "loads_issued": la.loads_issued,
            "prefetches_issued": la.prefetches_issued,
            "squashes_signalled": self.squashes_signalled,
            "rf_cycles": self.rf_cycle,
            "rst_evictions": self.rst_evictions,
            "fst_evictions": self.fst_evictions,
            "override_conflicts": self.override_conflicts,
            "sched_stall_cycles": self.sched_stall_cycles,
            "sched_preemptions": self.sched_preemptions,
            "watchdog_dead_declarations": self.watchdog.dead_declarations,
            "reconfigs": 0 if rc is None else rc.reconfigs,
            "enabled": int(self.enabled),
        }
