"""The custom astar branch predictor (Section 4.1.2, Figure 7).

Three decoupled engines, "threads" in fixed hardware:

* **T0** pre-allocates index_queue tail entries and issues loads to the
  input worklist (one per RF cycle), tagging each load with its entry
  number so out-of-order returns land in the right slot.
* **T1** consumes valid index_queue entries in order at the speculative
  head, computes the eight neighbour ``index1`` values with the snooped
  ``yoffset``, records them in index1_queue, and issues the waymap and
  maparp loads (two index1 / four loads per RF cycle at W=4).
* **T2** converts returned predicate pairs into final predictions: an
  ``index1`` hitting the index1_CAM means an older in-scope visit logically
  stored ``fillnum`` (the loop-carried dependency automated pre-execution
  misses), so the raw pair is overridden with [T, -]; a final [NT, NT]
  writes ``index1`` into the CAM.

Deviation from the figure (documented in DESIGN.md §5): T2 pushes the
maparp prediction even when the waymap prediction is taken; the Fetch
Agent discards predictions for branches the core never fetches.  This
moves the paper's T2-side discard to the agent, costing strictly more
IntQ-F bandwidth while making squash realignment exact.

Commit-side windows (index_queue head H, pred_queue head H, CAM scope)
advance on retire observations: ``iter_inc`` destination packets advance
the iteration head; difficult-branch outcome packets and waymap store
packets are consumed for the commit-side bookkeeping the real design
uses to reconcile its replay queue.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.registry.components import register_component

#: Neighbour plans: (row multiplier on yoffset, column delta).
NEIGHBOUR_OFFSETS = (
    (-1, -1), (-1, 0), (-1, 1),
    (0, -1), (0, 1),
    (1, -1), (1, 0), (1, 1),
)

_T1_ID_FLAG = 1 << 20


@dataclass(slots=True)
class _IterationSlot:
    """One index_queue entry plus its pred_queue / index1_queue segment."""

    iteration: int = -1
    index_valid: bool = False
    index: int = 0
    t1_next_k: int = 0  # T1 progress through the 8 neighbours
    index1: list = field(default_factory=lambda: [0] * 8)
    way_value: list = field(default_factory=lambda: [None] * 8)
    map_value: list = field(default_factory=lambda: [None] * 8)
    t2_next_k: int = 0  # T2 progress converting pairs to finals
    t2_way_pushed: bool = False  # waymap half of the current pair emitted


@register_component("astar-custom-bp")
class AstarBranchPredictor(CustomComponent):
    """Figure 7's design as an RF-cycle-stepped model."""

    name = "astar-custom-bp"

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        meta = self.metadata
        self.scope = int(meta.get("index_queue_entries", 8))
        self.waymap_stride = int(meta.get("waymap_stride", 16))

        # snooped values
        self.fillnum: int | None = None
        self.yoffset: int | None = None
        self.worklist_base: int | None = None
        self.waymap_base: int | None = None
        self.maparp_base: int | None = None

        self.enabled = False
        self._slots = [_IterationSlot() for _ in range(self.scope)]
        self._head = 0  # H: oldest unretired iteration (commit head)
        self._spec_head = 0  # H': next iteration T1 consumes
        self._t2_head = 0  # iteration T2 converts predictions for
        self._tail = 0  # T: next iteration T0 allocates
        # index1_CAM: index1 -> iteration that inferred a store, scoped to
        # iterations in [H, tail).  64 entries at the default scope 8.
        self._cam: dict[int, int] = {}
        self._retired_branches = 0
        self._call_gen = 0  # distinguishes in-flight loads across calls
        self.predictions_made = 0
        self.store_inferences = 0

    # ------------------------------------------------------------------ #

    def _slot(self, iteration: int) -> _IterationSlot:
        return self._slots[iteration % self.scope]

    def _reset_call(self) -> None:
        for slot in self._slots:
            slot.iteration = -1
            slot.index_valid = False
            slot.t1_next_k = 0
            slot.t2_next_k = 0
            slot.t2_way_pushed = False
            slot.way_value = [None] * 8
            slot.map_value = [None] * 8
        self._head = 0
        self._spec_head = 0
        self._t2_head = 0
        self._tail = 0
        self._cam.clear()
        self._call_gen = (self._call_gen + 1) & 0xF

    # ------------------------------------------------------------------ #
    # observation handling
    # ------------------------------------------------------------------ #

    def _handle_obs(self, packet: ObsPacket, io: RFIo) -> None:
        kind = packet.kind
        if kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            self.fillnum = int(packet.value or 0)
            return
        tag = packet.tag
        if kind is SnoopKind.DEST_VALUE:
            if tag == "yoffset":
                self.yoffset = int(packet.value)
            elif tag == "worklist_base":
                self.worklist_base = int(packet.value)
                self._reset_call()
                io.begin_new_call()
            elif tag == "waymap_base":
                self.waymap_base = int(packet.value)
            elif tag == "maparp_base":
                self.maparp_base = int(packet.value)
            elif tag == "iter_inc":
                # The snooped value is the loop induction variable after
                # increment — the number of fully retired iterations.  An
                # absolute count tolerates dropped packets.
                self._advance_head_to(int(packet.value))
        elif kind is SnoopKind.BRANCH_OUTCOME:
            # pred_queue commit-head bookkeeping (replay-queue window).
            self._retired_branches += 1
        elif kind is SnoopKind.STORE_VALUE:
            # Visited-marking store committed; commit-side reconciliation.
            pass

    def _advance_head_to(self, retired: int) -> None:
        """Retired iterations: free index_queue entries and CAM scope."""
        while self._head < min(retired, self._tail):
            retiring = self._head
            slot = self._slot(retiring)
            stale = [i1 for i1, it in self._cam.items() if it == retiring]
            for i1 in stale:
                del self._cam[i1]
            slot.iteration = -1
            slot.index_valid = False
            self._head += 1

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #

    def _t0(self, io: RFIo) -> None:
        """Allocate the tail entry and load the next worklist index."""
        if self.worklist_base is None:
            return
        if self._tail - self._head >= self.scope:
            return  # index_queue full: wait for the commit head
        iteration = self._tail
        ident = (self._call_gen << 24) | (iteration % self.scope)
        if not io.push_load(ident, self.worklist_base + iteration * 8):
            return
        slot = self._slot(iteration)
        slot.iteration = iteration
        slot.index_valid = False
        slot.t1_next_k = 0
        slot.t2_next_k = 0
        slot.t2_way_pushed = False
        slot.way_value = [None] * 8
        slot.map_value = [None] * 8
        self._tail += 1

    def _t1(self, io: RFIo) -> None:
        """Compute index1's for the speculative head; issue predicate loads."""
        if self.yoffset is None or self.waymap_base is None or self.maparp_base is None:
            return
        pairs_budget = max(1, self.timings.width // 2)
        while pairs_budget > 0:
            if self._spec_head >= self._tail:
                return
            slot = self._slot(self._spec_head)
            if not slot.index_valid:
                return  # in-order consumption at H'
            k = slot.t1_next_k
            if k >= 8:
                self._spec_head += 1
                continue
            if io.load_budget < 2 or not io.can_push_load():
                return  # issue the pair atomically next cycle
            row, col = NEIGHBOUR_OFFSETS[k]
            index1 = slot.index + row * self.yoffset + col
            way_addr = self.waymap_base + index1 * self.waymap_stride
            map_addr = self.maparp_base + index1 * 8
            ident_base = (
                (self._call_gen << 24)
                | _T1_ID_FLAG
                | ((self._spec_head % self.scope) << 8)
                | (k << 1)
            )
            if not io.push_load(ident_base, way_addr):
                return
            if not io.push_load(ident_base | 1, map_addr):
                # IntQ-IS filled between the two pushes: re-issue the whole
                # pair next cycle (the duplicate waymap load is harmless —
                # the later return overwrites the same slot).
                return
            slot.index1[k] = index1
            slot.t1_next_k = k + 1
            pairs_budget -= 1

    def _t2(self, io: RFIo) -> None:
        """Convert complete predicate pairs to final predictions, in order."""
        if self.fillnum is None:
            return
        while True:
            if self._t2_head >= self._tail:
                return
            slot = self._slot(self._t2_head)
            if slot.iteration != self._t2_head:
                return
            k = slot.t2_next_k
            if k >= 8:
                self._t2_head += 1
                continue
            way_val = slot.way_value[k]
            map_val = slot.map_value[k]
            if way_val is None or map_val is None:
                return  # predicates not back yet
            index1 = slot.index1[k]

            way_taken = int(way_val) == self.fillnum  # visited -> skip
            map_taken = int(map_val) != 0  # blocked -> skip
            if not way_taken and index1 in self._cam:
                # Inferred store: an older in-scope visit marked index1.
                way_taken = True
                self.store_inferences += 1

            # The pair may straddle RF cycles at narrow widths (W=1): emit
            # the waymap half first and remember it was pushed.
            if not slot.t2_way_pushed:
                if not io.push_pred(way_taken, tag=f"waymap:{k}"):
                    return
                self.predictions_made += 1
                slot.t2_way_pushed = True
            if not io.push_pred(map_taken, tag=f"maparp:{k}"):
                return
            self.predictions_made += 1
            if not way_taken and not map_taken:
                self._cam[index1] = self._t2_head
            slot.t2_way_pushed = False
            slot.t2_next_k = k + 1

    # ------------------------------------------------------------------ #

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet, io)
        while True:
            ret = io.pop_return()
            if ret is None:
                break
            self._route_return(ret)
        if not self.enabled:
            return
        self._t0(io)
        self._t1(io)
        self._t2(io)

    def _route_return(self, ret) -> None:
        ident = ret.ident
        if (ident >> 24) & 0xF != self._call_gen:
            return  # stale in-flight load from a previous call
        if ident & _T1_ID_FLAG:
            slot_idx = (ident >> 8) & 0xFF
            k = (ident >> 1) & 0x7
            is_maparp = ident & 1
            slot = self._slots[slot_idx]
            if is_maparp:
                slot.map_value[k] = ret.value
            else:
                slot.way_value[k] = ret.value
        else:
            slot = self._slots[ident & 0xFF]
            slot.index = int(ret.value)
            slot.index_valid = True

    def on_squash(self, packet: SquashPacket) -> None:
        # T2's rollback/replay is a timing effect (the fabric floors the
        # unconsumed prediction stream); value state needs no rewind in the
        # correct-path model.
        return None

    def is_idle(self) -> bool:
        if not self.enabled or self.worklist_base is None:
            return True
        if self._tail - self._head < self.scope:
            return False  # T0 can allocate
        for it in range(self._spec_head, self._tail):
            slot = self._slot(it)
            if slot.index_valid and slot.t1_next_k < 8:
                return False
        if self._t2_head < self._tail:
            slot = self._slot(self._t2_head)
            k = slot.t2_next_k
            if (
                slot.iteration == self._t2_head
                and k < 8
                and slot.way_value[k] is not None
                and slot.map_value[k] is not None
            ):
                return False
        return True

    # ------------------------------------------------------------------ #

    def structure(self) -> dict[str, int]:
        """Structural inventory for the Table 4 cost model."""
        scope = self.scope
        return {
            "queue_bits": scope * 33 + scope * 16 * 2 + scope * 8 * 24,
            "cam_bits": scope * 8 * 24,
            "comparators": 2 * self.timings.width + scope * 8 // 4,
            "adders": 3 * self.timings.width,
            "multipliers": 0,
            "fsm_states": 12,
            "table_bits": 0,
            "width": self.timings.width,
        }
