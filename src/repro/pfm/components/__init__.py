"""The paper's custom components (Sections 4.1–4.3).

* :mod:`repro.pfm.components.astar_bp` — the custom astar branch
  predictor: three decoupled engines (T0–T2) over index_queue /
  pred_queue / index1_queue / index1_CAM with inferred-store overrides.
* :mod:`repro.pfm.components.bfs_engine` — bfs's combined
  prefetcher/predictor: four decoupled engines (T0–T3) over frontier /
  begin-address / trip-count / neighbor queues.
* :mod:`repro.pfm.components.prefetchers` — the five custom prefetch
  FSMs (libquantum, bwaves, lbm, milc, leslie) with the sampling-based
  adaptive prefetch-distance feedback mechanism.
"""

from repro.pfm.components.astar_bp import AstarBranchPredictor
from repro.pfm.components.bfs_engine import BfsEngine
from repro.pfm.components.prefetchers import (
    AdaptiveDistanceController,
    BwavesPrefetcher,
    LbmPrefetcher,
    LesliePrefetcher,
    LibquantumPrefetcher,
    MilcPrefetcher,
    StridePrefetchEngine,
)

__all__ = [
    "AstarBranchPredictor",
    "BfsEngine",
    "AdaptiveDistanceController",
    "StridePrefetchEngine",
    "LibquantumPrefetcher",
    "BwavesPrefetcher",
    "LbmPrefetcher",
    "MilcPrefetcher",
    "LesliePrefetcher",
]
