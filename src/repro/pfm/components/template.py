"""Templated run-ahead predictor generation (Section 7, future work).

The paper observes that "the astar and bfs designs presented in this paper
follow a similar strategy.  If this could be templated, it suggests a path
toward automation."  This module implements that template for the
worklist-sweep family: a declarative :class:`TemplateSpec` describes

* where the input worklist lives and which retired counter advances its
  commit head,
* how each worklist item derives its checked indices (astar: the eight
  neighbour ``index1`` expressions over the snooped ``yoffset``),
* an ordered chain of guarded table checks per derived index (astar: the
  waymap test then the maparp test), each naming the snooped table base,
  element stride, predicate, and FST tag pattern,
* whether entering the fully-not-taken path implies a store that must be
  inferred for later in-window visits to the same derived index (the
  index1_CAM behaviour).

``TemplatedRunaheadPredictor`` synthesizes the T0/T1/T2 machinery from the
spec.  ``astar_template_spec()`` reproduces the hand-written astar design;
``tests/test_component_template.py`` shows it matches the hand-written
component's accuracy and speedup — the "path toward automation" made
concrete.  (bfs additionally needs a variable-fanout stage fed by the
offsets array; that extension is future work here too.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.registry.components import register_component

_T1_ID_FLAG = 1 << 20


@dataclass(frozen=True)
class GuardedCheck:
    """One guarded table check in the per-index chain.

    The branch is predicted *taken* (skip the rest of the chain) when
    ``predicate(loaded_value, env)`` is true; ``env`` holds the snooped
    scalar values by tag.
    """

    name: str
    base_tag: str  # snooped table base address (DEST_VALUE tag)
    stride: int  # element stride in bytes
    predicate: Callable[[float, dict], bool]
    fst_tag: str  # format string with {k}: e.g. "waymap:{k}"


@dataclass(frozen=True)
class TemplateSpec:
    """Declarative description of a worklist-sweep run-ahead predictor."""

    worklist_base_tag: str  # per-call input worklist base (resets the call)
    head_counter_tag: str  # absolute retired-iteration counter
    scalar_tags: tuple[str, ...]  # other snooped scalars (e.g. yoffset)
    roi_value_name: str  # env name for the ROI-begin packet's value
    derive: Callable[[int, dict], list[int]]  # item -> derived indices
    checks: tuple[GuardedCheck, ...]
    infer_stores: bool = True  # CAM over fully-not-taken derived indices
    scope: int = 8  # worklist run-ahead entries

    @property
    def fanout(self) -> int:
        # Derived-index count must be fixed for the template (v1).
        return len(self.derive(0, _probe_env(self)))


def _probe_env(spec: TemplateSpec) -> dict:
    env = {tag: 0 for tag in spec.scalar_tags}
    env[spec.roi_value_name] = 0
    return env


@dataclass(slots=True)
class _Slot:
    iteration: int = -1
    item_valid: bool = False
    item: int = 0
    t1_next: int = 0  # next derived index to issue loads for
    indices: list = field(default_factory=list)
    values: list = field(default_factory=list)  # per index: list per check
    t2_next: int = 0
    t2_check_pushed: int = 0  # checks of the current index already pushed


@register_component("templated-runahead")
class TemplatedRunaheadPredictor(CustomComponent):
    """Generic T0/T1/T2 run-ahead predictor generated from a spec.

    Pass the :class:`TemplateSpec` as ``metadata["spec"]``.
    """

    name = "templated-runahead"

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.spec: TemplateSpec = self.metadata["spec"]
        self.scope = int(self.metadata.get("scope", self.spec.scope))
        self.env: dict = {}
        self.bases: dict[str, int] = {}
        self.worklist_base: int | None = None
        self.enabled = False

        fanout = self.spec.fanout
        nchecks = len(self.spec.checks)
        self._fanout = fanout
        self._nchecks = nchecks
        self._slots = [self._fresh_slot() for _ in range(self.scope)]
        self._head = 0
        self._spec_head = 0
        self._t2_head = 0
        self._tail = 0
        self._cam: dict[int, int] = {}
        self._call_gen = 0
        self.predictions_made = 0
        self.store_inferences = 0

    def _fresh_slot(self) -> _Slot:
        return _Slot(
            indices=[0] * self._fanout,
            values=[[None] * self._nchecks for _ in range(self._fanout)],
        )

    def _slot(self, iteration: int) -> _Slot:
        return self._slots[iteration % self.scope]

    def _reset_call(self) -> None:
        for i in range(self.scope):
            self._slots[i] = self._fresh_slot()
        self._head = self._spec_head = self._t2_head = self._tail = 0
        self._cam.clear()
        self._call_gen = (self._call_gen + 1) & 0xF

    def _ready(self) -> bool:
        return (
            self.enabled
            and self.worklist_base is not None
            and all(tag in self.env for tag in self.spec.scalar_tags)
            and all(check.base_tag in self.bases for check in self.spec.checks)
        )

    # ------------------------------------------------------------------ #

    def _handle_obs(self, packet: ObsPacket, io: RFIo) -> None:
        spec = self.spec
        if packet.kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            self.env[spec.roi_value_name] = int(packet.value or 0)
            return
        if packet.kind is not SnoopKind.DEST_VALUE:
            return
        tag = packet.tag
        if tag == spec.worklist_base_tag:
            self.worklist_base = int(packet.value)
            self._reset_call()
            io.begin_new_call()
        elif tag == spec.head_counter_tag:
            self._advance_head_to(int(packet.value))
        elif tag in spec.scalar_tags:
            self.env[tag] = int(packet.value)
        else:
            for check in spec.checks:
                if tag == check.base_tag:
                    self.bases[tag] = int(packet.value)

    def _advance_head_to(self, retired: int) -> None:
        while self._head < min(retired, self._tail):
            retiring = self._head
            stale = [key for key, it in self._cam.items() if it == retiring]
            for key in stale:
                del self._cam[key]
            slot = self._slot(retiring)
            slot.iteration = -1
            slot.item_valid = False
            self._head += 1

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #

    def _t0(self, io: RFIo) -> None:
        if self.worklist_base is None or self._tail - self._head >= self.scope:
            return
        iteration = self._tail
        ident = (self._call_gen << 24) | (iteration % self.scope)
        if not io.push_load(ident, self.worklist_base + iteration * 8):
            return
        self._slots[iteration % self.scope] = self._fresh_slot()
        slot = self._slot(iteration)
        slot.iteration = iteration
        self._tail += 1

    def _t1(self, io: RFIo) -> None:
        if not self._ready():
            return
        budget = max(1, self.timings.width // max(1, self._nchecks))
        while budget > 0:
            if self._spec_head >= self._tail:
                return
            slot = self._slot(self._spec_head)
            if not slot.item_valid:
                return
            position = slot.t1_next
            if position >= self._fanout:
                self._spec_head += 1
                continue
            if slot.t1_next == 0 and position == 0:
                slot.indices = self.spec.derive(slot.item, self.env)
            if io.load_budget < self._nchecks or not io.can_push_load():
                return
            index = slot.indices[position]
            base_ident = (
                (self._call_gen << 24)
                | _T1_ID_FLAG
                | ((self._spec_head % self.scope) << 8)
                | (position << 2)
            )
            for check_idx, check in enumerate(self.spec.checks):
                address = self.bases[check.base_tag] + index * check.stride
                if not io.push_load(base_ident | check_idx, address):
                    return  # reissue the group next cycle
            slot.t1_next = position + 1
            budget -= 1

    def _t2(self, io: RFIo) -> None:
        if not self._ready():
            return
        while True:
            if self._t2_head >= self._tail:
                return
            slot = self._slot(self._t2_head)
            if slot.iteration != self._t2_head:
                return
            position = slot.t2_next
            if position >= self._fanout:
                self._t2_head += 1
                continue
            values = slot.values[position]
            if any(v is None for v in values):
                return
            index = slot.indices[position]

            taken_chain = [
                check.predicate(value, self.env)
                for check, value in zip(self.spec.checks, values)
            ]
            if self.spec.infer_stores and not taken_chain[0] and index in self._cam:
                taken_chain[0] = True
                self.store_inferences += 1

            while slot.t2_check_pushed < self._nchecks:
                check_idx = slot.t2_check_pushed
                check = self.spec.checks[check_idx]
                if not io.push_pred(
                    taken_chain[check_idx], tag=check.fst_tag.format(k=position)
                ):
                    return
                self.predictions_made += 1
                slot.t2_check_pushed += 1

            if self.spec.infer_stores and not any(taken_chain):
                self._cam[index] = self._t2_head
            slot.t2_check_pushed = 0
            slot.t2_next = position + 1

    # ------------------------------------------------------------------ #

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet, io)
        while True:
            ret = io.pop_return()
            if ret is None:
                break
            self._route_return(ret)
        if not self.enabled:
            return
        self._t0(io)
        self._t1(io)
        self._t2(io)

    def _route_return(self, ret) -> None:
        ident = ret.ident
        if (ident >> 24) & 0xF != self._call_gen:
            return
        if ident & _T1_ID_FLAG:
            slot = self._slots[(ident >> 8) & 0xFF]
            position = (ident >> 2) & 0x3F
            check_idx = ident & 0x3
            if position < self._fanout and check_idx < self._nchecks:
                slot.values[position][check_idx] = ret.value
        else:
            slot = self._slots[ident & 0xFF]
            slot.item = int(ret.value)
            slot.item_valid = True

    def on_squash(self, packet: SquashPacket) -> None:
        return None

    def is_idle(self) -> bool:
        if not self.enabled or self.worklist_base is None:
            return True
        if self._tail - self._head < self.scope:
            return False
        for it in range(self._spec_head, self._tail):
            slot = self._slot(it)
            if slot.item_valid and slot.t1_next < self._fanout:
                return False
        if self._t2_head < self._tail:
            slot = self._slot(self._t2_head)
            if (
                slot.iteration == self._t2_head
                and slot.t2_next < self._fanout
                and all(v is not None for v in slot.values[slot.t2_next])
            ):
                return False
        return True

    def structure(self) -> dict[str, int]:
        scope = self.scope
        fanout = self._fanout
        nchecks = self._nchecks
        return {
            "queue_bits": scope * 33 + scope * fanout * (nchecks + 24),
            "cam_bits": scope * fanout * 24 if self.spec.infer_stores else 0,
            "comparators": nchecks * self.timings.width + scope,
            "adders": (1 + nchecks) * self.timings.width,
            "multipliers": 0,
            "fsm_states": 8 + 2 * nchecks,
            "table_bits": 0,
            "width": self.timings.width,
        }


# ---------------------------------------------------------------------- #
# the astar instantiation
# ---------------------------------------------------------------------- #

def astar_template_spec(scope: int = 8) -> TemplateSpec:
    """The hand-written astar predictor, expressed declaratively."""

    def derive(index: int, env: dict) -> list[int]:
        yoffset = env["yoffset"]
        return [
            index - yoffset - 1, index - yoffset, index - yoffset + 1,
            index - 1, index + 1,
            index + yoffset - 1, index + yoffset, index + yoffset + 1,
        ]

    return TemplateSpec(
        worklist_base_tag="worklist_base",
        head_counter_tag="iter_inc",
        scalar_tags=("yoffset",),
        roi_value_name="fillnum",
        derive=derive,
        checks=(
            GuardedCheck(
                name="waymap",
                base_tag="waymap_base",
                stride=16,
                predicate=lambda value, env: int(value) == env["fillnum"],
                fst_tag="waymap:{k}",
            ),
            GuardedCheck(
                name="maparp",
                base_tag="maparp_base",
                stride=8,
                predicate=lambda value, env: int(value) != 0,
                fst_tag="maparp:{k}",
            ),
        ),
        infer_stores=True,
        scope=scope,
    )


def make_astar_template_factory(scope: int = 8):
    """Component factory for ``build_astar_workload(component_factory=...)``."""

    def factory(timings, memory, metadata=None):
        merged = dict(metadata or {})
        merged["spec"] = astar_template_spec(
            scope=int(merged.get("index_queue_entries", scope))
        )
        merged.setdefault("scope", merged["spec"].scope)
        return TemplatedRunaheadPredictor(timings, memory, merged)

    return factory
