"""Custom prefetch engines (Section 4.3, Figures 15-16).

Each engine snoops, from the retire stream, the base addresses of its
delinquent loads and the progress of the loop (retired instances of the
delinquent load are the "iteration count" signal), and runs a small FSM
in the Prefetch Generation Engine that reproduces the loads' address
patterns exactly, some distance ahead of the core.

A sampling-based performance-feedback mechanism
(:class:`AdaptiveDistanceController`) measures retired delinquent-load
instances per epoch — a proxy for IPC — and hill-climbs the prefetch
distance: keep increasing while proxy-IPC improves, settle when it stops
improving, back off when it degrades.

Engine variants, matching the paper's five use-cases:

* :class:`LibquantumPrefetcher` / :class:`MilcPrefetcher` — simple
  strided FSMs (milc is a cluster of libquantum-like streams).
* :class:`LbmPrefetcher` — a cluster of delinquent loads whose prefetches
  must be pushed *as a set* (or skipped as a set when IntQ-IS is full) so
  latency reduction stays even across the cluster (MLP awareness).
* :class:`BwavesPrefetcher` / :class:`LesliePrefetcher` — nested-loop
  FSMs that walk the loop-nest counters and compute each load's address
  from a per-load linear combination of the induction variables.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket
from repro.pfm.snoop import SnoopKind
from repro.registry.components import register_component


class AdaptiveDistanceController:
    """Prefetch-distance control from retire-stream sampling (Figure 16).

    The mechanism measures retired delinquent-load instances per epoch — a
    proxy for IPC — exactly as the paper describes.  Two policies share
    that signal:

    * ``rate`` (default): set the distance to cover a target lead time,
      ``distance = lead_cycles * instances_per_cycle`` (EWMA-smoothed).
      This is the fixed point the paper's incremental search converges to;
      computing it directly converges within one epoch, which matters for
      simulation windows ~10^5 instructions (the paper had 10^8).
    * ``hillclimb``: the paper's literal policy — keep incrementing the
      distance while proxy-IPC improves, settle when it stops, back off
      when it degrades.  Exposed for the ablation benchmarks.
    """

    def __init__(
        self,
        initial_distance: int = 8,
        step: int = 4,
        min_distance: int = 4,
        max_distance: int = 96,
        epoch_cycles: int = 2048,
        lead_cycles: int = 600,
        mode: str = "rate",
    ):
        if mode not in ("rate", "hillclimb"):
            raise ValueError(f"unknown distance-control mode {mode!r}")
        self.mode = mode
        self.distance = initial_distance
        self._step = step
        self._min = min_distance
        self._max = max_distance
        self._epoch = epoch_cycles  # core cycles: epochs are C-invariant
        self._lead = lead_cycles
        self._last_boundary = 0
        self._last_retired = 0
        self._rate_ewma: float | None = None
        self._prev_throughput: float | None = None
        self._settled = False
        self._settled_epochs = 0
        self._bad_epochs = 0
        self.adjustments = 0

    def observe(self, now: int, retired_total: int) -> None:
        """Sample at core time *now* with the cumulative retired count."""
        if now - self._last_boundary < self._epoch:
            return
        throughput = (retired_total - self._last_retired) / max(
            1, now - self._last_boundary
        )
        self._last_boundary = now
        self._last_retired = retired_total
        if self.mode == "rate":
            self._observe_rate(throughput)
        else:
            self._observe_hillclimb(throughput)

    def _observe_rate(self, throughput: float) -> None:
        if throughput <= 0:
            return
        if self._rate_ewma is None:
            self._rate_ewma = throughput
        else:
            self._rate_ewma = 0.5 * self._rate_ewma + 0.5 * throughput
        target = int(self._lead * self._rate_ewma) + self._min
        new = max(self._min, min(self._max, target))
        if new != self.distance:
            self.distance = new
            self.adjustments += 1

    def _observe_hillclimb(self, throughput: float) -> None:
        previous = self._prev_throughput
        self._prev_throughput = throughput
        if previous is None:
            return
        if self._settled:
            self._settled_epochs += 1
            if throughput < previous * 0.7 or self._settled_epochs >= 24:
                self._settled = False  # phase change / periodic re-explore
                self._settled_epochs = 0
            return
        if throughput >= previous * 0.97:
            self._bad_epochs = 0
            if self.distance < self._max:
                self._bump(+1)
            else:
                self._settled = True
        else:
            self._bad_epochs += 1
            if self._bad_epochs >= 2:
                self._bump(-1)
                self._settled = True
                self._bad_epochs = 0

    def _bump(self, direction: int) -> None:
        new = self.distance + direction * self._step
        self.distance = max(self._min, min(self._max, new))
        self.adjustments += 1


@dataclass
class StrideSite:
    """One delinquent strided load: address = base + index * stride.

    ``counter`` names the loop-counter snoop driving this site's progress
    (defaults to the site's own tag).
    """

    tag: str
    stride: int
    counter: str = ""
    offset: int = 0  # added to the snooped base (cluster sub-loads)
    base: int | None = None
    retired: int = 0
    issued: int = 0

    def __post_init__(self):
        if not self.counter:
            self.counter = self.tag


class StridePrefetchEngine(CustomComponent):
    """Prefetch FSM over one or more strided sites (Figure 16)."""

    name = "stride-prefetcher"
    set_mode = False  # lbm overrides: push cluster prefetches as a set

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.sites = self._make_sites()
        self._by_tag = {site.tag: site for site in self.sites}
        self.controller = AdaptiveDistanceController(
            initial_distance=int(self.metadata.get("initial_distance", 8)),
        )
        self.enabled = False
        self.prefetches = 0
        self.sets_skipped = 0
        self._staged_set: list[StrideSite] = []
        self._ident = 0

    def _make_sites(self) -> list[StrideSite]:
        sites = []
        for entry in self.metadata.get("sites", ()):
            sites.append(
                StrideSite(
                    tag=entry["tag"],
                    stride=entry["stride"],
                    counter=entry.get("counter", ""),
                    offset=entry.get("offset", 0),
                )
            )
        return sites

    # ------------------------------------------------------------------ #

    def _handle_obs(self, packet: ObsPacket) -> None:
        if packet.kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            return
        if packet.kind is not SnoopKind.DEST_VALUE:
            return
        tag = packet.tag
        if tag.startswith("base:"):
            name = tag.removeprefix("base:")
            for site in self.sites:
                if site.tag == name or site.tag.startswith(name + "+"):
                    site.base = int(packet.value) + site.offset
                    site.retired = 0
                    site.issued = 0
        elif tag.startswith("iter:"):
            # Absolute loop-counter snoop (Figure 16's "iteration count"):
            # robust to dropped packets.
            name = tag.removeprefix("iter:")
            count = int(packet.value)
            for site in self.sites:
                if site.counter == name:
                    site.retired = max(site.retired, count)
        elif tag.startswith("ret:"):
            site = self._by_tag.get(tag.removeprefix("ret:"))
            if site is not None:
                site.retired += 1

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet)
        while io.pop_return() is not None:
            pass  # prefetch-only engines receive no load values
        if not self.enabled:
            return
        self.controller.observe(io.now, self._total_retired())
        if self.set_mode:
            self._generate_sets(io)
        else:
            self._generate(io)

    def _total_retired(self) -> int:
        return sum(site.retired for site in self.sites)

    def _next_ident(self) -> int:
        self._ident = (self._ident + 1) % (1 << 20)
        return self._ident

    def _generate(self, io: RFIo) -> None:
        distance = self.controller.distance
        for site in self.sites:
            if site.base is None:
                continue
            while site.issued < site.retired + distance:
                if not io.can_push_load():
                    return
                addr = site.base + site.issued * site.stride
                if not io.push_load(self._next_ident(), addr, is_prefetch=True):
                    return
                site.issued += 1
                self.prefetches += 1

    def _generate_sets(self, io: RFIo) -> None:
        """lbm policy: all cluster prefetches for an iteration, or none.

        Pushing a partial set would shift the bottleneck among the cluster
        loads instead of removing it (Section 4.3).  Admission is decided
        against IntQ-IS capacity when the set forms; an admitted set then
        drains at the component's width over the following cycles.
        """
        while True:
            # Drain the previously admitted set first.
            while self._staged_set:
                site = self._staged_set[0]
                if not io.can_push_load():
                    return
                addr = site.base + site.issued * site.stride
                if not io.push_load(self._next_ident(), addr, is_prefetch=True):
                    return
                site.issued += 1
                self.prefetches += 1
                self._staged_set.pop(0)

            distance = self.controller.distance
            ready = [s for s in self.sites if s.base is not None]
            if not ready:
                return
            target = min(s.retired for s in ready) + distance
            pending = [s for s in ready if s.issued < target]
            if not pending:
                return
            space = self._queue_space(io)
            if space < len(pending):
                # IntQ-IS cannot take the whole set: skip the iteration
                # entirely rather than prefetch it partially.
                for site in pending:
                    site.issued += 1
                self.sets_skipped += 1
                return
            self._staged_set = list(pending)

    @staticmethod
    def _queue_space(io: RFIo) -> int:
        queue = io._fabric.intq_is
        return queue.capacity - queue.occupancy

    def is_idle(self) -> bool:
        if not self.enabled:
            return True
        if self._staged_set:
            return False
        distance = self.controller.distance
        return not any(
            site.base is not None and site.issued < site.retired + distance
            for site in self.sites
        )

    def structure(self) -> dict[str, int]:
        return {
            "queue_bits": 0,
            "cam_bits": 0,
            "comparators": len(self.sites),
            "adders": 1 + len(self.sites),
            "multipliers": 0,
            "fsm_states": 4 + 2 * len(self.sites),
            "table_bits": 64 * len(self.sites),
            "width": self.timings.width,
        }


@register_component("libquantum-prefetcher")
class LibquantumPrefetcher(StridePrefetchEngine):
    """Two simple strided sites: quantum_toffoli and quantum_sigma_x."""

    name = "libquantum-prefetcher"


@register_component("milc-prefetcher")
class MilcPrefetcher(StridePrefetchEngine):
    """A cluster of libquantum-like strided streams."""

    name = "milc-prefetcher"

    def structure(self) -> dict[str, int]:
        base = super().structure()
        base["multipliers"] = 4  # per-direction address scaling uses DSPs
        return base


@register_component("lbm-prefetcher")
class LbmPrefetcher(StridePrefetchEngine):
    """MLP-aware cluster prefetcher: sets are pushed or skipped atomically."""

    name = "lbm-prefetcher"
    set_mode = True


@dataclass
class LoopNestSite:
    """A load nested in a loop nest.

    ``coeffs`` gives the per-level multipliers (in bytes) applied to the
    nest counters; the address of the load at counter state ``c`` is
    ``base + sum(coeffs[l] * c[l])``.
    """

    tag: str
    coeffs: tuple[int, ...]
    base: int | None = None
    retired: int = 0
    issued: int = 0


@dataclass
class _NestState:
    extents: tuple[int, ...]
    counters: list[int] = field(default_factory=list)
    flat: int = 0

    def __post_init__(self):
        if not self.counters:
            self.counters = [0] * len(self.extents)

    def advance(self) -> None:
        self.flat += 1
        for level in range(len(self.extents) - 1, -1, -1):
            self.counters[level] += 1
            if self.counters[level] < self.extents[level]:
                return
            self.counters[level] = 0


class NestedLoopPrefetchEngine(CustomComponent):
    """Complex FSM that surgically follows loop-nest address patterns.

    The nest extents and per-load coefficient vectors come from the
    configuration bitstream (static analysis of the ROI); the bases are
    snooped at run time; retired-instance packets track core progress.
    """

    name = "nested-loop-prefetcher"

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.groups: list[tuple[_NestState, list[LoopNestSite]]] = []
        for group in self.metadata.get("groups", ()):
            nest = _NestState(extents=tuple(group["extents"]))
            sites = [
                LoopNestSite(tag=s["tag"], coeffs=tuple(s["coeffs"]))
                for s in group["sites"]
            ]
            self.groups.append((nest, sites))
        self._by_tag = {
            site.tag: site for _, sites in self.groups for site in sites
        }
        # One feedback controller per ROI/nest group: the paper customizes
        # the feedback mechanism per application, and leslie's ROIs have
        # very different iteration times.
        self.controllers = [
            AdaptiveDistanceController(
                initial_distance=int(self.metadata.get("initial_distance", 8)),
                max_distance=192,
            )
            for _ in self.groups
        ]
        self.enabled = False
        self.prefetches = 0
        self._ident = 0

    def _handle_obs(self, packet: ObsPacket) -> None:
        if packet.kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            return
        if packet.kind is not SnoopKind.DEST_VALUE:
            return
        tag = packet.tag
        if tag.startswith("base:"):
            site = self._by_tag.get(tag.removeprefix("base:"))
            if site is not None:
                site.base = int(packet.value)
        elif tag.startswith("iter:"):
            # Absolute flattened-iteration counter for a whole nest group.
            name = tag.removeprefix("iter:")
            count = int(packet.value)
            for nest, sites in self.groups:
                for site in sites:
                    if site.tag.startswith(name) or name == "all":
                        site.retired = max(site.retired, count)
        elif tag.startswith("ret:"):
            site = self._by_tag.get(tag.removeprefix("ret:"))
            if site is not None:
                site.retired += 1

    def _next_ident(self) -> int:
        self._ident = (self._ident + 1) % (1 << 20)
        return self._ident

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet)
        while io.pop_return() is not None:
            pass
        if not self.enabled:
            return
        for controller, (nest, sites) in zip(self.controllers, self.groups):
            if any(site.base is None for site in sites):
                continue
            group_retired = sum(site.retired for site in sites)
            controller.observe(io.now, group_retired)
            distance = controller.distance
            progress = min(site.retired for site in sites)
            while nest.flat < progress + distance:
                if io.load_budget < len(sites) or not io.can_push_load():
                    return
                for site in sites:
                    addr = site.base + sum(
                        c * v for c, v in zip(site.coeffs, nest.counters)
                    )
                    if not io.push_load(self._next_ident(), addr, is_prefetch=True):
                        return
                    site.issued += 1
                    self.prefetches += 1
                nest.advance()

    def is_idle(self) -> bool:
        if not self.enabled:
            return True
        for controller, (nest, sites) in zip(self.controllers, self.groups):
            if any(site.base is None for site in sites):
                continue
            progress = min(site.retired for site in sites)
            if nest.flat < progress + controller.distance:
                return False
        return True

    def structure(self) -> dict[str, int]:
        nsites = len(self._by_tag)
        nlevels = sum(len(nest.extents) for nest, _ in self.groups)
        return {
            "queue_bits": 0,
            "cam_bits": 0,
            "comparators": nsites + nlevels,
            "adders": nsites + nlevels,
            "multipliers": 0,
            "fsm_states": 8 + 4 * nlevels,
            "table_bits": 64 * nsites,
            "width": self.timings.width,
        }


@register_component("bwaves-prefetcher")
class BwavesPrefetcher(NestedLoopPrefetchEngine):
    """Five nested loops; each load keys on four of the five counters."""

    name = "bwaves-prefetcher"


@register_component("leslie-prefetcher")
class LesliePrefetcher(NestedLoopPrefetchEngine):
    """Multiple ROIs, each a two-to-four-deep loop nest."""

    name = "leslie-prefetcher"
