"""astar-alt: the table-mimicking alternative microarchitecture (Section 5).

The paper's Section 5 measures a second astar design — from the authors'
earlier "Post-Silicon Microarchitecture" work (Kumar et al., IEEE CAL
2020), inspired by the EXACT branch predictor [Al-Otoom et al., CF 2010]:

    "it maintains two large predictor tables that mimic the program's
    underlying waymap and maparp arrays.  It also populates its own
    output worklist as its input worklist is processed, and they swap
    roles at each call to wayobj::makebound2().  Thus, astar-alt mimics
    the program's data structures instead of issuing loads to them."

Because it never loads, its prediction latency is just its pipeline — no
memory round trips, no MLP concerns — but its accuracy is bounded by the
fidelity of its tables:

* the **way table** is actively updated by the component's own [NT, NT]
  final predictions (the EXACT-style "active update": predicting an
  append implies the program will store ``fillnum``) and corrected by
  retired waymap loads/stores;
* the **maparp table** starts cold and learns the obstacle map from
  retired maparp load values — first encounters of blocked cells
  mispredict;
* both tables are finite and direct-mapped: inputs larger than the table
  alias and mispredict — exactly why the paper's Section 5 footnote calls
  the load-based strategy "more robust to different input dataset sizes".

The internal worklists are reconciled from the retired worklist-append
stores (authoritative), with the first call seeded from retired worklist
loads.
"""

from __future__ import annotations

from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.registry.components import register_component

#: Each table mimics one program array: 32 KB / 16 bits per entry.
DEFAULT_TABLE_ENTRIES = 16 * 1024


class _MimicTable:
    """Direct-mapped tagged table keyed by index1."""

    __slots__ = ("entries", "_mask", "_tags", "_values")

    def __init__(self, entries: int):
        if entries & (entries - 1):
            raise ValueError("table entries must be a power of two")
        self.entries = entries
        self._mask = entries - 1
        self._tags = [-1] * entries
        self._values = [0] * entries

    def read(self, index1: int) -> int | None:
        """Value for *index1*, or None on a tag miss (aliased/cold)."""
        slot = index1 & self._mask
        if self._tags[slot] != index1:
            return None
        return self._values[slot]

    def write(self, index1: int, value: int) -> None:
        slot = index1 & self._mask
        self._tags[slot] = index1
        self._values[slot] = value


@register_component("astar-alt")
class AstarAltPredictor(CustomComponent):
    """Table-mimicking astar predictor (no Load Agent traffic)."""

    name = "astar-alt"

    NEIGHBOUR_OFFSETS = (
        (-1, -1), (-1, 0), (-1, 1),
        (0, -1), (0, 1),
        (1, -1), (1, 0), (1, 1),
    )

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        entries = int(self.metadata.get("table_entries", DEFAULT_TABLE_ENTRIES))
        self.way_table = _MimicTable(entries)
        self.map_table = _MimicTable(entries)
        self.waymap_stride = int(self.metadata.get("waymap_stride", 16))

        self.fillnum: int | None = None
        self.yoffset: int | None = None
        self.waymap_base: int | None = None
        self.maparp_base: int | None = None
        self.enabled = False

        self._in_list: list[int] = []
        self._out_list: list[int] = []
        self._in_pos = 0
        self._k = 0  # neighbour template position within the current index
        self._way_pushed = False
        self._first_call = True
        self.predictions_made = 0
        self.active_updates = 0
        self.corrections = 0

    # ------------------------------------------------------------------ #
    # observation handling (learning inputs)
    # ------------------------------------------------------------------ #

    def _handle_obs(self, packet: ObsPacket, io: RFIo) -> None:
        kind = packet.kind
        tag = packet.tag
        if kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            self.fillnum = int(packet.value or 0)
            return
        if kind is SnoopKind.DEST_VALUE:
            if tag == "yoffset":
                self.yoffset = int(packet.value)
            elif tag == "waymap_base":
                self.waymap_base = int(packet.value)
            elif tag == "maparp_base":
                self.maparp_base = int(packet.value)
            elif tag == "worklist_base":
                self._swap_worklists(io)
            elif tag == "worklist_load" and self._first_call:
                # Seed the first call's input worklist from the retire
                # stream; later calls are self-populated.
                self._in_list.append(int(packet.value))
            elif tag == "maparp_load" and self.maparp_base is not None:
                index1 = (int(packet.address) - self.maparp_base) // 8
                self.map_table.write(index1, int(packet.value))
                self.corrections += 1
            elif tag == "waymap_load" and self.waymap_base is not None:
                index1 = (
                    int(packet.address) - self.waymap_base
                ) // self.waymap_stride
                self.way_table.write(index1, int(packet.value))
                self.corrections += 1
        elif kind is SnoopKind.STORE_VALUE:
            if tag == "worklist_append":
                # Authoritative reconciliation of the output worklist.
                self._out_list.append(int(packet.value))
            elif tag.startswith("waymap_store") and self.waymap_base is not None:
                index1 = (
                    int(packet.address) - self.waymap_base
                ) // self.waymap_stride
                self.way_table.write(index1, int(packet.value))

    def _swap_worklists(self, io: RFIo) -> None:
        if self._first_call and not self._out_list:
            # First invocation: keep seeding from worklist loads.
            self._in_pos = 0
            self._k = 0
        else:
            self._first_call = False
            self._in_list = self._out_list
            self._out_list = []
            self._in_pos = 0
            self._k = 0
        self._way_pushed = False
        io.begin_new_call()

    # ------------------------------------------------------------------ #
    # prediction engine
    # ------------------------------------------------------------------ #

    def _predict_pairs(self, io: RFIo) -> None:
        if self.fillnum is None or self.yoffset is None:
            return
        while io.can_push_pred():
            if self._in_pos >= len(self._in_list):
                return  # ran out of worklist entries (awaiting appends)
            index = self._in_list[self._in_pos]
            row, col = self.NEIGHBOUR_OFFSETS[self._k]
            index1 = index + row * self.yoffset + col

            way_value = self.way_table.read(index1)
            way_taken = way_value == self.fillnum  # miss -> not visited
            map_value = self.map_table.read(index1)
            map_taken = bool(map_value)  # miss -> assume free (learns)

            if not self._way_pushed:
                if not io.push_pred(way_taken, tag=f"waymap:{self._k}"):
                    return
                self.predictions_made += 1
                self._way_pushed = True
            if not io.push_pred(map_taken, tag=f"maparp:{self._k}"):
                return
            self.predictions_made += 1
            self._way_pushed = False

            if not way_taken and not map_taken:
                # EXACT-style active update: predicting the append implies
                # the program will store fillnum at index1.
                self.way_table.write(index1, self.fillnum)
                self.active_updates += 1
            self._k += 1
            if self._k == 8:
                self._k = 0
                self._in_pos += 1

    # ------------------------------------------------------------------ #

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet, io)
        while io.pop_return() is not None:
            pass  # astar-alt issues no loads
        if not self.enabled:
            return
        self._predict_pairs(io)

    def on_squash(self, packet: SquashPacket) -> None:
        return None

    def is_idle(self) -> bool:
        if not self.enabled or self.fillnum is None or self.yoffset is None:
            return True
        return self._in_pos >= len(self._in_list)

    def structure(self) -> dict[str, int]:
        """Inventory matching Table 4's astar-alt row: BRAM tables."""
        table_bits = 2 * self.way_table.entries * 16
        worklist_bits = 2 * 512 * 20
        return {
            "queue_bits": 420,  # pointers/control
            "cam_bits": 0,
            "comparators": 6,
            "adders": 6,
            "multipliers": 0,
            "fsm_states": 10,
            "table_bits": table_bits + worklist_bits,
            "width": self.timings.width,
        }
