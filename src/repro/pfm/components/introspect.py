"""Observe-only introspection tenant: a synthesized telemetry probe.

IPU-style flexible hardware introspection (PAPERS.md): instead of a
host-side observer, the probe is a PFM component co-resident in the
fabric, fed by a mirror of the primary tenant's Retire Snoop Table.  It
never pushes predictions or loads — by construction it cannot change the
architectural stream (the equivalence oracle proves it), and it costs
only what fabric sharing costs: observation-crossing bandwidth and PRF
read-port contention, both arbitrated by the fabric scheduler and
attributed per tenant.

Two tenant layouts are registered here:

* ``introspect`` — mirrors every primary RST entry (droppable, so the
  probe sheds under back-pressure rather than stalling anyone).
* ``branch-mirror`` — mirrors only the branch-outcome entries (plus the
  ROI markers needed to arm), a minimal branch-stream audit tap.
"""

from __future__ import annotations

from repro.pfm.component import CustomComponent, RFIo, RFTimings
from repro.pfm.packets import SquashPacket
from repro.pfm.snoop import Bitstream, RSTEntry, SnoopKind
from repro.registry.components import register_component
from repro.registry.tenants import register_tenant_layout

_ROI_KINDS = (SnoopKind.ROI_BEGIN, SnoopKind.ROI_END)


@register_component("introspect")
class IntrospectionUnit(CustomComponent):
    """Counts and classifies the observation stream; intervenes never.

    Metadata knobs: ``track_values`` (bool, default False) additionally
    records the last value seen per tag — a "watchpoint register" in the
    hardware analogy, sized into :meth:`structure` for the cost model.
    """

    name = "introspect"

    def __init__(self, timings: RFTimings, memory, metadata: dict | None = None):
        super().__init__(timings, memory, metadata)
        self.observed = 0
        self.squashes_seen = 0
        self.counts_by_kind: dict[str, int] = {}
        self.counts_by_tag: dict[str, int] = {}
        self.track_values = bool(self.metadata.get("track_values", False))
        self.last_value_by_tag: dict[str, object] = {}
        self.armed = False

    def step(self, io: RFIo) -> None:
        while True:
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, SquashPacket):
                self.squashes_seen += 1
                continue
            self.observed += 1
            kind = packet.kind.name
            self.counts_by_kind[kind] = self.counts_by_kind.get(kind, 0) + 1
            self.counts_by_tag[packet.tag] = (
                self.counts_by_tag.get(packet.tag, 0) + 1
            )
            if self.track_values:
                self.last_value_by_tag[packet.tag] = packet.value
            if packet.kind is SnoopKind.ROI_BEGIN:
                self.armed = True

    def is_idle(self) -> bool:
        return True  # pure observer: no internal work ever in flight

    def structure(self) -> dict[str, int]:
        counters = 64 * (len(self.counts_by_kind) + len(self.counts_by_tag))
        watch = 64 * len(self.last_value_by_tag) if self.track_values else 0
        return {"counter_bits": counters, "watch_bits": watch}


def _mirror_entry(entry: RSTEntry, prefix: str) -> RSTEntry:
    droppable = entry.kind not in _ROI_KINDS
    return RSTEntry(
        pc=entry.pc,
        kind=entry.kind,
        tag=f"{prefix}:{entry.tag}",
        droppable=droppable,
    )


def _probe_bitstream(name: str, entries: list[RSTEntry]) -> Bitstream:
    return Bitstream(
        name=name,
        rst_entries=entries,
        fst_entries=[],  # observe-only: no fetch-side overrides, ever
        component_factory=IntrospectionUnit,
        metadata={},
    )


@register_tenant_layout("introspect")
def introspect_layout(primary: Bitstream, spec) -> Bitstream:
    """Mirror every primary RST entry into an observe-only probe slot."""
    entries = [_mirror_entry(e, "probe") for e in primary.rst_entries]
    return _probe_bitstream(f"introspect({primary.name})", entries)


@register_tenant_layout("branch-mirror")
def branch_mirror_layout(primary: Bitstream, spec) -> Bitstream:
    """Mirror only branch outcomes (plus ROI markers, needed to arm)."""
    entries = [
        _mirror_entry(e, "bmirror")
        for e in primary.rst_entries
        if e.kind is SnoopKind.BRANCH_OUTCOME or e.kind in _ROI_KINDS
    ]
    return _probe_bitstream(f"branch-mirror({primary.name})", entries)
