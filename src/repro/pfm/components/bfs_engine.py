"""bfs's custom component (Section 4.2, Figure 11).

Four decoupled engines over the GAP top-down-step data structures:

* **T0** maintains a sliding window of frontier nodes by loading from the
  program's global frontier array (one load per RF cycle).
* **T1** pops a node id U and loads ``offsets[U]`` and ``offsets[U+1]``;
  the difference is U's neighbour count (trip count), and ``offsets[U]``
  locates U's first neighbour.
* **T2** streams U's neighbours from the neighbour array and, because the
  trip count is now known, streams predictions for the neighbour-loop
  branch — per-node trip counts are exactly what the core's loop
  predictor cannot learn.
* **T3** loads each neighbour V's visited-ness property and computes the
  *visited* branch predicate, inferring in-window visited stores by
  searching prior instances of V among not-yet-retired neighbours
  (the bfs analogue of astar's index1_CAM).

T3's visited predictions interleave with T2's loop predictions in IntQ-F
in the core's actual branch order: per inner iteration
``[loop_exit(NT), visited(V_j)]``, closed by ``loop_exit(T)``.

The engines' loads double as highly accurate prefetches: the speedup
comes from attacking cache misses and branch mispredictions *together*
(Figure 12's point that perfect branch prediction alone yields only 11%).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.pfm.component import CustomComponent, RFIo
from repro.pfm.packets import ObsPacket, SquashPacket
from repro.pfm.snoop import SnoopKind
from repro.registry.components import register_component


@dataclass(slots=True)
class _NodeRecord:
    """All run-ahead state for one frontier node U."""

    position: int  # index in the frontier (iteration number)
    u: int | None = None  # node id (valid once T0's load returns)
    offsets_issued: bool = False
    begin: int | None = None  # offsets[u]
    end: int | None = None  # offsets[u+1]
    neighbors_issued: int = 0  # T2 progress
    neighbor_values: dict = field(default_factory=dict)  # j -> v
    prop_issued: set = field(default_factory=set)
    prop_values: dict = field(default_factory=dict)  # j -> property value
    emit_j: int = 0
    emit_phase: str = "loop"  # "loop" -> "visited" alternation
    done: bool = False

    @property
    def trip(self) -> int | None:
        if self.begin is None or self.end is None:
            return None
        return max(0, self.end - self.begin)


@register_component("bfs-engine")
class BfsEngine(CustomComponent):
    """Figure 11's T0-T3 design."""

    name = "bfs-custom"

    def __init__(self, timings, memory, metadata=None):
        super().__init__(timings, memory, metadata)
        self.scope = int(self.metadata.get("queue_entries", 64))

        self.frontier_base: int | None = None
        self.offsets_base: int | None = None
        self.neighbors_base: int | None = None
        self.prop_base: int | None = None
        self.enabled = False

        self._records: dict[int, _NodeRecord] = {}
        self._head = 0  # commit head: oldest un-retired frontier position
        self._tail = 0  # T0 allocation tail
        self._t1_head = 0
        self._emit_head = 0
        # Inferred visited stores within the speculative window:
        # node id V -> frontier position of the record that inferred it.
        self._inferred: dict[int, int] = {}
        self._pending_loads: dict[int, tuple] = {}
        self._t3_queue: deque[tuple[int, int, int]] = deque()
        self._next_ident = 1
        self.predictions_made = 0
        self.store_inferences = 0

    # ------------------------------------------------------------------ #

    def _reset_call(self) -> None:
        self._records.clear()
        self._inferred.clear()
        self._pending_loads.clear()
        self._t3_queue.clear()
        self._head = 0
        self._tail = 0
        self._t1_head = 0
        self._emit_head = 0

    def _new_ident(self, info: tuple) -> int:
        ident = self._next_ident
        self._next_ident = self._next_ident % (1 << 24) + 1
        self._pending_loads[ident] = info
        return ident

    # ------------------------------------------------------------------ #
    # observations
    # ------------------------------------------------------------------ #

    def _handle_obs(self, packet: ObsPacket, io: RFIo) -> None:
        kind = packet.kind
        if kind is SnoopKind.ROI_BEGIN:
            self.enabled = True
            return
        tag = packet.tag
        if kind is SnoopKind.DEST_VALUE:
            if tag == "frontier_base":
                self.frontier_base = int(packet.value)
                self._reset_call()
                io.begin_new_call()
            elif tag == "offsets_base":
                self.offsets_base = int(packet.value)
            elif tag == "neighbors_base":
                self.neighbors_base = int(packet.value)
            elif tag == "prop_base":
                self.prop_base = int(packet.value)
            elif tag == "iter_inc":
                # Absolute outer-loop counter: retired frontier positions.
                self._advance_head_to(int(packet.value))
            # inner_inc packets advance fine-grained commit state; the
            # per-node head advance subsumes them in this model.
        elif kind is SnoopKind.BRANCH_OUTCOME:
            pass  # replay-queue commit bookkeeping
        elif kind is SnoopKind.STORE_VALUE:
            pass  # committed visited store; reconciliation only

    def _advance_head_to(self, retired: int) -> None:
        """Frontier nodes retired: slide the window."""
        while self._head < min(retired, self._tail):
            retiring = self._head
            record = self._records.pop(retiring, None)
            if record is not None:
                stale = [
                    v for v, pos in self._inferred.items() if pos == retiring
                ]
                for v in stale:
                    del self._inferred[v]
            self._head += 1
        if self._t1_head < self._head:
            self._t1_head = self._head
        if self._emit_head < self._head:
            self._emit_head = self._head

    # ------------------------------------------------------------------ #
    # engines
    # ------------------------------------------------------------------ #

    def _t0(self, io: RFIo) -> None:
        if self.frontier_base is None:
            return
        if self._tail - self._head >= self.scope:
            return
        position = self._tail
        ident = self._new_ident(("frontier", position))
        if not io.push_load(ident, self.frontier_base + position * 8):
            del self._pending_loads[ident]
            return
        self._records[position] = _NodeRecord(position=position)
        self._tail += 1

    def _t1(self, io: RFIo) -> None:
        if self.offsets_base is None:
            return
        budget = max(1, self.timings.width // 2)
        while budget > 0 and self._t1_head < self._tail:
            record = self._records.get(self._t1_head)
            if record is None or record.u is None:
                return  # in-order consumption of the frontier queue
            if record.offsets_issued:
                self._t1_head += 1
                continue
            if io.load_budget < 2 or not io.can_push_load():
                return
            base = self.offsets_base + record.u * 8
            id_a = self._new_ident(("begin", record.position))
            if not io.push_load(id_a, base):
                del self._pending_loads[id_a]
                return
            id_b = self._new_ident(("end", record.position))
            if not io.push_load(id_b, base + 8):
                del self._pending_loads[id_b]
                return
            record.offsets_issued = True
            self._t1_head += 1
            budget -= 1

    def _t2(self, io: RFIo) -> None:
        """Stream neighbour loads for nodes with known trip counts."""
        if self.neighbors_base is None:
            return
        for position in range(self._head, self._tail):
            record = self._records.get(position)
            if record is None:
                continue
            trip = record.trip
            if trip is None:
                # In-order begin-address/trip-count queue consumption: do
                # not run ahead past an unresolved node.
                return
            while record.neighbors_issued < trip:
                if not io.can_push_load():
                    return
                j = record.neighbors_issued
                ident = self._new_ident(("neighbor", position, j))
                addr = self.neighbors_base + (record.begin + j) * 8
                if not io.push_load(ident, addr):
                    del self._pending_loads[ident]
                    return
                record.neighbors_issued = j + 1

    def _t3(self, io: RFIo) -> None:
        """Issue visited-ness property loads for returned neighbours."""
        if self.prop_base is None:
            return
        while self._t3_queue:
            position, j, v = self._t3_queue[0]
            if position < self._head or position not in self._records:
                self._t3_queue.popleft()  # node already retired/reset
                continue
            if not io.can_push_load():
                return
            ident = self._new_ident(("prop", position, j))
            if not io.push_load(ident, self.prop_base + v * 8):
                del self._pending_loads[ident]
                return
            self._records[position].prop_issued.add(j)
            self._t3_queue.popleft()

    def _emit(self, io: RFIo) -> None:
        """Sequence final predictions in the core's branch order."""
        while True:
            if self._emit_head >= self._tail:
                return
            record = self._records.get(self._emit_head)
            if record is None:
                self._emit_head += 1
                continue
            trip = record.trip
            if trip is None:
                return
            if record.done:
                self._emit_head += 1
                continue
            if record.emit_phase == "loop":
                if not io.can_push_pred():
                    return
                if record.emit_j < trip:
                    if not io.push_pred(False, tag="loop_exit"):
                        return
                    self.predictions_made += 1
                    record.emit_phase = "visited"
                else:
                    if not io.push_pred(True, tag="loop_exit"):
                        return
                    self.predictions_made += 1
                    record.done = True
                    self._emit_head += 1
            else:  # visited phase for neighbour emit_j
                j = record.emit_j
                v = record.neighbor_values.get(j)
                if v is None:
                    return  # neighbour value not back yet
                prop = record.prop_values.get(j)
                if prop is None:
                    return  # property value not back yet
                visited_taken = prop >= 0
                if not visited_taken and v in self._inferred:
                    # An older in-window instance of V logically stored its
                    # visited mark: override the prediction as taken.
                    visited_taken = True
                    self.store_inferences += 1
                if not io.can_push_pred():
                    return
                if not io.push_pred(visited_taken, tag="visited"):
                    return
                self.predictions_made += 1
                if not visited_taken:
                    self._inferred[v] = record.position
                record.emit_j = j + 1
                record.emit_phase = "loop"

    # ------------------------------------------------------------------ #

    def step(self, io: RFIo) -> None:
        for _ in range(self.timings.width):
            packet = io.pop_obs()
            if packet is None:
                break
            if isinstance(packet, ObsPacket):
                self._handle_obs(packet, io)
        while True:
            ret = io.pop_return()
            if ret is None:
                break
            self._route_return(ret, io)
        if not self.enabled:
            return
        self._t0(io)
        self._t1(io)
        self._t2(io)
        self._t3(io)
        self._emit(io)

    def _route_return(self, ret, io: RFIo) -> None:
        info = self._pending_loads.pop(ret.ident, None)
        if info is None:
            return  # stale (previous call)
        kind = info[0]
        if kind == "frontier":
            record = self._records.get(info[1])
            if record is not None:
                record.u = int(ret.value)
        elif kind in ("begin", "end"):
            record = self._records.get(info[1])
            if record is not None:
                if kind == "begin":
                    record.begin = int(ret.value)
                else:
                    record.end = int(ret.value)
        elif kind == "neighbor":
            _, position, j = info
            record = self._records.get(position)
            if record is not None:
                v = int(ret.value)
                record.neighbor_values[j] = v
                self._t3_queue.append((position, j, v))
        elif kind == "prop":
            _, position, j = info
            record = self._records.get(position)
            if record is not None:
                record.prop_values[j] = ret.value

    def on_squash(self, packet: SquashPacket) -> None:
        return None

    def is_idle(self) -> bool:
        if not self.enabled or self.frontier_base is None:
            return True
        if self._tail - self._head < self.scope:
            return False  # T0 can allocate
        if self._t3_queue:
            return False
        for position in range(self._head, self._tail):
            record = self._records.get(position)
            if record is None:
                continue
            trip = record.trip
            if record.u is not None and not record.offsets_issued:
                return False
            if trip is not None and record.neighbors_issued < trip:
                return False
            # prop loads that failed to push retry lazily via _emit's
            # demand; check for emittable work:
            if not record.done and trip is not None:
                if record.emit_phase == "loop":
                    return False
                j = record.emit_j
                if (
                    record.neighbor_values.get(j) is not None
                    and record.prop_values.get(j) is not None
                ):
                    return False
        return True

    def structure(self) -> dict[str, int]:
        scope = self.scope
        return {
            "queue_bits": scope * (32 + 32 + 16 + 32),
            "cam_bits": scope * 32,
            "comparators": self.timings.width + 4,
            "adders": 2 * self.timings.width,
            "multipliers": 0,
            "fsm_states": 16,
            "table_bits": 0,
            "width": self.timings.width,
        }
