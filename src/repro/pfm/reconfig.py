"""Runtime partial reconfiguration: quiesce → drain → hot-swap → resume.

The paper programs the fabric once, before the run; the only remedy the
Section 2.4 chicken switch (and the PR 2 watchdog refinements) offer a
sick component is permanent disablement.  This module is the constructive
twin of that path — the detect-and-amputate machinery becomes a
detect-drain-reload-recover loop, following the runtime-reconfigurable
direction of "Supporting Dynamic Control-Flow Execution for Runtime
Reconfigurable Processors" (PAPERS.md) with the reload latency costed
like LUTstructions' self-loading instructions.

State machine (one :class:`ReconfigController` per fabric, built only
when ``PFMParams.recovery`` is active)::

    ACTIVE ──trigger──▶ QUIESCING ──▶ DRAINED ──▶ LOADING ──▶ ACTIVE
       │                                                        │
       └────────────── reload budget exhausted ──▶ DISABLED ◀───┘

* **Quiesce/drain** — new FST/RST traffic is refused (the ``ready`` gate
  in the fabric's predict/observe paths), a squash packet is sent through
  the normal ObsQ-R bypass so the component rolls back, and the fabric's
  RF clock runs until every queue, the MLB, and in-flight snoop state
  settle — or ``drain_timeout_cycles`` expires (a frozen clkC never
  drains on its own).  Whatever is still in flight is then force-flushed:
  nothing may leak into the replacement's queues.
* **Load** — the replacement component is re-synthesized from the
  registry bitstream (:func:`repro.registry.components.rebuild_component`)
  under the ``reconfig_latency_cycles`` cost model, with exponential
  backoff for failure-triggered reloads.
* **Resume** — the watchdog's per-instance liveness state is cleared
  (:meth:`~repro.core.watchdog.Watchdog.on_reload`), and the recorded
  ROI-begin observation is replayed so a mid-ROI swap re-arms the
  component (ROI markers retire once per run).

Triggers come from the watchdog via :class:`~repro.core.watchdog.
RecoveryPolicy`: dead-component declarations, RF-budget exhaustion,
override-accuracy breaker trips (level-triggered flag polled here — the
core layer never imports this module), repeated squash timeouts, and one
optional *scheduled* same-bitstream swap used by the chaos campaign's
architectural-invisibility experiment.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING

from repro.registry.components import rebuild_component

if TYPE_CHECKING:
    from repro.core.watchdog import RecoveryPolicy
    from repro.pfm.tenancy import FabricSlot


class FabricState(enum.Enum):
    """Lifecycle of the fabric's loaded component."""

    ACTIVE = "active"
    QUIESCING = "quiescing"
    DRAINED = "drained"
    LOADING = "loading"
    DISABLED = "disabled"  # terminal: reload budget exhausted


class ReconfigController:
    """Drives quiesce/drain/hot-swap/resume for one fabric slot.

    Per-slot by construction: the controller only ever touches its own
    slot's queues, agents, and component, so one tenant's recovery never
    drains a healthy neighbour.

    Reloads run synchronously inside the triggering call (the one-pass
    timestamp-domain engine has no event loop to defer to); the *cost* is
    modeled by ``available_at`` — the core time before which the fabric
    refuses FST/RST traffic, so the core runs on its own predictor while
    the bitstream "loads".
    """

    def __init__(self, fabric: "FabricSlot", policy: "RecoveryPolicy"):
        self.fabric = fabric
        self.policy = policy
        self.state = FabricState.ACTIVE
        #: Completed reloads (scheduled swaps included).
        self.reconfigs = 0
        #: Total core cycles spent between trigger and resume.
        self.reconfig_cycles = 0
        #: Reload requests refused because the budget was exhausted.
        self.reloads_abandoned = 0
        #: Core cycles spent waiting for in-flight state to settle.
        self.drain_stall_cycles = 0
        #: Failure-triggered reloads performed (the backoff exponent);
        #: scheduled swaps do not count against the budget.
        self.reload_attempts = 0
        #: Packets force-flushed across all drains.
        self.flushed_packets = 0
        #: ``(core_time, from_state, to_state, reason)`` per transition.
        self.transitions: list[tuple[int, str, str, str]] = []
        #: Core time the current/last reload completes; the fabric's
        #: predict/observe gates refuse traffic before it.
        self.available_at = 0
        self._squash_timeouts_seen = 0
        self._scheduled_done = False

    # ------------------------------------------------------------------ #
    # state machine
    # ------------------------------------------------------------------ #

    def _goto(self, now: int, state: FabricState, reason: str) -> None:
        if state is self.state:
            return
        self.transitions.append((now, self.state.value, state.value, reason))
        self.state = state
        probe = self.fabric.probe
        if probe is not None:
            probe.agent(now, "fabric", f"reconfig_{state.value}", self.reconfigs)

    def ready(self, now: int) -> bool:
        """May the fabric accept FST/RST traffic at core time *now*?

        Also the trigger poll point: the engine is lazy (no global clock
        tick), so scheduled swaps and breaker trips are detected here, on
        the next snoop-table hit at or after their trigger time.
        """
        if self.state is FabricState.DISABLED:
            return False
        if now < self.available_at:
            return False
        pol = self.policy
        if (
            pol.scheduled_reload_at is not None
            and not self._scheduled_done
            and now >= pol.scheduled_reload_at
        ):
            self._scheduled_done = True
            self.reload(now, "scheduled-swap", scheduled=True)
            return self.state is not FabricState.DISABLED and now >= self.available_at
        wd = self.fabric.watchdog
        if wd.breaker_trip_pending:
            wd.breaker_trip_pending = False
            if pol.reload_on_breaker:
                self.reload(now, "breaker-trip")
                return (
                    self.state is not FabricState.DISABLED
                    and now >= self.available_at
                )
        return True

    # ------------------------------------------------------------------ #
    # triggers
    # ------------------------------------------------------------------ #

    def on_component_dead(self, now: int, reason: str) -> bool:
        """Watchdog declared the component dead; True if a reload saved it."""
        return self.reload(now, reason)

    def on_squash_timeout(self, now: int) -> bool:
        """One watchdog squash timeout; reload at the policy threshold."""
        threshold = self.policy.squash_timeout_reload_after
        if threshold is None:
            return False
        self._squash_timeouts_seen += 1
        if self._squash_timeouts_seen < threshold:
            return False
        self._squash_timeouts_seen = 0
        return self.reload(now, "squash-timeout")

    # ------------------------------------------------------------------ #
    # the reload itself
    # ------------------------------------------------------------------ #

    def reload(self, now: int, reason: str, scheduled: bool = False) -> bool:
        """Quiesce, drain, hot-load a fresh component, resume.

        Returns True when the fabric comes back ACTIVE (at core time
        ``available_at``); False when the budget is exhausted and the
        fabric fell back to today's permanent disable.
        """
        if self.state is FabricState.DISABLED:
            return False
        pol = self.policy
        if not scheduled and self.reload_attempts >= pol.max_reloads:
            self.reloads_abandoned += 1
            self._goto(now, FabricState.DISABLED, f"abandoned:{reason}")
            self.fabric.enabled = False
            return False

        fabric = self.fabric
        was_roi = fabric.roi_active
        roi_value = fabric.last_roi_value
        self._goto(now, FabricState.QUIESCING, reason)
        drained_at = self._drain(now)
        self._goto(drained_at, FabricState.DRAINED, reason)

        latency = pol.reconfig_latency_cycles
        if not scheduled:
            latency *= pol.reload_backoff_factor**self.reload_attempts
            self.reload_attempts += 1
        self._goto(drained_at, FabricState.LOADING, reason)
        resume = drained_at + latency
        c = fabric.timings.clk_ratio
        injector = fabric.injector
        if injector is not None:
            # The reload may itself be faulty: stalled, or dead on arrival.
            resume += injector.on_reconfig(resume // c)
        fabric.component = rebuild_component(
            fabric.bitstream,
            fabric.timings,
            fabric.load_agent._memory,
            fabric.params.component_overrides,
        )
        fabric.rf_cycle = max(fabric.rf_cycle, -(-resume // c))
        fabric.watchdog.on_reload()
        fabric.enabled = True
        self.available_at = resume
        self.reconfigs += 1
        self.reconfig_cycles += resume - now
        self._goto(resume, FabricState.ACTIVE, reason)
        if was_roi:
            fabric.rearm_roi(resume, roi_value)
        return True

    def _drain(self, start: int) -> int:
        """Settle in-flight state via the squash protocol; returns end time.

        The component sees a normal squash packet (through the ObsQ-R
        bypass) and rolls back; the RF clock then runs until the queues,
        the MLB, and the component are provably quiescent or the drain
        patience expires.  The squash/squash-done handshake cost
        ``(D + 3) * C`` is the drain's floor — quiescing is never cheaper
        than a pipeline squash.
        """
        fabric = self.fabric
        t = fabric.timings
        c = t.clk_ratio
        fabric._pending_squashes.append(start + c)
        fabric.rf_cycle = max(fabric.rf_cycle, start // c)
        limit = (start + self.policy.drain_timeout_cycles) // c
        while fabric.rf_cycle < limit and not self._settled():
            if not fabric._step_rf():
                break
        handshake_done = start + (t.delay + 3) * c
        end = max(t.core_time(fabric.rf_cycle), handshake_done)
        self.drain_stall_cycles += end - start
        self.flushed_packets += fabric._flush_inflight(end)
        return end

    def _settled(self) -> bool:
        """All queues empty, no in-flight loads, component idle."""
        fabric = self.fabric
        return (
            not fabric._pending_squashes
            and fabric.obs_q.occupancy == 0
            and fabric.intq_is.occupancy == 0
            and fabric.retq.occupancy == 0
            and fabric.load_agent.in_flight == 0
            and fabric.component.is_idle()
        )
