"""Custom component base class and RF-domain timing model.

A custom component synthesized into the reconfigurable fabric runs at a
clock C times slower than the core and has superscalar width W: per RF
cycle it can pop up to W observation packets and load returns, and push up
to W predictions and W(+1) loads (Section 3; the paper's W=4 astar design
pushes up to five loads per FPGA cycle — one from T0 plus four from T1 —
so the load budget is W + 1).  Outputs pass through a delay-D pipeline:
work produced in RF cycle r becomes visible to the agents at core time
``(r + 1 + D) * C``.

Concrete components (astar, bfs, the prefetch FSMs) subclass
:class:`CustomComponent` and implement :meth:`step`, which is called once
per RF cycle with an :class:`RFIo` facade enforcing the width budgets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pfm.packets import LoadPacket, LoadReturn, ObsPacket, SquashPacket


@dataclass(frozen=True)
class RFTimings:
    """RF clock-domain parameters for one component instance."""

    clk_ratio: int  # C
    width: int  # W
    delay: int  # D

    def output_ready(self, rf_cycle: int) -> int:
        """Core time when output produced in *rf_cycle* exits the pipeline."""
        return (rf_cycle + 1 + self.delay) * self.clk_ratio

    def core_time(self, rf_cycle: int) -> int:
        return rf_cycle * self.clk_ratio


class RFIo:
    """Per-RF-cycle I/O facade handed to :meth:`CustomComponent.step`.

    Budgets reset each cycle; the fabric wires the push/pop callbacks.
    """

    def __init__(self, timings: RFTimings, fabric):
        self._timings = timings
        self._fabric = fabric
        self.rf_cycle = 0
        self.now = 0
        self._obs_budget = 0
        self._ret_budget = 0
        self._pred_budget = 0
        self._load_budget = 0

    def begin_cycle(self, rf_cycle: int) -> None:
        w = self._timings.width
        self.rf_cycle = rf_cycle
        self.now = self._timings.core_time(rf_cycle)
        self._obs_budget = w
        self._ret_budget = w + 1
        self._pred_budget = w
        self._load_budget = w + 1

    # ------------------------------------------------------------------ #
    # inputs
    # ------------------------------------------------------------------ #

    def pop_obs(self) -> ObsPacket | SquashPacket | None:
        """Pop the next visible observation packet (budget W per cycle)."""
        if self._obs_budget <= 0:
            return None
        packet = self._fabric.obs_pop(self.now)
        if packet is not None:
            self._obs_budget -= 1
        return packet

    def peek_obs(self) -> ObsPacket | SquashPacket | None:
        return self._fabric.obs_peek(self.now)

    def pop_return(self) -> LoadReturn | None:
        """Pop the next load value from ObsQ-EX (budget W+1 per cycle)."""
        if self._ret_budget <= 0:
            return None
        ret = self._fabric.return_pop(self.now)
        if ret is not None:
            self._ret_budget -= 1
        return ret

    # ------------------------------------------------------------------ #
    # outputs
    # ------------------------------------------------------------------ #

    @property
    def pred_budget(self) -> int:
        return self._pred_budget

    @property
    def load_budget(self) -> int:
        return self._load_budget

    def can_push_pred(self) -> bool:
        return self._pred_budget > 0 and self._fabric.pred_can_push()

    def push_pred(self, taken: bool, tag: str = "") -> bool:
        """Push one branch prediction toward IntQ-F (through the delay pipe)."""
        if not self.can_push_pred():
            return False
        ready = self._timings.output_ready(self.rf_cycle)
        if not self._fabric.pred_push(taken, ready, tag):
            return False
        self._pred_budget -= 1
        return True

    def can_push_load(self) -> bool:
        return self._load_budget > 0 and self._fabric.load_can_push()

    def push_load(self, ident: int, address: int, is_prefetch: bool = False) -> bool:
        """Push one load/prefetch packet toward IntQ-IS."""
        if not self.can_push_load():
            return False
        ready = self._timings.output_ready(self.rf_cycle)
        packet = LoadPacket(ident=ident, address=address, is_prefetch=is_prefetch)
        if not self._fabric.load_push(packet, ready):
            return False
        self._load_budget -= 1
        return True

    def begin_new_call(self) -> None:
        """Signal a new ROI call (fresh worklist/frontier base snooped).

        The fabric advances the prediction stream's call id and flushes
        not-yet-consumed predictions from the previous call — the effect
        the hardware achieves with the squash/rollback protocol.
        """
        self._fabric.pred_new_call()


class CustomComponent:
    """Base class for RF-synthesized custom microarchitecture components."""

    #: human-readable name for reports
    name = "custom-component"

    def __init__(self, timings: RFTimings, memory, metadata: dict | None = None):
        self.timings = timings
        self.memory = memory
        self.metadata = dict(metadata or {})

    def step(self, io: RFIo) -> None:
        """Execute one RF cycle.  Subclasses implement the engines here."""
        raise NotImplementedError

    def on_squash(self, packet: SquashPacket) -> None:
        """Handle a squash packet (roll back speculative output state).

        The fabric separately applies the squash-done handshake timing;
        subclasses override when they keep state that must rewind.
        """

    def is_idle(self) -> bool:
        """True when the component has no internal work in flight.

        Used for deadlock detection: if the component is idle and every
        queue is empty, no amount of RF cycles will produce the prediction
        the Fetch Agent is waiting for, and the agent falls back to the
        core's predictor (the §2.4 watchdog / chicken switch).
        """
        return True

    def structure(self) -> dict[str, int]:
        """Structural inventory for the FPGA cost model (Table 4).

        Returns sizes in bits of queues/CAMs/tables plus counts of
        arithmetic units; see :mod:`repro.power.fpga`.
        """
        return {}
