"""Load Agent (Section 2.3, Figure 5).

Pops prefetch/load packets from the Intervention Queue at Issue (IntQ-IS)
and injects them into a load/store execution lane when its issue port is
idle.  Injected loads are handled specially by the core: no store-queue
search, no wakeup/bypass, no PRF write — they only translate through the
TLB and access the data cache, and their results steer back to the agent.

Loads that miss are parked in the 64-entry Missed Load Buffer and replayed
periodically until they hit; values return to the component via the
Observation Queue at Execute (ObsQ-EX), possibly out of order, tagged with
the component's unique identifier.
"""

from __future__ import annotations

import heapq

from repro.memory.hierarchy import MemoryHierarchy
from repro.pfm.packets import LoadPacket, LoadReturn
from repro.pfm.queues import TimedQueue
from repro.workloads.mem import WORD_BYTES, MemoryImage


class LoadAgent:
    """IntQ-IS consumer; ObsQ-EX producer.

    ``watchdog`` (a :class:`~repro.core.watchdog.Watchdog`) gates packet
    acceptance when its MLB-thrash throttle is open; ``injector`` (a
    :class:`~repro.faults.inject.FaultInjector`) may drop or corrupt load
    returns in transit.  Both are optional and duck-typed so the agent
    carries no dependency on either subsystem.
    """

    def __init__(
        self,
        intq: TimedQueue,
        retq: TimedQueue,
        hierarchy: MemoryHierarchy,
        memory: MemoryImage,
        lanes,
        ls_lanes: tuple[int, ...],
        mlb_entries: int = 64,
        replay_period: int = 8,
        watchdog=None,
        injector=None,
    ):
        self._intq = intq
        self._retq = retq
        self._hierarchy = hierarchy
        self._memory = memory
        self._lanes = lanes
        self._ls_lanes = ls_lanes
        self._mlb_entries = mlb_entries
        self._replay_period = replay_period
        self._watchdog = watchdog
        self._injector = injector
        self._mlb_fills: list[int] = []  # outstanding missed-load fill times
        self._pending_returns: list[tuple[int, LoadReturn]] = []  # (ready, ret)
        self.loads_issued = 0
        self.prefetches_issued = 0
        self.load_misses = 0
        self.replays = 0
        self.loads_sanitized = 0
        self.probe = None  # optional telemetry hub

    # ------------------------------------------------------------------ #

    def tick(self, now: int) -> None:
        """Process IntQ-IS packets and return completions visible by *now*."""
        while True:
            packet = self._intq.peek_visible(now)
            if packet is None:
                break
            visible = self._intq.head_visible_time()
            self._intq.pop(now)
            if self._watchdog is not None and self._watchdog.load_throttled():
                # MLB-thrash throttle open: shed injection packets rather
                # than let replays keep hammering the cache ports.
                self._watchdog.note_load_dropped()
                continue
            self._issue(packet, max(visible, 0))
        self._flush_returns(now)

    def _issue(self, packet: LoadPacket, earliest: int) -> None:
        address = packet.address
        if address < 0 or address % WORD_BYTES:
            # In-transit corruption can hand the agent a torn address.
            # Injected loads are hints and must never trap: align and
            # clamp instead of letting the memory image raise.
            address = max(0, address - address % WORD_BYTES)
            self.loads_sanitized += 1
        lane, issue_cycle = self._lanes.reserve(self._ls_lanes, earliest)
        access_time = issue_cycle + 1  # address generation / translation
        ready, level = self._hierarchy.data_access(
            address,
            access_time,
            from_agent=True,
            is_prefetch=packet.is_prefetch,
        )
        if packet.is_prefetch:
            self.prefetches_issued += 1
            return
        self.loads_issued += 1
        replay_rounds = 0
        missed = False
        mlb_full = False
        if level != "L1D" or ready > access_time + 2:
            missed = True
            before = self.replays
            ready, mlb_full = self._mlb_schedule(access_time, ready)
            replay_rounds = self.replays - before
        if self._watchdog is not None:
            self._watchdog.record_injected_load(replay_rounds, missed, mlb_full)
        value = self._memory.load(address)
        ret = LoadReturn(ident=packet.ident, value=value, address=address)
        if self._injector is not None:
            ret = self._injector.on_return(ret)
            if ret is None:
                return
        self._pending_returns.append((ready, ret))

    def _mlb_schedule(self, issue_time: int, fill_time: int) -> tuple[int, bool]:
        """Missed load: park in the MLB and replay until it hits.

        The replay loop quantizes the effective latency to the replay
        period; a full MLB delays acceptance until the earliest
        outstanding fill drains.  Returns ``(ready, mlb_was_full)``.
        """
        self.load_misses += 1
        heap = self._mlb_fills
        while heap and heap[0] <= issue_time:
            heapq.heappop(heap)
        was_full = len(heap) >= self._mlb_entries
        if was_full:
            issue_time = max(issue_time, heap[0])
        wait = max(0, fill_time - issue_time)
        rounds = (wait + self._replay_period - 1) // self._replay_period
        self.replays += rounds
        ready = issue_time + rounds * self._replay_period + 1
        heapq.heappush(heap, ready)
        probe = self.probe
        if probe is not None:
            probe.agent(issue_time, "load", "mlb_fill", len(heap))
            if rounds:
                probe.agent(issue_time, "load", "mlb_replay", rounds)
            if was_full:
                probe.agent(issue_time, "load", "mlb_full", len(heap))
        return ready, was_full

    def _flush_returns(self, now: int) -> None:
        """Push completed load values into ObsQ-EX, oldest-completion first."""
        if not self._pending_returns:
            return
        self._pending_returns.sort(key=lambda item: item[0])
        remaining: list[tuple[int, LoadReturn]] = []
        for ready, ret in self._pending_returns:
            if ready <= now and self._retq.can_push():
                self._retq.push(ready, ret)
            else:
                remaining.append((ready, ret))
        self._pending_returns = remaining

    # ------------------------------------------------------------------ #

    def reset(self) -> int:
        """Drop in-flight MLB fills and un-flushed load returns.

        Deprogram / hot-swap path: a replacement component must never
        observe values requested by its predecessor (the load ident
        namespace restarts with the component).  Returns the number of
        pending load returns discarded.
        """
        dropped = len(self._pending_returns)
        self._pending_returns.clear()
        self._mlb_fills.clear()
        return dropped

    def next_event_time(self) -> int | None:
        """Earliest future time at which this agent has work (fast-forward)."""
        times = [ready for ready, _ in self._pending_returns]
        head = self._intq.head_visible_time()
        if head is not None:
            times.append(head)
        return min(times) if times else None

    @property
    def in_flight(self) -> int:
        return len(self._pending_returns) + self._intq.occupancy

    @property
    def mlb_occupancy(self) -> int:
        """Outstanding Missed Load Buffer entries (occupancy sampler)."""
        return len(self._mlb_fills)
