"""Figure 2: Speedups of PFM and Slipstream 2.0."""

from conftest import run_experiment

from repro.experiments.slipstream_fig2 import fig2


def test_fig02_pfm_vs_slipstream(benchmark, window):
    result = run_experiment(benchmark, fig2, window)
    # Shape: PFM beats slipstream on both benchmarks; slipstream helps;
    # restart-mode recovery is substantially worse than local squash.
    assert result.value("astar PFM") > result.value("astar slipstream") > 0
    assert result.value("bfs PFM") > result.value("bfs slipstream") > 0
    assert (
        result.value("astar slipstream (restarts)")
        < result.value("astar slipstream")
    )
