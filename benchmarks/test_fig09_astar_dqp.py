"""Figure 9: astar sensitivity to delayD, queueQ, portP."""

from conftest import run_experiment

from repro.experiments.astar_sweeps import fig9


def test_fig09_delay_queue_port(benchmark, window):
    result = run_experiment(benchmark, fig9, window)
    # (a) Speedup decreases gently with component pipeline delay but
    #     remains large even at delay8 (paper: 138%).
    assert result.value("delay8") <= result.value("delay0")
    assert result.value("delay8") > 60
    # (b) Queue sizes 16+ are within a modest band (see DESIGN.md §5 for
    #     the low-queue deviation of the agent-side discard).
    assert result.value("queue32") > result.value("queue16") * 0.8
    assert result.value("queue64") < result.value("queue32") * 1.3
    # (c) PRF port availability is not an issue: portLS1 ~ portALL.
    port_all = result.value("portALL")
    port_ls1 = result.value("delay4, queue32, portLS1")
    assert port_ls1 > port_all * 0.85
