"""Figure 13: bfs sensitivity to delayD, queueQ, portP (paper: low)."""

from conftest import run_experiment

from repro.experiments.bfs_sweeps import fig13


def test_fig13_low_sensitivity(benchmark, window):
    result = run_experiment(benchmark, fig13, window)
    # Delay tolerance: even delay8 keeps most of the delay0 speedup.
    assert result.value("delay8") > result.value("delay0") * 0.6
    # Queue sizes 16+ in a modest band.
    assert result.value("queue32") > result.value("queue16") * 0.75
    # Ports: portLS1 performs close to portALL.
    assert result.value("portLS1") > result.value("portALL") * 0.8
