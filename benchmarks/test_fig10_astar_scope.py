"""Figure 10: astar speedup vs index_queue entries (speculative scope)."""

from conftest import run_experiment

from repro.experiments.astar_sweeps import fig10


def test_fig10_scope_sweep(benchmark, window):
    result = run_experiment(benchmark, fig10, window)
    # Shape: tiny scopes collapse the speedup; 8 entries achieves most of
    # the potential; 16 gives little more (paper's Figure 10).
    assert result.value("1 entries") < result.value("8 entries") * 0.7
    assert result.value("2 entries") < result.value("8 entries")
    assert result.value("16 entries") < result.value("8 entries") * 1.25
