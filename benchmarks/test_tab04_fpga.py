"""Table 4: FPGA hardware overhead estimates vs the paper's rows."""

from conftest import run_experiment

from repro.experiments.fpga_table4 import PAPER_TABLE4, estimates, table4


def test_tab04_estimates(benchmark, window):
    result = run_experiment(benchmark, table4, window)
    rows = {estimate.design: estimate for estimate in estimates()}

    # astar (4wide) is by far the largest LUT consumer, as in the paper.
    astar = rows["astar (4wide)"]
    assert astar.lut == max(e.lut for e in rows.values())
    assert 0.7 <= astar.lut / PAPER_TABLE4["astar (4wide)"][0] <= 1.4

    # astar-alt moves storage into BRAM: far fewer LUTs, many BRAMs.
    alt = rows["astar-alt"]
    assert alt.bram > 10 and astar.bram == 0
    assert alt.lut < astar.lut / 3

    # Prefetchers are tiny (hundreds of LUTs) and clock fast.
    for name in ("libq", "lbm", "bwaves"):
        assert rows[name].lut < 1200, name
        assert rows[name].freq_mhz > 600, name

    # milc is the only DSP user (paper: 4 DSPs).
    assert rows["milc"].dsp == 4
    assert all(rows[n].dsp == 0 for n in rows if n != "milc")

    # Static power is device-dominated (~861-865 mW on the xcvu3p).
    assert all(855 <= e.static_mw <= 880 for e in rows.values())
