#!/usr/bin/env python
"""Throughput regression gate over pytest-benchmark JSON exports.

Compares a current ``--benchmark-json`` export against the committed
``benchmarks/baseline.json`` and fails (exit 1) when any benchmark
regressed beyond the tolerance.

Cross-machine noise is the enemy: the baseline was recorded on one
machine, CI runs on another, and a uniformly slower runner is not a
regression.  The default mode therefore *normalizes*: each benchmark's
current/baseline time ratio is divided by the median ratio across all
benchmarks (the machine-speed factor), so only benchmarks that got
slower **relative to the rest of the suite** trip the gate.  Pass
``--absolute`` to compare raw times instead (same-machine runs).

Usage::

    PYTHONPATH=src pytest benchmarks/test_simulator_throughput.py \
        --benchmark-only --benchmark-json=current.json
    python benchmarks/check_regression.py current.json
    python benchmarks/check_regression.py current.json --tolerance 0.10
    python benchmarks/check_regression.py current.json --absolute

Re-record the baseline after an intentional performance change::

    PYTHONPATH=src pytest benchmarks/test_simulator_throughput.py \
        --benchmark-only --benchmark-json=benchmarks/baseline.json
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: >25% slower than the baseline (after normalization) fails the gate.
DEFAULT_TOLERANCE = 0.25

#: Per-benchmark overrides tighter than the global gate.  The PFM astar
#: entry is the single-tenant hot path: after the multi-tenant refactor
#: it runs through the slot container and the (pass-through) fabric
#: scheduler, and the recorded baseline predates that machinery — so
#: holding it to 5% *is* the "one-tenant scheduler overhead" budget.
TIGHT_TOLERANCES = {
    "benchmarks/test_simulator_throughput.py::test_throughput_pfm_astar": 0.05,
}


def load_medians(path: Path) -> dict[str, float]:
    """Benchmark name -> median seconds from a pytest-benchmark export."""
    payload = json.loads(path.read_text())
    return {
        bench["fullname"]: bench["stats"]["median"]
        for bench in payload.get("benchmarks", [])
    }


def compare(
    baseline: dict[str, float],
    current: dict[str, float],
    tolerance: float,
    absolute: bool,
) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines)."""
    shared = sorted(set(baseline) & set(current))
    if not shared:
        return ["no overlapping benchmarks between baseline and current"], [
            "nothing to compare"
        ]

    ratios = {name: current[name] / baseline[name] for name in shared}
    machine_factor = 1.0 if absolute else statistics.median(ratios.values())

    lines = [
        f"mode: {'absolute' if absolute else 'normalized'}"
        f" (machine factor {machine_factor:.3f}),"
        f" tolerance {tolerance:.0%}, {len(shared)} benchmark(s)",
    ]
    failures = []
    width = max(len(name) for name in shared)
    for name in shared:
        normalized = ratios[name] / machine_factor
        delta = normalized - 1.0
        allowed = min(tolerance, TIGHT_TOLERANCES.get(name, tolerance))
        flag = ""
        if delta > allowed:
            flag = "  << REGRESSION"
            failures.append(
                f"{name}: {delta:+.1%} vs baseline (allowed {allowed:.0%},"
                f" {baseline[name] * 1000:.1f}ms -> {current[name] * 1000:.1f}ms)"
            )
        elif name in TIGHT_TOLERANCES:
            flag = f"  (tight gate {allowed:.0%})"
        lines.append(
            f"  {name:<{width}}  {baseline[name] * 1000:8.1f}ms"
            f" -> {current[name] * 1000:8.1f}ms  {delta:+7.1%}{flag}"
        )

    # Per-group medians: the numpy replay entries ride a different code
    # path than the reference engine, and the result-store sweeps measure
    # store I/O rather than the cycle model — a regression in either can
    # hide inside an overall-median pass.  Group by path (numpy
    # benchmarks carry "numpy" in their name, store benchmarks "_store")
    # and report each group's median normalized ratio alongside the
    # per-benchmark rows.
    by_backend: dict[str, list[float]] = {}
    for name in shared:
        if "numpy" in name:
            backend = "numpy"
        elif "_store" in name:
            backend = "store"
        else:
            backend = "python"
        by_backend.setdefault(backend, []).append(
            ratios[name] / machine_factor
        )
    for backend in sorted(by_backend):
        group_median = statistics.median(by_backend[backend])
        lines.append(
            f"  [{backend}] median normalized ratio"
            f" {group_median:.3f} over {len(by_backend[backend])}"
            f" benchmark(s)"
        )

    only_base = sorted(set(baseline) - set(current))
    if only_base:
        lines.append(f"  (not in current run: {', '.join(only_base)})")
    only_current = sorted(set(current) - set(baseline))
    if only_current:
        lines.append(
            f"  (new, no baseline yet: {', '.join(only_current)} —"
            f" re-record benchmarks/baseline.json to gate them)"
        )
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path,
                        help="pytest-benchmark JSON export of the current run")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path(__file__).parent / "baseline.json",
        help="recorded baseline export (default benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"allowed slowdown fraction (default {DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="compare raw times without the machine-speed normalization",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"baseline {args.baseline} missing; record it first", file=sys.stderr)
        return 2
    lines, failures = compare(
        load_medians(args.baseline),
        load_medians(args.current),
        args.tolerance,
        args.absolute,
    )
    print("\n".join(lines))
    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed"
              f" beyond {args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark regressed beyond the tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
