"""Figure 12: bfs idealizations + custom component vs clkC_wW."""

from conftest import run_experiment

from repro.experiments.bfs_sweeps import fig12


def test_fig12_bfs(benchmark, window):
    result = run_experiment(benchmark, fig12, window)
    # Headline shape (paper: 11% / 152% / 426% / up to 125%):
    # - perfect BP alone is the smallest idealization;
    # - perfect D$ alone is much larger but only a fraction of both;
    # - the custom component lands between baseline and perfBP+D$.
    assert result.value("perfBP") < result.value("perfD$")
    assert result.value("perfD$") < result.value("perfBP+D$")
    assert 0 < result.value("clk4_w4") < result.value("perfBP+D$")
    # Bandwidth ordering mirrors astar but with more slack (paper note).
    assert result.value("clk8_w1") < result.value("clk4_w4")
    assert result.value("clk4_w2") <= result.value("clk4_w4") * 1.1
