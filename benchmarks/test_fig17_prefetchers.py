"""Figure 17: the five custom prefetchers vs C and W (+D and P notes)."""

from conftest import run_experiment

from repro.experiments.prefetch_sweeps import fig17, fig17_delay, fig17_ports
from repro.experiments.runner import PREFETCH_WORKLOADS


def test_fig17_cw_sweep(benchmark, window):
    result = run_experiment(benchmark, fig17, window)
    for name in PREFETCH_WORKLOADS:
        # Every prefetcher speeds its benchmark up...
        assert result.value(f"{name} clk4_w1") > 0, name
        # ...and is resistant to width (W barely matters).
        w1 = result.value(f"{name} clk4_w1")
        w4 = result.value(f"{name} clk4_w4")
        assert abs(w4 - w1) < max(25.0, 0.4 * abs(w1)), name


def test_fig17_delay_resistance(benchmark, window):
    result = run_experiment(benchmark, fig17_delay, window)
    for name in PREFETCH_WORKLOADS:
        d0 = result.value(f"{name} delay0")
        d8 = result.value(f"{name} delay8")
        # Resistant: delay8 keeps a substantial share of the delay0 gain.
        assert d8 > max(5.0, 0.4 * d0), name


def test_fig17_port_insensitivity(benchmark, window):
    result = run_experiment(benchmark, fig17_ports, window)
    for name in PREFETCH_WORKLOADS:
        port_all = result.value(f"{name} portALL")
        port_ls1 = result.value(f"{name} portLS1")
        assert port_ls1 > port_all - max(20.0, 0.3 * abs(port_all)), name
