"""Figure 14: bfs speedup scales with its queue entries."""

from conftest import run_experiment

from repro.experiments.bfs_sweeps import fig14


def test_fig14_scope_scaling(benchmark, window):
    result = run_experiment(benchmark, fig14, window)
    # Paper: performance scales with the frontier/begin-address/
    # trip-count/neighbor queue sizes (unlike astar, which saturates at 8).
    assert result.value("8 entries") < result.value("64 entries")
    assert result.value("16 entries") <= result.value("64 entries") * 1.05
    # 128 entries holds most of the 32-entry speedup; at short windows the
    # deepest run-ahead overshoots the (still small) frontier and wastes
    # some memory bandwidth, so allow a modest roll-off.
    assert result.value("128 entries") >= result.value("32 entries") * 0.65
