"""Table 3: bfs FST and RST snoop percentages (paper: 13% / 31%)."""

from conftest import run_experiment

from repro.experiments.astar_sweeps import table2
from repro.experiments.bfs_sweeps import bfs_mpki, table3


def test_tab03_snoop_percentages(benchmark, window):
    # Snoop fractions need the steady-state frontier: tiny early BFS
    # levels dilute the ROI with driver code, so use a window floor.
    window = max(window, 30_000)
    result = run_experiment(benchmark, table3, window)
    assert 5 <= result.value("fetched hit FST") <= 25
    assert 12 <= result.value("retired hit RST") <= 45
    # Cross-table shape: bfs observes a higher fraction of retired
    # instructions than astar (paper: 31% vs 20.3%).
    astar = table2(window=window)
    assert result.value("retired hit RST") > astar.value("retired hit RST")


def test_bfs_mpki_collapse(benchmark, window):
    result = run_experiment(benchmark, bfs_mpki, window)
    # Paper: 19.1 -> 0.5.
    assert result.value("baseline") > 10
    assert result.value("custom") < result.value("baseline") / 4
