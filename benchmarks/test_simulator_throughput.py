"""Simulator throughput: instructions per second of the cycle engine.

Not a paper figure — engineering benchmarks for the reproduction itself,
so regressions in the one-pass engine or the fabric co-simulation are
visible.  pytest-benchmark reports wall time for a fixed 10k-instruction
window; divide to get instructions/second.
"""

import shutil

import pytest

from repro.core import CoreParams, PFMParams, SimConfig, simulate
from repro.registry import build_workload
from repro.telemetry import TelemetryParams
from repro.workloads import tracecache
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph
from repro.workloads.libquantum import build_libquantum_workload

WINDOW = 10_000
_graph = road_graph(side=96)


def test_throughput_baseline_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_pfm_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.pfm_predicted_branches > 0


def test_throughput_pfm_astar_two_tenant(benchmark):
    """Astar predictor plus an observe-only co-tenant in a second slot.

    Measures what fabric sharing costs end to end: the mirrored
    observation stream, partitioned-table dispatch, and the scheduler's
    arbitration of the crossing.  The single-tenant overhead of the same
    machinery is gated separately — ``test_throughput_pfm_astar`` runs
    through the slot container too and ``check_regression.py`` holds it
    to a 5% tighter tolerance against the recorded seed baseline.
    """
    from repro.pfm.tenancy import parse_tenant_spec

    pfm = PFMParams(delay=0, tenants=(parse_tenant_spec("introspect"),))
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=pfm),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.pfm_predicted_branches > 0
    probe = stats.tenant_stats["1:introspect"]
    assert probe["obs_pushes"] > 0
    benchmark.extra_info["probe_obs_pushes"] = probe["obs_pushes"]
    benchmark.extra_info["probe_sched_stall_cycles"] = (
        probe["sched_stall_cycles"]
    )


def test_throughput_pfm_bfs(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_bfs_workload(graph=_graph),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_prefetcher_libquantum(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(width=1, delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.agent_prefetches > 0


def test_throughput_pfm_astar_telemetry(benchmark):
    """Ring sink attached: bounds the probes' enabled-path overhead.

    The no-sink case is ``test_throughput_pfm_astar`` above (probe sites
    cost one ``None`` test each there).
    """
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(
                max_instructions=WINDOW,
                pfm=PFMParams(delay=0),
                telemetry=TelemetryParams(),
            ),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.telemetry is not None
    assert stats.telemetry["captured"] > 0


#: Pre-decomposition reference: instructions/second of the monolithic
#: ``SuperscalarCore`` (commit 5c3eb25), median of 8 interleaved runs on
#: the development machine.  The stage-pipeline engine must stay within
#: 5% of these on comparable hardware; wall clock on shared runners is
#: too noisy for a hard 5% gate, so the test records the measured ratio
#: in ``extra_info`` and only fails on a catastrophic (>2x) regression.
SEED_INST_PER_SEC = {"baseline": 36_900, "pfm": 25_400}


def _stage_vs_seed(benchmark, variant: str, pfm: PFMParams | None) -> None:
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=pfm),
        ),
        rounds=5,
        iterations=1,
    )
    assert stats.instructions == WINDOW
    measured = WINDOW / benchmark.stats.stats.median
    seed = SEED_INST_PER_SEC[variant]
    benchmark.extra_info["seed_inst_per_sec"] = seed
    benchmark.extra_info["measured_inst_per_sec"] = round(measured)
    benchmark.extra_info["vs_seed_pct"] = round(100 * measured / seed, 1)
    assert measured > seed / 2, (
        f"stage pipeline at {measured:.0f} inst/s vs seed {seed} —"
        " beyond any plausible machine-speed difference"
    )


def test_throughput_stage_pipeline_vs_seed_baseline(benchmark):
    _stage_vs_seed(benchmark, "baseline", None)


def test_throughput_stage_pipeline_vs_seed_pfm(benchmark):
    _stage_vs_seed(benchmark, "pfm", PFMParams())


# --------------------------------------------------------------------- #
# trace cache: cold compile vs warm replay
# --------------------------------------------------------------------- #

#: Median seconds per cold run, filled by the cold benchmark so the warm
#: benchmark (later in file order) can measure the speedup.
_trace_timings: dict[str, float] = {}


def _registry_astar_run(backend: str = "python"):
    """Registry-built run with the engine pinned.

    The cold/warm benchmarks pin ``python`` so their numbers keep
    measuring the reference engine (and stay comparable to the recorded
    baseline); the numpy entries pin ``numpy`` explicitly.
    """
    return simulate(
        build_workload("astar", grid_width=128, grid_height=128),
        SimConfig(
            core=CoreParams(backend=backend), max_instructions=WINDOW
        ),
    )


@pytest.fixture
def _isolated_trace_cache(tmp_path, monkeypatch):
    """Point the trace cache at a private tmp dir for cold/warm control."""
    cache = tmp_path / "trace-bench-cache"
    monkeypatch.setenv(tracecache.CACHE_DIR_ENV, str(cache))
    tracecache.reset_memory_cache()
    yield cache
    tracecache.reset_memory_cache()


def test_throughput_trace_cold_compile(benchmark, _isolated_trace_cache):
    """Same run as ``test_throughput_baseline_astar`` but registry-built,
    with the cache emptied before every round: each round pays the
    one-time compile (to the campaign floor) plus the replayed timing run.
    """

    def flush():
        tracecache.reset_memory_cache()
        shutil.rmtree(_isolated_trace_cache, ignore_errors=True)

    stats = benchmark.pedantic(
        _registry_astar_run, setup=flush, rounds=3, iterations=1
    )
    assert stats.instructions == WINDOW
    assert tracecache.STATS["compiles"] >= 1
    _trace_timings["cold"] = benchmark.stats.stats.min
    benchmark.extra_info["inst_per_sec"] = round(
        WINDOW / benchmark.stats.stats.median
    )


def test_throughput_trace_warm_replay(benchmark, _isolated_trace_cache):
    """Warm path: the compiled trace is memoized in-process, every round
    is a pure replay.  Asserts the tentpole's speedup target against the
    cold benchmark above — measured here, not taken on faith."""
    _registry_astar_run()  # prewarm: compile once, outside the timer
    stats = benchmark.pedantic(_registry_astar_run, rounds=5, iterations=1)
    assert stats.instructions == WINDOW
    assert tracecache.STATS["compiles"] == 1  # the prewarm, never a round

    benchmark.extra_info["inst_per_sec"] = round(
        WINDOW / benchmark.stats.stats.median
    )
    # Speedup from the per-test minima: scheduling noise only ever adds
    # time, so min is the cleanest estimator of the true cost of each path.
    warm = benchmark.stats.stats.min
    _trace_timings["warm"] = warm
    cold = _trace_timings.get("cold")
    if cold is not None:
        speedup = cold / warm
        benchmark.extra_info["warm_vs_cold_speedup"] = round(speedup, 2)
        assert speedup >= 1.5, (
            f"warm replay only {speedup:.2f}x the cold-compile path"
            f" (cold {cold:.3f}s, warm {warm:.3f}s); the compiled-trace"
            f" cache should be paying for itself"
        )


def test_throughput_trace_warm_replay_numpy(benchmark, _isolated_trace_cache):
    """Vectorized warm replay: same memoized trace, numpy backend.

    This is the PR's headline gate — the chunked replay must clear 2x
    the warm *python* replay (measured by the benchmark above in the
    same process) while staying byte-identical (the differential suite
    in ``tests/test_backend_equivalence.py`` pins the identity half).
    """
    from repro.backends import have_numpy

    if not have_numpy():
        pytest.skip("numpy not installed")
    _registry_astar_run()  # prewarm: compile once, outside the timer
    stats = benchmark.pedantic(
        lambda: _registry_astar_run(backend="numpy"), rounds=5, iterations=1
    )
    assert stats.instructions == WINDOW
    assert stats.backend == "numpy"  # replay engaged, no silent fallback
    assert stats.backend_fallbacks == 0
    assert tracecache.STATS["compiles"] == 1

    benchmark.extra_info["inst_per_sec"] = round(
        WINDOW / benchmark.stats.stats.median
    )
    vec = benchmark.stats.stats.min
    warm = _trace_timings.get("warm")
    if warm is not None:
        speedup = warm / vec
        benchmark.extra_info["numpy_vs_python_warm_speedup"] = round(
            speedup, 2
        )
        assert speedup >= 2.0, (
            f"numpy warm replay only {speedup:.2f}x the python warm path"
            f" (python {warm:.3f}s, numpy {vec:.3f}s); the vectorized"
            f" backend should clear 2x"
        )


def test_throughput_trace_warm_from_disk(benchmark, _isolated_trace_cache):
    """Fresh-process shape: memo empty, trace loaded from the on-disk
    store each round (what a new SweepPool worker pays)."""
    _registry_astar_run()  # populate the on-disk store

    def drop_memo():
        tracecache.reset_memory_cache()

    stats = benchmark.pedantic(
        _registry_astar_run, setup=drop_memo, rounds=3, iterations=1
    )
    assert stats.instructions == WINDOW
    assert tracecache.STATS["disk_hits"] >= 1
    benchmark.extra_info["inst_per_sec"] = round(
        WINDOW / benchmark.stats.stats.median
    )


# --------------------------------------------------------------------- #
# result store: cold sweep vs warm (store-hit) sweep
# --------------------------------------------------------------------- #

#: Small grid, real engine: 2 workloads x (baseline + 2 PFM configs).
_SWEEP_WINDOW = 2_000
_SWEEP_GRID = {"workloads": ("astar", "libquantum")}

#: Cold minimum, filled by the cold benchmark for the warm gate below.
_store_timings: dict[str, float] = {}


def _sweep_grid_points():
    from repro.experiments.sweep import sweep_points

    return sweep_points(_SWEEP_WINDOW, **_SWEEP_GRID)


def test_throughput_sweep_cold_store(benchmark, tmp_path):
    """Every round simulates the whole grid into an empty store — the
    single-host cost a shard fleet or a warm daemon amortizes away."""
    from repro.experiments.pool import SweepPool

    store = tmp_path / "cold-store"
    _registry_astar_run()  # compile traces outside the timer

    def flush():
        shutil.rmtree(store, ignore_errors=True)
        return (), {}

    def run():
        pool = SweepPool(store=store)
        pool.run(_sweep_grid_points())
        return pool

    pool = benchmark.pedantic(run, setup=flush, rounds=3, iterations=1)
    assert pool.last_run_info["computed"] == len(_sweep_grid_points())
    _store_timings["cold"] = benchmark.stats.stats.min
    benchmark.extra_info["points"] = len(_sweep_grid_points())


def test_throughput_sweep_warm_store(benchmark, tmp_path):
    """Fresh-process shape over a populated store: every round drops the
    in-process memos (trace cache, trace-key memo) and builds a new pool,
    so each round pays exactly what a second host or later invocation
    pays — store reads instead of simulation.  Gated at <= 0.25x the cold
    sweep with a >= 95% store hit rate (the issue's acceptance bar)."""
    from repro.experiments.pool import SweepPool
    from repro.store import ResultStore, reset_trace_key_memo

    store = tmp_path / "warm-store"
    SweepPool(store=store).run(_sweep_grid_points())  # populate once

    def fresh_process():
        tracecache.reset_memory_cache()
        reset_trace_key_memo()
        return (), {}

    def run():
        pool = SweepPool(store=ResultStore(store))
        pool.run(_sweep_grid_points())
        return pool

    pool = benchmark.pedantic(run, setup=fresh_process, rounds=5, iterations=1)
    points = len(_sweep_grid_points())
    info = pool.last_run_info
    assert info["computed"] == 0, f"warm sweep recomputed: {info}"
    hit_rate = info["store_hits"] / points
    benchmark.extra_info["store_hit_rate"] = hit_rate
    assert hit_rate >= 0.95, f"store hit rate {hit_rate:.0%} below 95%"

    warm = benchmark.stats.stats.min
    cold = _store_timings.get("cold")
    if cold is not None:
        ratio = warm / cold
        benchmark.extra_info["warm_vs_cold_ratio"] = round(ratio, 3)
        assert ratio <= 0.25, (
            f"warm store-hit sweep at {ratio:.2f}x the cold sweep"
            f" (cold {cold:.3f}s, warm {warm:.3f}s); store lookups should"
            f" cost a small fraction of simulation"
        )


def test_throughput_functional_executor(benchmark):
    def run():
        executor = build_astar_workload(
            grid_width=128, grid_height=128
        ).executor()
        count = sum(1 for _ in executor.run(50_000))
        return count

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == 50_000
