"""Simulator throughput: instructions per second of the cycle engine.

Not a paper figure — engineering benchmarks for the reproduction itself,
so regressions in the one-pass engine or the fabric co-simulation are
visible.  pytest-benchmark reports wall time for a fixed 10k-instruction
window; divide to get instructions/second.
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.telemetry import TelemetryParams
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph
from repro.workloads.libquantum import build_libquantum_workload

WINDOW = 10_000
_graph = road_graph(side=96)


def test_throughput_baseline_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_pfm_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.pfm_predicted_branches > 0


def test_throughput_pfm_bfs(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_bfs_workload(graph=_graph),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_prefetcher_libquantum(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(width=1, delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.agent_prefetches > 0


def test_throughput_pfm_astar_telemetry(benchmark):
    """Ring sink attached: bounds the probes' enabled-path overhead.

    The no-sink case is ``test_throughput_pfm_astar`` above (probe sites
    cost one ``None`` test each there).
    """
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(
                max_instructions=WINDOW,
                pfm=PFMParams(delay=0),
                telemetry=TelemetryParams(),
            ),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.telemetry is not None
    assert stats.telemetry["captured"] > 0


#: Pre-decomposition reference: instructions/second of the monolithic
#: ``SuperscalarCore`` (commit 5c3eb25), median of 8 interleaved runs on
#: the development machine.  The stage-pipeline engine must stay within
#: 5% of these on comparable hardware; wall clock on shared runners is
#: too noisy for a hard 5% gate, so the test records the measured ratio
#: in ``extra_info`` and only fails on a catastrophic (>2x) regression.
SEED_INST_PER_SEC = {"baseline": 36_900, "pfm": 25_400}


def _stage_vs_seed(benchmark, variant: str, pfm: PFMParams | None) -> None:
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=pfm),
        ),
        rounds=5,
        iterations=1,
    )
    assert stats.instructions == WINDOW
    measured = WINDOW / benchmark.stats.stats.median
    seed = SEED_INST_PER_SEC[variant]
    benchmark.extra_info["seed_inst_per_sec"] = seed
    benchmark.extra_info["measured_inst_per_sec"] = round(measured)
    benchmark.extra_info["vs_seed_pct"] = round(100 * measured / seed, 1)
    assert measured > seed / 2, (
        f"stage pipeline at {measured:.0f} inst/s vs seed {seed} —"
        " beyond any plausible machine-speed difference"
    )


def test_throughput_stage_pipeline_vs_seed_baseline(benchmark):
    _stage_vs_seed(benchmark, "baseline", None)


def test_throughput_stage_pipeline_vs_seed_pfm(benchmark):
    _stage_vs_seed(benchmark, "pfm", PFMParams())


def test_throughput_functional_executor(benchmark):
    def run():
        executor = build_astar_workload(
            grid_width=128, grid_height=128
        ).executor()
        count = sum(1 for _ in executor.run(50_000))
        return count

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == 50_000
