"""Simulator throughput: instructions per second of the cycle engine.

Not a paper figure — engineering benchmarks for the reproduction itself,
so regressions in the one-pass engine or the fabric co-simulation are
visible.  pytest-benchmark reports wall time for a fixed 10k-instruction
window; divide to get instructions/second.
"""

from repro.core import PFMParams, SimConfig, simulate
from repro.telemetry import TelemetryParams
from repro.workloads.astar import build_astar_workload
from repro.workloads.bfs import build_bfs_workload
from repro.workloads.graphs import road_graph
from repro.workloads.libquantum import build_libquantum_workload

WINDOW = 10_000
_graph = road_graph(side=96)


def test_throughput_baseline_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_pfm_astar(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.pfm_predicted_branches > 0


def test_throughput_pfm_bfs(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_bfs_workload(graph=_graph),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.instructions == WINDOW


def test_throughput_prefetcher_libquantum(benchmark):
    stats = benchmark.pedantic(
        lambda: simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=WINDOW, pfm=PFMParams(width=1, delay=0)),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.agent_prefetches > 0


def test_throughput_pfm_astar_telemetry(benchmark):
    """Ring sink attached: bounds the probes' enabled-path overhead.

    The no-sink case is ``test_throughput_pfm_astar`` above (probe sites
    cost one ``None`` test each there).
    """
    stats = benchmark.pedantic(
        lambda: simulate(
            build_astar_workload(grid_width=128, grid_height=128),
            SimConfig(
                max_instructions=WINDOW,
                pfm=PFMParams(delay=0),
                telemetry=TelemetryParams(),
            ),
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.telemetry is not None
    assert stats.telemetry["captured"] > 0


def test_throughput_functional_executor(benchmark):
    def run():
        executor = build_astar_workload(
            grid_width=128, grid_height=128
        ).executor()
        count = sum(1 for _ in executor.run(50_000))
        return count

    count = benchmark.pedantic(run, rounds=3, iterations=1)
    assert count == 50_000
