"""Figure 18: core+RF energy of PFM designs normalized to baseline."""

from conftest import run_experiment

from repro.experiments.energy_fig18 import fig18


def test_fig18_energy_reduction(benchmark, window):
    result = run_experiment(benchmark, fig18, window)
    # Paper: every use-case reduces total (core+RF) energy, driven by
    # less misspeculation and less static energy from shorter runtime.
    values = dict(result.rows)
    below_baseline = [name for name, v in values.items() if v < 1.0]
    # The branch-prediction use-cases (largest runtime reductions) must
    # reduce energy; allow at most one marginal prefetch-only outlier.
    assert values["astar"] < 1.0
    assert values["bfs-roads"] < 1.0
    assert len(below_baseline) >= len(values) - 1
    # And nothing catastrophically regresses.
    assert all(v < 1.3 for v in values.values())
