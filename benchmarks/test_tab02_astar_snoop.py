"""Table 2: astar FST and RST snoop percentages (paper: 15.5% / 20.3%)."""

from conftest import run_experiment

from repro.experiments.astar_sweeps import astar_mpki, table2


def test_tab02_snoop_percentages(benchmark, window):
    result = run_experiment(benchmark, table2, window)
    assert 8 <= result.value("fetched hit FST") <= 25
    assert 10 <= result.value("retired hit RST") <= 32
    # bfs observes more than astar retires-wise (checked in tab03 bench).


def test_astar_mpki_collapse(benchmark, window):
    result = run_experiment(benchmark, astar_mpki, window)
    # Paper: 31.9 -> 1.04.  The custom predictor removes the bottleneck.
    assert result.value("baseline") > 20
    assert result.value("custom") < 5
