"""Figure 8: astar custom branch predictor vs clkC_wW, plus perfBP."""

from conftest import run_experiment

from repro.experiments.astar_sweeps import fig8


def test_fig08_bandwidth_sweep(benchmark, window):
    result = run_experiment(benchmark, fig8, window)
    # Shape: bandwidth-starved configs collapse; wide configs approach
    # (or slightly exceed, via the prefetching effect) perfect BP.
    assert result.value("clk8_w1") < result.value("clk4_w2")
    assert result.value("clk4_w1") < result.value("clk4_w4")
    assert result.value("clk4_w2") <= result.value("clk4_w4") * 1.05
    assert result.value("clk4_w4") > 100  # large speedup (paper: 163%)
    assert result.value("clk4_w4") > result.value("perfBP") * 0.85
