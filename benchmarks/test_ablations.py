"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper — these isolate the contribution of individual
mechanisms in the reproduction:

* the baseline predictor tier (TAGE-SC-L vs gshare) — how much the paper's
  strong baseline matters to the reported deltas;
* the baseline prefetchers (next-line + VLDP) — the custom prefetchers are
  measured *on top of* a prefetching baseline;
* the adaptive-distance policy (rate vs the paper's literal hill-climb);
* the store-inference CAM in the astar component (disabled -> mispredicts
  on every in-window revisit).
"""

import pytest

from conftest import BENCH_WINDOW

from repro.core import PFMParams, SimConfig, SuperscalarCore, simulate
from repro.frontend.simple import GSharePredictor
from repro.memory.hierarchy import HierarchyParams
from repro.pfm.components.astar_bp import AstarBranchPredictor
from repro.pfm.components.prefetchers import (
    AdaptiveDistanceController,
    LibquantumPrefetcher,
)
from repro.workloads.astar import build_astar_workload
from repro.workloads.libquantum import build_libquantum_workload


def test_ablation_baseline_predictor_strength(benchmark):
    """TAGE-SC-L must clearly beat gshare on astar's hard branches —
    i.e. the custom component's win is NOT an artifact of a weak
    baseline predictor."""

    def run_both():
        tage = simulate(
            build_astar_workload(), SimConfig(max_instructions=BENCH_WINDOW)
        )
        core = SuperscalarCore(
            build_astar_workload(), SimConfig(max_instructions=BENCH_WINDOW)
        )
        core.predictor = _GshareAdapter()
        gshare = core.run()
        return tage, gshare

    tage, gshare = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nTAGE-SC-L MPKI {tage.mpki:.1f} vs gshare MPKI {gshare.mpki:.1f}")
    assert tage.mpki < gshare.mpki


class _GshareAdapter(GSharePredictor):
    """GSharePredictor with the on_taken_control hook the core expects."""

    def on_taken_control(self, pc, target):
        return None


def test_ablation_baseline_prefetchers(benchmark):
    """Disabling next-line+VLDP must hurt the libquantum baseline: the
    custom prefetcher's speedup is measured over a real prefetching
    baseline, not a strawman."""

    def run_both():
        with_pf = simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=BENCH_WINDOW),
        )
        without_pf = simulate(
            build_libquantum_workload(),
            SimConfig(
                max_instructions=BENCH_WINDOW,
                memory=HierarchyParams(
                    enable_l1_prefetcher=False, enable_vldp=False
                ),
            ),
        )
        return with_pf, without_pf

    with_pf, without_pf = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nbaseline IPC with prefetchers {with_pf.ipc:.3f}, "
          f"without {without_pf.ipc:.3f}")
    assert with_pf.ipc > without_pf.ipc


def test_ablation_distance_policy(benchmark):
    """Rate-based distance control vs the paper's literal hill-climb."""

    class HillclimbLibq(LibquantumPrefetcher):
        def __init__(self, timings, memory, metadata=None):
            super().__init__(timings, memory, metadata)
            self.controller = AdaptiveDistanceController(mode="hillclimb")

    def run_both():
        base = simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=BENCH_WINDOW),
        )
        rate = simulate(
            build_libquantum_workload(),
            SimConfig(max_instructions=BENCH_WINDOW,
                      pfm=PFMParams(width=1, delay=0)),
        )
        hill = simulate(
            build_libquantum_workload(component_factory=HillclimbLibq),
            SimConfig(max_instructions=BENCH_WINDOW,
                      pfm=PFMParams(width=1, delay=0)),
        )
        return base, rate, hill

    base, rate, hill = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nrate {100 * rate.speedup_over(base):+.0f}%  "
          f"hillclimb {100 * hill.speedup_over(base):+.0f}%")
    # Both help; the rate policy converges within these short windows at
    # least as well as hill-climbing.
    assert rate.ipc >= hill.ipc * 0.95
    assert hill.ipc > base.ipc * 0.9


class _NoCamAstar(AstarBranchPredictor):
    """astar component with the index1_CAM inference disabled."""

    def _t2(self, io):
        self._cam.clear()  # forget inferences every cycle
        super()._t2(io)


def test_ablation_astar_alt_strategy(benchmark):
    """Section 5's two astar strategies: the load-based main design vs
    the table-mimicking astar-alt (paper: 154% vs 125%)."""
    from repro.workloads.astar import build_astar_alt_workload

    def run_all():
        base = simulate(
            build_astar_workload(), SimConfig(max_instructions=BENCH_WINDOW)
        )
        main = simulate(
            build_astar_workload(),
            SimConfig(max_instructions=BENCH_WINDOW, pfm=PFMParams(delay=0)),
        )
        alt = simulate(
            build_astar_alt_workload(),
            SimConfig(max_instructions=BENCH_WINDOW, pfm=PFMParams(delay=0)),
        )
        return base, main, alt

    base, main, alt = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(f"\nmain {100 * main.speedup_over(base):+.0f}%  "
          f"alt {100 * alt.speedup_over(base):+.0f}%  "
          f"(paper: +154% vs +125%)")
    assert base.ipc < alt.ipc < main.ipc
    assert alt.agent_loads == 0  # mimics data structures, never loads


def test_ablation_store_inference(benchmark):
    """Without the index1_CAM the component mispredicts every in-window
    revisit — the loop-carried dependency the paper's design exists to
    solve (Section 4.1.2)."""

    def run_both():
        with_cam = simulate(
            build_astar_workload(),
            SimConfig(max_instructions=BENCH_WINDOW, pfm=PFMParams(delay=0)),
        )
        without_cam = simulate(
            build_astar_workload(component_factory=_NoCamAstar),
            SimConfig(max_instructions=BENCH_WINDOW, pfm=PFMParams(delay=0)),
        )
        return with_cam, without_cam

    with_cam, without_cam = benchmark.pedantic(run_both, rounds=1, iterations=1)
    print(f"\nMPKI with CAM {with_cam.mpki:.2f}, without {without_cam.mpki:.2f}")
    assert without_cam.mpki > with_cam.mpki * 1.5
    assert without_cam.ipc < with_cam.ipc
