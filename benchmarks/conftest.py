"""Shared configuration for the figure/table regeneration benchmarks.

Each benchmark regenerates one of the paper's tables or figures (printing
measured-vs-paper rows) and asserts its qualitative shape.  The default
window is small so the whole suite runs in minutes; set
``REPRO_BENCH_WINDOW`` for higher-fidelity runs::

    REPRO_BENCH_WINDOW=120000 pytest benchmarks/ --benchmark-only
"""

import os

import pytest

BENCH_WINDOW = int(os.environ.get("REPRO_BENCH_WINDOW", "15000"))


@pytest.fixture
def window():
    return BENCH_WINDOW


def run_experiment(benchmark, experiment, window):
    """Run *experiment* once under the benchmark timer and print it."""
    result = benchmark.pedantic(
        experiment, kwargs={"window": window}, rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
