"""Warm-service latency vs cold CLI invocation.

The issue's acceptance bar for the resident daemon: once a request has
been served, a *second identical* request must complete in at most half
the wall time of a cold CLI invocation of the same sweep — the daemon
amortizes interpreter startup, registry autoload, trace compilation,
and every simulated point into its shared warm caches.

Run explicitly (not part of the tier-1 suite)::

    PYTHONPATH=src python -m pytest benchmarks/test_service_warm.py -q
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import repro
from repro.experiments.sweep import SMOKE_WINDOW
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig, SimulationService

#: Ratio bar from the issue: warm round trip <= 0.5x cold CLI wall time.
WARM_RATIO_BAR = 0.5


def _cold_cli_sweep(json_path: Path, cache_dir: Path) -> float:
    """Wall seconds for a cold CLI sweep (fresh process, fresh cache)."""
    env = dict(
        os.environ, PYTHONPATH=str(Path(repro.__file__).resolve().parents[1])
    )
    started = time.perf_counter()
    subprocess.run(
        [sys.executable, "-m", "repro.experiments", "sweep",
         "--window", str(SMOKE_WINDOW), "--json", str(json_path),
         "--cache-dir", str(cache_dir)],
        check=True, env=env, stdout=subprocess.DEVNULL,
    )
    return time.perf_counter() - started


def test_warm_service_request_at_most_half_cold_cli(tmp_path):
    cold_json = tmp_path / "cold.json"
    cold_seconds = _cold_cli_sweep(cold_json, tmp_path / "cold-cache")

    config = ServiceConfig(cache_dir=tmp_path / "warm-cache")
    started = threading.Event()
    box: dict = {}

    async def _main():
        service = SimulationService(config)
        await service.start()
        box["service"] = service
        box["loop"] = asyncio.get_running_loop()
        started.set()
        await service.serve_until_shutdown()

    thread = threading.Thread(target=lambda: asyncio.run(_main()), daemon=True)
    thread.start()
    assert started.wait(30)
    try:
        client = ServiceClient(cache_dir=config.cache_dir)
        request = {"window": SMOKE_WINDOW}
        first = client.run("sweep", request, timeout=600)  # prime the caches
        warm_started = time.perf_counter()
        second = client.run("sweep", request, timeout=600)
        warm_seconds = time.perf_counter() - warm_started
    finally:
        box["loop"].call_soon_threadsafe(box["service"].request_shutdown)
        thread.join(60)

    # Determinism first: daemon results == the cold CLI's file, byte for
    # byte, and the warm repeat changed nothing.
    assert first == cold_json.read_bytes()
    assert second == first

    ratio = warm_seconds / cold_seconds
    print(
        f"\ncold CLI {cold_seconds:.2f}s, warm service {warm_seconds:.2f}s"
        f" ({ratio:.2f}x, bar {WARM_RATIO_BAR}x)"
    )
    assert ratio <= WARM_RATIO_BAR, (
        f"warm service request took {warm_seconds:.2f}s vs cold CLI"
        f" {cold_seconds:.2f}s ({ratio:.2f}x > {WARM_RATIO_BAR}x bar)"
    )
