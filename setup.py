"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``python setup.py develop`` works on minimal environments without the
``wheel`` package (where PEP 517 editable installs cannot build).
"""

from setuptools import setup

setup()
