"""Set-associative cache: geometry, LRU, timestamps, MSHRs."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.cache import Cache


def test_geometry_validation():
    with pytest.raises(ValueError):
        Cache("bad", size_bytes=100, assoc=3)


def test_sets_computed_from_size():
    cache = Cache("L1", 32 * 1024, 8)
    assert cache.num_sets == 64


def test_miss_then_hit():
    cache = Cache("L1", 4096, 4)
    assert cache.probe(5, now=10) is None
    cache.insert(5, now=10, fill_time=10)
    result = cache.probe(5, now=11)
    assert result is not None and not result.in_flight
    assert result.ready_time == 11


def test_in_flight_hit_reports_fill_time():
    cache = Cache("L1", 4096, 4)
    cache.insert(7, now=10, fill_time=200)
    result = cache.probe(7, now=50)
    assert result.in_flight
    assert result.ready_time == 200


def test_fill_completes_over_time():
    cache = Cache("L1", 4096, 4)
    cache.insert(7, now=10, fill_time=200)
    result = cache.probe(7, now=300)
    assert not result.in_flight


def test_lru_eviction_order():
    cache = Cache("L1", 4 * 64, 4)  # one set, 4 ways
    for line in range(4):
        cache.insert(line * cache.num_sets, now=line, fill_time=line)
    # Touch line 0 to make it MRU.
    cache.probe(0, now=10)
    # Insert a 5th line: victim must be line 1 (oldest untouched).
    cache.insert(4 * cache.num_sets, now=11, fill_time=11)
    assert cache.contains(0)
    assert not cache.contains(1 * cache.num_sets)
    assert cache.contains(2 * cache.num_sets)


def test_low_priority_insert_evicted_first():
    cache = Cache("L1", 4 * 64, 4)
    cache.insert(0, now=100, fill_time=100, prefetch=True, low_priority=True)
    for line in range(1, 4):
        cache.insert(line * cache.num_sets or line, now=line, fill_time=line)
    # All ways full; the low-priority line is the eviction victim even
    # though it was inserted most recently.
    cache.insert(77 * cache.num_sets or 77, now=200, fill_time=200)
    assert not cache.contains(0)


def test_demand_touch_promotes_low_priority_line():
    cache = Cache("L1", 4 * 64, 4)
    cache.insert(0, now=100, fill_time=100, prefetch=True, low_priority=True)
    cache.probe(0, now=150)  # demand touch promotes
    for line in range(1, 5):
        cache.insert(line, now=line, fill_time=line)
    assert cache.contains(0)


def test_prefetch_usefulness_counted_once():
    cache = Cache("L1", 4096, 4)
    cache.insert(3, now=0, fill_time=0, prefetch=True)
    assert cache.prefetch_fills == 1
    cache.probe(3, now=1)
    cache.probe(3, now=2)
    assert cache.prefetch_useful == 1


def test_mshr_delay_when_full():
    cache = Cache("L1", 4096, 4, mshrs=2)
    cache.register_miss(100)
    cache.register_miss(120)
    assert cache.mshr_delay(now=50) == 50  # wait until 100
    assert cache.mshr_delay(now=110) == 0  # one drained


def test_cap_fill_clamps_in_flight():
    cache = Cache("L1", 4096, 4)
    cache.insert(9, now=10, fill_time=900)
    cache.cap_fill(9, 300)
    assert cache.probe(9, now=50).ready_time == 300
    cache.cap_fill(9, 500)  # never increases
    assert cache.probe(9, now=50).ready_time == 300


def test_flush_empties_cache():
    cache = Cache("L1", 4096, 4)
    cache.insert(1, now=0, fill_time=0)
    cache.flush()
    assert not cache.contains(1)


def test_stats_accounting():
    cache = Cache("L1", 4096, 4)
    cache.probe(1, now=0)  # miss
    cache.insert(1, now=0, fill_time=0)
    cache.probe(1, now=1)  # hit
    stats = cache.stats()
    assert stats["accesses"] == 2
    assert stats["misses"] == 1
    assert cache.miss_rate == 0.5


def test_uncounted_probe():
    cache = Cache("L1", 4096, 4)
    cache.probe(1, now=0, count=False)
    assert cache.accesses == 0


@given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_property_lru_matches_reference(lines):
    """Single-set cache contents must match a reference LRU list."""
    assoc = 4
    cache = Cache("L1", assoc * 64, assoc)  # 1 set
    reference: list[int] = []  # most recent last
    for now, raw in enumerate(lines):
        line = raw * cache.num_sets  # force into set 0
        if cache.probe(line, now=now) is None:
            cache.insert(line, now=now, fill_time=now)
            if line in reference:
                reference.remove(line)
            reference.append(line)
            if len(reference) > assoc:
                reference.pop(0)
        else:
            reference.remove(line)
            reference.append(line)
    for line in reference:
        assert cache.contains(line)
