"""Compiled-trace replay cache correctness.

The cache may only ever change *when* work happens, never *what* the
simulator computes: every test here pins the architectural digest — the
hash over the retired stream plus final register/memory state — across
the executed, cold-compiled, in-process-memoized, and warm-on-disk
paths, plus the failure modes (corrupted file, changed build params,
registry-bypassing workloads) where the cache must step aside rather
than lie.
"""

from __future__ import annotations

import json
import pickle
from pathlib import Path

import pytest

from repro.core import SimConfig, simulate
from repro.experiments.runner import parse_config_label
from repro.registry import build_workload, workload_names
from repro.workloads import tracecache
from repro.workloads.astar import build_astar_workload

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_WINDOW = 5_000
PFM_CONFIG = "clk4_w4, delay4, queue32, portLS1"

SMALL_WINDOW = 1_500


@pytest.fixture(autouse=True)
def _fresh_memo():
    """Each test starts from an empty in-process trace memo.

    The on-disk side is already per-test (the shared autouse fixture
    points ``REPRO_CACHE_DIR`` at a tmp dir); the module-level memo
    would otherwise leak compiled traces between tests and hide the
    cold/warm distinction these tests assert on.
    """
    tracecache.reset_memory_cache()
    yield
    tracecache.reset_memory_cache()


def _simulate(workload, window: int, pfm_label: str | None = None):
    pfm = parse_config_label(pfm_label) if pfm_label else None
    return simulate(workload, SimConfig(max_instructions=window, pfm=pfm))


def _executed_digest(name: str, window: int, monkeypatch, **overrides) -> str:
    monkeypatch.setenv(tracecache.NO_TRACE_CACHE_ENV, "1")
    digest = _simulate(build_workload(name, **overrides), window).arch_digest
    monkeypatch.delenv(tracecache.NO_TRACE_CACHE_ENV)
    return digest


# --------------------------------------------------------------------- #
# digest identity
# --------------------------------------------------------------------- #


@pytest.mark.parametrize("name", workload_names())
def test_executed_vs_replayed_digest_all_workloads(name, monkeypatch):
    """Replay is architecturally invisible for every registered workload."""
    executed = _executed_digest(name, SMALL_WINDOW, monkeypatch)

    cold = _simulate(build_workload(name), SMALL_WINDOW).arch_digest
    assert tracecache.STATS["compiles"] == 1
    assert tracecache.STATS["replays"] == 1
    assert cold == executed

    warm = _simulate(build_workload(name), SMALL_WINDOW).arch_digest
    assert tracecache.STATS["memo_hits"] == 1
    assert warm == executed


GOLDEN_CASES = [
    (workload, variant)
    for workload in workload_names()
    for variant in ("baseline", "pfm")
]


@pytest.mark.parametrize(
    "workload,variant",
    GOLDEN_CASES,
    ids=[f"{w}-{v}" for w, v in GOLDEN_CASES],
)
def test_golden_digest_enabled_disabled_and_warm(workload, variant, monkeypatch):
    """All 18 golden cases: digest byte-identical to the committed golden
    with the cache disabled, enabled (cold compile), and warm on disk."""
    golden_path = GOLDEN_DIR / f"{workload}--{variant}.json"
    golden = json.loads(golden_path.read_text())["stats"]["arch_digest"]
    pfm_label = None if variant == "baseline" else PFM_CONFIG

    monkeypatch.setenv(tracecache.NO_TRACE_CACHE_ENV, "1")
    disabled = _simulate(
        build_workload(workload), GOLDEN_WINDOW, pfm_label
    ).arch_digest
    monkeypatch.delenv(tracecache.NO_TRACE_CACHE_ENV)
    assert disabled == golden

    cold = _simulate(
        build_workload(workload), GOLDEN_WINDOW, pfm_label
    ).arch_digest
    assert cold == golden
    assert tracecache.STATS["compiles"] == 1

    # Drop the memo so the next run must come off the on-disk file.
    tracecache.reset_memory_cache()
    warm = _simulate(
        build_workload(workload), GOLDEN_WINDOW, pfm_label
    ).arch_digest
    assert warm == golden
    assert tracecache.STATS["disk_hits"] == 1
    assert tracecache.STATS["compiles"] == 0


def test_baseline_and_pfm_share_one_compilation():
    """Hints never change the correct path, so one trace serves both."""
    _simulate(build_workload("astar"), SMALL_WINDOW)
    _simulate(build_workload("astar"), SMALL_WINDOW, PFM_CONFIG)
    assert tracecache.STATS["compiles"] == 1
    assert tracecache.STATS["replays"] == 2


# --------------------------------------------------------------------- #
# keying and invalidation
# --------------------------------------------------------------------- #


def test_build_param_change_invalidates(monkeypatch):
    """Changed builder params produce a different content key and a
    fresh compilation — never a replay of the old trace."""
    small = build_workload("astar")
    large = build_workload("astar", grid_width=24, grid_height=24)
    assert small.trace_key is not None
    assert large.trace_key is not None
    assert small.trace_key != large.trace_key

    _simulate(small, SMALL_WINDOW)
    assert tracecache.STATS["compiles"] == 1
    digest = _simulate(large, SMALL_WINDOW).arch_digest
    assert tracecache.STATS["compiles"] == 2

    executed = _executed_digest(
        "astar", SMALL_WINDOW, monkeypatch, grid_width=24, grid_height=24
    )
    assert digest == executed


def test_identical_builds_share_a_key():
    a = build_workload("astar")
    b = build_workload("astar")
    assert a.trace_key == b.trace_key
    assert a.build_ref == ("astar", {})


def test_direct_builder_bypasses_cache():
    """Hand-built workloads carry no trace identity and always execute."""
    workload = build_astar_workload()
    assert workload.trace_key is None
    assert tracecache.get_trace(workload, SMALL_WINDOW) is None
    stats = _simulate(workload, SMALL_WINDOW)
    assert tracecache.STATS["compiles"] == 0
    assert tracecache.STATS["replays"] == 0
    assert stats.instructions == SMALL_WINDOW


def test_escape_hatch_disables_everything(monkeypatch):
    monkeypatch.setenv(tracecache.NO_TRACE_CACHE_ENV, "1")
    _simulate(build_workload("astar"), SMALL_WINDOW)
    assert tracecache.STATS["compiles"] == 0
    assert tracecache.STATS["replays"] == 0
    assert not tracecache.trace_files()


# --------------------------------------------------------------------- #
# durability
# --------------------------------------------------------------------- #


def _single_trace_file() -> Path:
    entries = tracecache.trace_files()
    assert len(entries) == 1
    return entries[0]["path"]


def test_corrupted_file_recovers_by_recompiling(monkeypatch):
    executed = _executed_digest("astar", SMALL_WINDOW, monkeypatch)
    _simulate(build_workload("astar"), SMALL_WINDOW)
    path = _single_trace_file()

    path.write_bytes(b"\x00not a pickle")
    tracecache.reset_memory_cache()
    digest = _simulate(build_workload("astar"), SMALL_WINDOW).arch_digest
    assert digest == executed
    assert tracecache.STATS["recoveries"] == 1
    assert tracecache.STATS["compiles"] == 1
    # The recompile healed the file in place.
    assert tracecache.trace_files()[0]["valid"]


def test_truncated_payload_recovers(monkeypatch):
    """A structurally valid pickle with mismatched columns is rejected."""
    executed = _executed_digest("astar", SMALL_WINDOW, monkeypatch)
    _simulate(build_workload("astar"), SMALL_WINDOW)
    path = _single_trace_file()

    payload = pickle.loads(path.read_bytes())
    payload["pcs"] = payload["pcs"][: len(payload["pcs"]) // 2]
    path.write_bytes(pickle.dumps(payload, protocol=4))
    tracecache.reset_memory_cache()
    digest = _simulate(build_workload("astar"), SMALL_WINDOW).arch_digest
    assert digest == executed
    assert tracecache.STATS["recoveries"] == 1


def test_cursor_rejects_short_column_after_decode():
    """A trace truncated *after* decode must raise the loader's
    corruption error at replay, never silently run short columns."""
    workload = build_workload("astar")
    _simulate(workload, SMALL_WINDOW)
    trace = tracecache.get_trace(build_workload("astar"), SMALL_WINDOW)
    assert trace is not None

    trace.store_values = trace.store_values[:-1]
    trace._cols = None  # drop caches built before the truncation
    trace._nd = None
    with pytest.raises(
        ValueError, match="trace column lengths disagree with header"
    ):
        trace.cursor(workload.memory, workload.initial_regs)
    with pytest.raises(
        ValueError, match="trace column lengths disagree with header"
    ):
        trace.ndarrays()


def test_stale_version_recompiles(monkeypatch):
    executed = _executed_digest("astar", SMALL_WINDOW, monkeypatch)
    _simulate(build_workload("astar"), SMALL_WINDOW)
    path = _single_trace_file()

    payload = pickle.loads(path.read_bytes())
    payload["version"] = tracecache.TRACE_VERSION + 1
    path.write_bytes(pickle.dumps(payload, protocol=4))
    tracecache.reset_memory_cache()
    digest = _simulate(build_workload("astar"), SMALL_WINDOW).arch_digest
    assert digest == executed
    assert tracecache.STATS["compiles"] == 1


def test_window_growth_extends_the_trace(monkeypatch):
    """A longer window than any compiled trace recompiles to cover it."""
    short = 500
    _simulate(build_workload("astar"), short)
    assert tracecache.STATS["compiles"] == 1

    executed = _executed_digest("astar", SMALL_WINDOW, monkeypatch)
    digest = _simulate(build_workload("astar"), SMALL_WINDOW).arch_digest
    assert digest == executed
    assert tracecache.STATS["compiles"] == 2

    # ...and the longer trace now serves the shorter window from memo.
    _simulate(build_workload("astar"), short)
    assert tracecache.STATS["compiles"] == 2
    assert tracecache.STATS["memo_hits"] == 1


def test_compile_floor_covers_campaign_windows(monkeypatch):
    """At campaign scale one compilation is shared across windows: a
    window at the floor threshold compiles out to the configured floor."""
    monkeypatch.setenv(tracecache.TRACE_FLOOR_ENV, "12000")
    _simulate(build_workload("astar"), tracecache.FLOOR_THRESHOLD)
    entries = tracecache.trace_files()
    assert entries[0]["length"] == 12_000

    # Any window under the compiled length is a memo hit, no recompile.
    _simulate(build_workload("astar"), 11_000)
    assert tracecache.STATS["compiles"] == 1
    assert tracecache.STATS["memo_hits"] == 1


def test_trace_max_gates_giant_windows(monkeypatch):
    monkeypatch.setenv(tracecache.TRACE_MAX_ENV, "1000")
    _simulate(build_workload("astar"), SMALL_WINDOW)
    assert tracecache.STATS["compiles"] == 0
    assert tracecache.STATS["replays"] == 0


# --------------------------------------------------------------------- #
# the cache CLI
# --------------------------------------------------------------------- #


def test_cache_cli_list_and_clear(capsys):
    from repro.experiments.__main__ import main

    _simulate(build_workload("astar"), SMALL_WINDOW)
    assert main(["cache", "list"]) == 0
    out = capsys.readouterr().out
    assert "astar" in out
    assert "compiled traces" in out

    assert main(["cache", "clear"]) == 0
    out = capsys.readouterr().out
    assert "removed 1 compiled trace(s)" in out
    assert not tracecache.trace_files()

    assert main(["cache"]) == 0
    assert "(none)" in capsys.readouterr().out
